//! The full Mission scenario across all layers: update history → stored
//! relation → views → beliefs → MultiLog encoding → queries.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use multilog_core::examples::{encode_relation, mission_db};
use multilog_core::MultiLogEngine;
use multilog_mlsrel::belief::{believe, BeliefMode};
use multilog_mlsrel::jv::{Interpretation, JvRelation};
use multilog_mlsrel::ops::replay;
use multilog_mlsrel::query::believed_in_all_modes;
use multilog_mlsrel::{mission, view, Value};

#[test]
fn history_replay_produces_figure1() {
    let (_, scheme) = mission::mission_scheme();
    let replayed = replay(scheme, &mission::mission_history()).unwrap();
    let (_, fig1) = mission::mission_relation();
    assert!(replayed.same_tuples(&fig1));
    replayed.check_integrity().unwrap();
}

#[test]
fn surprise_stories_exist_only_under_sigma() {
    let (lat, rel) = mission::mission_relation();
    let c = lat.label("C").unwrap();
    // With σ: nulls appear (Figure 3's t4/t5).
    let with_sigma = view::view_at(&rel, c);
    assert!(with_sigma.tuples().iter().any(|t| t.has_null()));
    // β in any mode: never.
    for mode in BeliefMode::all() {
        let b = believe(&rel, c, mode).unwrap();
        assert!(
            b.tuples().iter().all(|t| !t.has_null()),
            "σ-free belief must not contain ⊥ ({mode:?})"
        );
    }
}

#[test]
fn beliefs_are_monotone_across_modes() {
    // firm ⊆ optimistic at every level (after TC retagging firm tuples).
    let (lat, rel) = mission::mission_relation();
    for level in ["U", "C", "S"] {
        let l = lat.label(level).unwrap();
        let firm = believe(&rel, l, BeliefMode::Firm).unwrap();
        let opt = believe(&rel, l, BeliefMode::Optimistic).unwrap();
        for t in firm.tuples() {
            let mut retagged = t.clone();
            retagged.tc = l;
            assert!(
                opt.tuples().contains(&retagged),
                "firm tuple missing from optimistic at {level}"
            );
        }
    }
}

#[test]
fn cautious_is_subset_of_optimistic_values() {
    let (lat, rel) = mission::mission_relation();
    for level in ["U", "C", "S"] {
        let l = lat.label(level).unwrap();
        let cau = believe(&rel, l, BeliefMode::Cautious).unwrap();
        let opt = believe(&rel, l, BeliefMode::Optimistic).unwrap();
        // Every cautiously believed (key, attr, value) is optimistically
        // believed too (cautious only filters).
        for t in cau.tuples() {
            for (i, v) in t.values.iter().enumerate() {
                assert!(
                    opt.tuples()
                        .iter()
                        .any(|o| o.key() == t.key() && &o.values[i] == v),
                    "cautious value {v} not optimistically believed at {level}"
                );
            }
        }
    }
}

#[test]
fn jv_interpretations_from_history() {
    let (_, scheme) = mission::mission_scheme();
    let jv = JvRelation::from_history(scheme, &mission::mission_history()).unwrap();
    let lat = jv.scheme().lattice().clone();
    let s = lat.label("S").unwrap();
    // At S: exactly one mirage (Falcon) and three cover stories
    // (t4, t5', t8).
    let mut mirages = 0;
    let mut covers = 0;
    for i in 0..jv.variants().len() {
        match jv.interpret(i, s) {
            Interpretation::Mirage => mirages += 1,
            Interpretation::CoverStory => covers += 1,
            _ => {}
        }
    }
    assert_eq!(mirages, 1);
    assert_eq!(covers, 3);
}

#[test]
fn relational_and_multilog_answers_agree_on_spying() {
    // The §3.2 query answered in the relational layer…
    let (lat, rel) = mission::mission_relation();
    let s = lat.label("S").unwrap();
    let relational = believed_in_all_modes(
        &rel,
        s,
        &["Starship"],
        &[
            ("Destination", Value::str("Mars")),
            ("Objective", Value::str("Spying")),
        ],
    )
    .unwrap();
    assert_eq!(relational, vec![vec![Value::str("Voyager")]]);

    // …and in MultiLog on the encoded database.
    let db = mission_db().unwrap();
    let e = MultiLogEngine::new(&db, "s").unwrap();
    let mut ships: Option<Vec<String>> = None;
    for mode in ["fir", "opt", "cau"] {
        let ans = e
            .solve_text(&format!(
                "s[mission(K : objective -C1-> spying)] << {mode}, \
                 s[mission(K : destination -C2-> mars)] << {mode}"
            ))
            .unwrap();
        let mut these: Vec<String> = ans.iter().map(|a| a["K"].to_string()).collect();
        these.sort();
        these.dedup();
        ships = Some(match ships {
            None => these,
            Some(prev) => prev.into_iter().filter(|s| these.contains(s)).collect(),
        });
    }
    assert_eq!(ships.unwrap(), vec!["voyager"]);
}

#[test]
fn encoding_preserves_tuple_count() {
    let (_, rel) = mission::mission_relation();
    let src = encode_relation(&rel);
    // One molecule per tuple; three fields each.
    assert_eq!(src.matches("mission(").count(), 10);
    assert_eq!(
        src.matches("-s->").count() + src.matches("-c->").count() + src.matches("-u->").count(),
        30
    );
}

#[test]
fn firm_view_matches_multilog_fir_beliefs() {
    // Figure 6 through the relational β and through MultiLog `<< fir`
    // must name the same tuples.
    let (lat, rel) = mission::mission_relation();
    let c = lat.label("C").unwrap();
    let fig6 = believe(&rel, c, BeliefMode::Firm).unwrap();
    assert_eq!(fig6.len(), 1);

    let db = mission_db().unwrap();
    let e = MultiLogEngine::new(&db, "c").unwrap();
    let ans = e
        .solve_text("c[mission(K : starship -C-> V)] << fir")
        .unwrap();
    assert_eq!(ans.len(), 1);
    assert_eq!(ans[0]["K"].to_string(), "atlantis");
}

#[test]
fn every_level_view_is_integrity_clean_without_sigma() {
    let (lat, rel) = mission::mission_relation();
    for level in ["U", "C", "S"] {
        let l = lat.label(level).unwrap();
        let v = view::view_at_with(
            &rel,
            l,
            view::ViewOptions {
                filter_sigma: false,
                eliminate_subsumed: true,
            },
        );
        v.check_integrity()
            .unwrap_or_else(|e| panic!("σ-free view at {level} violates integrity: {e}"));
    }
}
