//! Integration tests for the `multilog` CLI against the shipped example
//! databases (`examples/data/*.mlog`).

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use multilog_cli::{check, prove, query, reduce, run, EngineKind, Options};

fn mission_source() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/data/mission.mlog"
    ))
    .expect("mission.mlog exists")
}

fn d1_source() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/data/d1.mlog"
    ))
    .expect("d1.mlog exists")
}

fn opts(user: &str) -> Options {
    Options {
        user: user.to_owned(),
        ..Options::default()
    }
}

#[test]
fn d1_file_runs_its_query_at_each_level() {
    let src = d1_source();
    let at_c = run(&src, &opts("c")).unwrap();
    assert!(at_c.contains("yes"), "{at_c}");
    let at_u = run(&src, &opts("u")).unwrap();
    assert!(at_u.contains("no"), "{at_u}");
}

#[test]
fn mission_file_checks_clean() {
    let out = check(&mission_source(), &opts("s")).unwrap();
    assert!(out.contains("admissible"), "{out}");
    assert!(out.contains("consistent"), "{out}");
    assert!(out.contains("Σ=30"), "{out}");
}

#[test]
fn mission_spying_query_both_engines() {
    let src = mission_source();
    let goal = "s[mission(K : objective -C-> spying)] << cau";
    let op = query(&src, goal, &opts("s")).unwrap();
    let mut red_opts = opts("s");
    red_opts.engine = EngineKind::Reduced;
    let red = query(&src, goal, &red_opts).unwrap();
    assert_eq!(op, red, "Theorem 6.1 through the CLI");
    assert!(op.contains("voyager"), "{op}");
    assert!(op.contains("phantom"), "{op}");
}

#[test]
fn mission_u_level_sees_nothing_secret() {
    let src = mission_source();
    let out = query(&src, "L[mission(K : objective -C-> spying)]", &opts("u")).unwrap();
    assert_eq!(out, "no\n");
}

#[test]
fn prove_on_mission_file() {
    let src = mission_source();
    let out = prove(
        &src,
        "c[mission(atlantis : starship -u-> atlantis)] << opt",
        &opts("c"),
    )
    .unwrap();
    assert!(out.contains("[BELIEF]"), "{out}");
    assert!(out.contains("DESCEND-O"), "{out}");
}

#[test]
fn reduce_on_mission_file() {
    let out = reduce(&mission_source(), &opts("s")).unwrap();
    assert!(out.contains("rel(mission, avenger, starship, avenger, s, s)."));
    assert!(out.contains("bel(P, K, A, V, C, H, opt)"));
}
