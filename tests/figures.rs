//! Row-level verification of every reproduced table and figure against
//! the paper.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use multilog_bench::figures;

#[test]
fn fig1_mission_base() {
    let f = figures::fig1();
    // All ten rows of Figure 1, in tid order.
    let rows = [
        "Avenger S | Shipping S | Pluto S | S",
        "Atlantis U | Diplomacy U | Vulcan U | S",
        "Voyager U | Spying S | Mars U | S",
        "Phantom U | Spying S | Omega U | S",
        "Phantom C | Supply S | Venus S | S",
        "Atlantis U | Diplomacy U | Vulcan U | C",
        "Atlantis U | Diplomacy U | Vulcan U | U",
        "Voyager U | Training U | Mars U | U",
        "Falcon U | Piracy U | Venus U | U",
        "Eagle U | Patrolling U | Degoba U | U",
    ];
    let mut last = 0;
    for r in rows {
        let pos = f[last..]
            .find(r)
            .unwrap_or_else(|| panic!("missing or out of order: {r}\n{f}"));
        last += pos;
    }
}

#[test]
fn fig2_u_view_rows() {
    let f = figures::fig2();
    for r in [
        "Phantom U | ⊥ U | Omega U | U",
        "Atlantis U | Diplomacy U | Vulcan U | U",
        "Voyager U | Training U | Mars U | U",
        "Falcon U | Piracy U | Venus U | U",
        "Eagle U | Patrolling U | Degoba U | U",
    ] {
        assert!(f.contains(r), "missing {r}\n{f}");
    }
    // Exactly five tuples (header + 5 rows).
    assert_eq!(f.lines().filter(|l| l.contains(" | ")).count(), 6);
    // Nothing secret leaks.
    assert!(!f.contains("Spying"));
    assert!(!f.contains("Avenger"));
}

#[test]
fn fig3_c_view_rows_and_surprise_stories() {
    let f = figures::fig3();
    for r in [
        "Phantom U | ⊥ U | Omega U | C",
        "Phantom C | ⊥ C | ⊥ C | C",
        "Atlantis U | Diplomacy U | Vulcan U | C",
        "Voyager U | Training U | Mars U | U",
        "Falcon U | Piracy U | Venus U | U",
        "Eagle U | Patrolling U | Degoba U | U",
    ] {
        assert!(f.contains(r), "missing {r}\n{f}");
    }
    assert_eq!(f.lines().filter(|l| l.contains(" | ")).count(), 7);
}

#[test]
fn fig4_jv_labels() {
    let f = figures::fig4();
    for r in [
        "Atlantis UCS | Diplomacy UCS | Vulcan UCS | UCS", // t2 merged
        "Voyager US | Spying S | Mars US | S",             // t3
        "Phantom US | Spying U-S | Omega US | U-S",        // t4
        "Phantom US | Spying S | Omega US | S",            // t4'
        "Phantom CS | Supply S | Venus S | S",             // t5
        "Phantom CS | Supply C-S | Venus C-S | C-S",       // t5'
        "Voyager US | Training U-S | Mars US | U-S",       // t8
        "Falcon U-S | Piracy U-S | Venus U-S | U-S",       // t9
        "Eagle U | Patrolling U | Degoba U | U",           // t10
        "Avenger S | Shipping S | Pluto S | S",            // t1
    ] {
        assert!(f.contains(r), "missing {r}\n{f}");
    }
}

#[test]
fn fig5_interpretations() {
    let f = figures::fig5();
    for r in [
        "Avenger: invisible | invisible | true",
        "Atlantis: true | true | true",
        "Falcon: true | irrelevant | mirage",
        "Eagle: true | irrelevant | irrelevant",
        "Voyager: true | irrelevant | cover story",
        "Voyager: invisible | invisible | true",
        "Phantom: true | irrelevant | cover story",
        "Phantom: invisible | true | cover story",
    ] {
        assert!(f.contains(r), "missing {r}\n{f}");
    }
}

#[test]
fn fig6_firm_view() {
    let f = figures::fig6();
    assert!(f.contains("Atlantis U | Diplomacy U | Vulcan U | C"));
    assert_eq!(f.lines().filter(|l| l.contains(" | ")).count(), 2);
}

#[test]
fn fig7_optimistic_view() {
    let f = figures::fig7();
    for r in [
        "Atlantis U | Diplomacy U | Vulcan U | C",
        "Voyager U | Training U | Mars U | C",
        "Falcon U | Piracy U | Venus U | C",
        "Eagle U | Patrolling U | Degoba U | C",
    ] {
        assert!(f.contains(r), "missing {r}\n{f}");
    }
    // β omits the σ-generated t4/t5 (the paper's surprise-story point):
    assert!(!f.contains("Phantom"));
    // Every believed tuple is re-tagged to C.
    for line in f.lines().skip(2) {
        if line.contains(" | ") {
            assert!(line.ends_with("| C"), "bad TC in {line}");
        }
    }
}

#[test]
fn fig8_cautious_view() {
    let f = figures::fig8();
    for r in [
        "Atlantis U | Diplomacy U | Vulcan U | C",
        "Voyager U | Training U | Mars U | C",
        "Falcon U | Piracy U | Venus U | C",
        "Eagle U | Patrolling U | Degoba U | C",
    ] {
        assert!(f.contains(r), "missing {r}\n{f}");
    }
    assert!(!f.contains("Phantom"), "β omits the σ-generated t5");
}

#[test]
fn fig9_exercises_all_rule_families() {
    let f = figures::fig9();
    for rule in [
        "EMPTY",
        "ORDER",
        "TRANSITIVITY",
        "REFLEXIVITY",
        "DEDUCTION-G",
        "DEDUCTION-G'",
        "DEDUCTION-B",
        "BELIEF",
        "DESCEND-O",
        "DESCEND-C",
    ] {
        assert!(f.contains(rule), "missing rule {rule}\n{f}");
    }
}

#[test]
fn fig10_d1_rules() {
    let f = figures::fig10();
    for r in [
        "level(u).",
        "order(c, s).",
        "u[p(k : a -u-> v)].",
        "c[p(k : a -c-> t)] <- q(j).",
        "s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.",
        "q(j).",
    ] {
        assert!(f.contains(r), "missing {r}");
    }
}

#[test]
fn fig11_proof_tree_structure() {
    let f = figures::fig11();
    // The Figure 11 derivation: BELIEF at the root (c ⪯ c), DESCEND-O
    // descending R/u, DEDUCTION-G' on the u fact, EMPTY leaves.
    assert!(f.contains("[BELIEF] ⟨Δ, c⟩ ⊢ c[p(k : a -u-> v)] << opt"));
    assert!(f.contains("[DESCEND-O]"));
    assert!(f.contains("u ⪯ c"));
    assert!(f.contains("[DEDUCTION-G'] ⟨Δ, c⟩ ⊢ u[p(k : a -u-> v)]"));
    assert!(f.contains("[EMPTY]"));
}

#[test]
fn fig12_axioms_and_specialization() {
    let f = figures::fig12();
    for a in [
        "a1:", "a2:", "a3:", "a4:", "a5:", "a6:", "a7:", "a8:", "a9:",
    ] {
        assert!(f.contains(a), "missing axiom {a}");
    }
    assert!(f.contains("bel_cau_c"));
    assert!(f.contains("dominate(X, Y) :- order(X, Y)."));
}

#[test]
fn fig13_extension_contrast() {
    let f = figures::fig13();
    assert!(f.contains("0 answers"));
    assert!(f.contains("1 answers"));
}

#[test]
fn section_3_2_answer() {
    let f = figures::section_3_2_query();
    assert!(f.contains("Voyager"));
    assert!(!f.contains("Falcon"));
}
