//! Cross-crate end-to-end tests: synthetic workloads through every layer,
//! plus failure-injection cases.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use multilog_bench::workload::{
    synthetic_multilog, synthetic_relation, MultiLogSpec, RelationSpec,
};
use multilog_core::reduce::ReducedEngine;
use multilog_core::{parse_database, MultiLogEngine, MultiLogError};
use multilog_mlsrel::belief::{believe, BeliefMode};
use multilog_mlsrel::view::view_at;

#[test]
fn synthetic_relation_views_and_beliefs_scale() {
    let spec = RelationSpec {
        entities: 500,
        attrs: 3,
        depth: 5,
        poly_rate: 0.3,
        seed: 99,
    };
    let (lat, rel) = synthetic_relation(&spec);
    rel.check_integrity().unwrap();
    let top = lat.label("l4").unwrap();
    let bottom = lat.label("l0").unwrap();

    let v_top = view_at(&rel, top);
    let v_bot = view_at(&rel, bottom);
    assert!(v_top.len() >= v_bot.len());

    let opt = believe(&rel, top, BeliefMode::Optimistic).unwrap();
    let fir = believe(&rel, top, BeliefMode::Firm).unwrap();
    let cau = believe(&rel, top, BeliefMode::Cautious).unwrap();
    assert!(opt.len() >= fir.len());
    assert!(opt.len() >= cau.len());
    // Cautious views resolve every polyinstantiated entity to believed
    // values without ⊥.
    assert!(cau.tuples().iter().all(|t| !t.has_null()));
}

#[test]
fn synthetic_multilog_through_both_engines() {
    for use_cau in [false, true] {
        let spec = MultiLogSpec {
            depth: 3,
            facts: 60,
            rules: 6,
            use_cau,
            seed: 3,
        };
        let src = synthetic_multilog(&spec);
        let db = parse_database(&src).unwrap();
        let op = MultiLogEngine::new(&db, "l2").unwrap();
        let red = ReducedEngine::new(&db, "l2").unwrap();
        for goal in [
            "L[data(K : a -C-> V)]",
            "L[derived(K : b -C-> V)]",
            "L[data(K : a -C-> V)] << cau",
        ] {
            assert_eq!(
                op.solve_text(goal).unwrap(),
                red.solve_text(goal).unwrap(),
                "divergence on `{goal}` (use_cau = {use_cau})"
            );
        }
    }
}

#[test]
fn bell_lapadula_guards_hold_on_synthetic_data() {
    let spec = MultiLogSpec {
        depth: 4,
        facts: 80,
        rules: 5,
        use_cau: false,
        seed: 11,
    };
    let db = parse_database(&synthetic_multilog(&spec)).unwrap();
    // A bottom-level user sees only bottom-level data.
    let e = MultiLogEngine::new(&db, "l0").unwrap();
    for ans in e.solve_text("L[data(K : a -C-> V)]").unwrap() {
        assert_eq!(ans["L"].to_string(), "l0");
        assert_eq!(ans["C"].to_string(), "l0");
    }
}

#[test]
fn fact_limit_guards_runaway_programs() {
    // A cross-product rule that would explode.
    let mut src = String::from("level(u).\n");
    for i in 0..30 {
        src.push_str(&format!("n(x{i}).\n"));
    }
    src.push_str("pair(X, Y, Z) <- n(X), n(Y), n(Z).\n");
    let db = parse_database(&src).unwrap();
    let err = MultiLogEngine::with_options(
        &db,
        "u",
        multilog_core::EngineOptions {
            fact_limit: 1000,
            ..Default::default()
        },
    );
    assert!(matches!(err, Err(MultiLogError::BudgetExceeded { .. })));
}

#[test]
fn malformed_inputs_fail_cleanly() {
    // Undeclared level in data.
    let db = parse_database("level(u). s[p(k : a -s-> v)].").unwrap();
    assert!(MultiLogEngine::new(&db, "u").is_err());
    // Cyclic order.
    let db = parse_database("level(a). level(b). order(a, b). order(b, a). a[p(k : x -a-> v)].")
        .unwrap();
    assert!(MultiLogEngine::new(&db, "a").is_err());
    // Unknown belief mode.
    let db = parse_database(
        "level(u). u[p(k : a -u-> v)]. u[q(k : b -u-> w)] <- u[p(k : a -u-> v)] << dream.",
    )
    .unwrap();
    assert!(matches!(
        MultiLogEngine::new(&db, "u"),
        Err(MultiLogError::UnknownMode(_))
    ));
}

#[test]
fn deep_lattices_work_end_to_end() {
    let spec = MultiLogSpec {
        depth: 8,
        facts: 40,
        rules: 4,
        use_cau: true,
        seed: 5,
    };
    let db = parse_database(&synthetic_multilog(&spec)).unwrap();
    let op = MultiLogEngine::new(&db, "l7").unwrap();
    let red = ReducedEngine::new(&db, "l7").unwrap();
    assert_eq!(
        op.solve_text("L[data(K : a -C-> V)] << cau").unwrap(),
        red.solve_text("L[data(K : a -C-> V)] << cau").unwrap()
    );
}
