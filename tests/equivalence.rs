//! Theorem 6.1: the operational semantics (`⊢`) and the reduction
//! semantics (least fixpoint of `τ(Δ) ∪ A` under CORAL — here, the
//! `multilog-datalog` engine) agree on every goal.
//!
//! The paper proves this; we test it on the worked examples, on the
//! Mission encoding, and on randomly generated MultiLog databases.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_core::examples;
use multilog_core::reduce::ReducedEngine;
use multilog_core::{parse_database, MultiLogDb, MultiLogEngine};

/// The goals used to compare the two semantics: every predicate is probed
/// with fully variable patterns in every mode.
const PROBES: &[&str] = &[
    "L[p(K : a -C-> V)]",
    "L[p(K : a -C-> V)] << fir",
    "L[p(K : a -C-> V)] << opt",
    "L[p(K : a -C-> V)] << cau",
    "L[data(K : a -C-> V)]",
    "L[data(K : a -C-> V)] << fir",
    "L[data(K : a -C-> V)] << opt",
    "L[data(K : a -C-> V)] << cau",
    "L[derived(K : b -C-> V)]",
    "q(X)",
];

fn assert_equivalent(db: &MultiLogDb, user: &str, probes: &[&str]) {
    let op = MultiLogEngine::new(db, user).expect("operational evaluation succeeds");
    let red = ReducedEngine::new(db, user).expect("reduction succeeds");
    for goal in probes {
        let a = op.solve_text(goal).expect("operational solve succeeds");
        let b = red.solve_text(goal).expect("reduced solve succeeds");
        assert_eq!(a, b, "divergence on `{goal}` at user {user}");
    }
}

#[test]
fn d1_equivalence_at_every_level() {
    let db = examples::d1();
    for user in ["u", "c", "s"] {
        assert_equivalent(&db, user, PROBES);
    }
}

#[test]
fn mission_equivalence() {
    let db = examples::mission_db().expect("mission encodes");
    let probes = [
        "L[mission(K : objective -C-> V)]",
        "L[mission(K : objective -C-> V)] << fir",
        "L[mission(K : objective -C-> V)] << opt",
        "L[mission(K : objective -C-> V)] << cau",
        "L[mission(K : starship -C-> V)] << cau",
        "L[mission(K : destination -C-> V)] << opt",
    ];
    for user in ["u", "c", "s"] {
        assert_equivalent(&db, user, &probes);
    }
}

#[test]
fn user_defined_mode_equivalence() {
    // User modes go through `bel/7` in both pipelines (USER-BELIEF).
    let db = parse_database(
        r#"
        level(u). level(s). order(u, s).
        u[p(k : a -u-> v)].
        s[p(k : a -u-> w)].
        bel(p, K, a, V, C, L, own_class) <- L[p(K : a -C-> V)], C leq L.
        "#,
    )
    .unwrap();
    for user in ["u", "s"] {
        let op = MultiLogEngine::new(&db, user).unwrap();
        let red = ReducedEngine::new(&db, user).unwrap();
        for goal in [
            "L[p(K : a -C-> V)] << own_class",
            "s[p(K : a -C-> V)] << own_class",
        ] {
            assert_eq!(
                op.solve_text(goal).unwrap(),
                red.solve_text(goal).unwrap(),
                "user-mode divergence on `{goal}` at {user}"
            );
        }
    }
}

#[test]
fn datalog_degeneration_equivalence() {
    // Prop 6.1: plain Datalog programs give classical answers through
    // both pipelines.
    let db = parse_database(
        "edge(a, b). edge(b, c). edge(c, d).\
         path(X, Y) <- edge(X, Y).\
         path(X, Y) <- edge(X, Z), path(Z, Y).",
    )
    .unwrap();
    let op = MultiLogEngine::new(&db, "system").unwrap();
    let red = ReducedEngine::new(&db, "system").unwrap();
    let a = op.solve_text("path(X, Y)").unwrap();
    let b = red.solve_text("path(X, Y)").unwrap();
    assert_eq!(a.len(), 6);
    assert_eq!(a, b);
}

/// Generate a random admissible MultiLog database over a chain lattice:
/// random facts at random levels plus rules deriving top-level facts from
/// beliefs about lower levels (respecting belief stratification).
fn arb_db() -> impl Strategy<Value = (String, usize)> {
    let fact = (0usize..3, 0usize..4, 0usize..3, 0usize..4);
    (
        proptest::collection::vec(fact, 1..25),
        proptest::collection::vec((0usize..4, 0usize..2), 0..6),
        2usize..4,
    )
        .prop_map(|(facts, rules, depth)| {
            let mut src = String::new();
            for i in 0..depth {
                src.push_str(&format!("level(l{i}).\n"));
            }
            for i in 1..depth {
                src.push_str(&format!("order(l{}, l{i}).\n", i - 1));
            }
            for (lvl, key, cls, val) in facts {
                let lvl = lvl.min(depth - 1);
                // Keep classes at or below the fact's level so the guards
                // behave like the Mission examples.
                let cls = cls.min(lvl);
                src.push_str(&format!("l{lvl}[data(k{key} : a -l{cls}-> v{val})].\n"));
            }
            let top = depth - 1;
            for (key, mode) in rules {
                let mode = if mode == 0 { "opt" } else { "cau" };
                let below = top - 1;
                src.push_str(&format!(
                    "l{top}[derived(k{key} : b -l{top}-> dv{key})] <- \
                     l{below}[data(k{key} : a -C-> V)] << {mode}.\n"
                ));
            }
            (src, depth)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equivalence_random_dbs((src, depth) in arb_db()) {
        let db = parse_database(&src).expect("generated db parses");
        for lvl in 0..depth {
            let user = format!("l{lvl}");
            let op = MultiLogEngine::new(&db, &user).expect("operational ok");
            let red = ReducedEngine::new(&db, &user).expect("reduction ok");
            for goal in [
                "L[data(K : a -C-> V)]",
                "L[data(K : a -C-> V)] << fir",
                "L[data(K : a -C-> V)] << opt",
                "L[data(K : a -C-> V)] << cau",
                "L[derived(K : b -C-> V)]",
                "L[derived(K : b -C-> V)] << opt",
            ] {
                let a = op.solve_text(goal).expect("op solve");
                let b = red.solve_text(goal).expect("red solve");
                prop_assert_eq!(a, b, "divergence on `{}` at {} for db:\n{}", goal, user, src);
            }
        }
    }

    #[test]
    fn operational_answers_respect_no_read_up((src, depth) in arb_db()) {
        let db = parse_database(&src).expect("generated db parses");
        for lvl in 0..depth {
            let user = format!("l{lvl}");
            let op = MultiLogEngine::new(&db, &user).expect("operational ok");
            let lat = op.lattice().clone();
            let u = lat.label(&user).expect("user level exists");
            for ans in op.solve_text("L[data(K : a -C-> V)]").expect("solve") {
                let l = ans["L"].to_string();
                let c = ans["C"].to_string();
                prop_assert!(lat.dominates_by_name(&user, &l).unwrap(),
                    "answer level {} not dominated by user {}", l, user);
                prop_assert!(lat.dominates_by_name(&user, &c).unwrap(),
                    "answer class {} not dominated by user {}", c, user);
                let _ = u;
            }
        }
    }
}
