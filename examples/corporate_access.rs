//! A corporate scenario on a *partial* order: `public` below the two
//! incomparable departments `finance` and `engineering`, both below
//! `executive`. Demonstrates the multiple-model behaviour of cautious
//! belief under incomparable sources (§3.1) and a user-defined belief
//! mode (§7).
//!
//! ```text
//! cargo run -p multilog-suite --example corporate_access
//! ```

use multilog_core::{parse_database, MultiLogEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = parse_database(
        r#"
        % Λ — a diamond: public < {finance, engineering} < executive.
        level(public). level(finance). level(engineering). level(executive).
        order(public, finance).
        order(public, engineering).
        order(finance, executive).
        order(engineering, executive).

        % Σ — the forecast for project atlas, by department.
        public[project(atlas : budget -public-> unknown)].
        finance[project(atlas : budget -finance-> overrun)].
        engineering[project(atlas : budget -engineering-> on_track)].
        executive[project(atlas : owner -public-> board)].

        % Π — a user-defined mode: `secondhand` believes a value at H if
        % some strictly dominated level asserted it at its own level.
        bel(project, K, budget, V, C, H, secondhand) <-
            L[project(K : budget -C-> V)], L leq H, order(L2, H), level(L2).
        "#,
    )?;

    let exec = MultiLogEngine::new(&db, "executive")?;

    println!("== the executive's optimistic view of atlas' budget ==");
    for a in exec.solve_text("executive[project(atlas : budget -C-> V)] << opt")? {
        println!("  {} (classified {})", a["V"], a["C"]);
    }

    println!("\n== the executive's cautious view ==");
    let cautious = exec.solve_text("executive[project(atlas : budget -C-> V)] << cau")?;
    for a in &cautious {
        println!("  {} (classified {})", a["V"], a["C"]);
    }
    // `finance` and `engineering` are incomparable: neither's
    // classification dominates, so *both* maximal reports survive — the
    // paper's "multiple models and associated unpredictability" — while
    // the public `unknown` is overridden by both.
    assert_eq!(cautious.len(), 2);
    assert!(cautious.iter().all(|a| a["V"].to_string() != "unknown"));

    println!("\n== what finance believes, cautiously ==");
    let fin = MultiLogEngine::new(&db, "finance")?;
    for a in fin.solve_text("finance[project(atlas : budget -C-> V)] << cau")? {
        println!("  {} (classified {})", a["V"], a["C"]);
    }

    println!("\n== the user-defined `secondhand` mode at executive ==");
    for a in exec.solve_text("executive[project(atlas : budget -C-> V)] << secondhand")? {
        println!("  {} (classified {})", a["V"], a["C"]);
    }

    // Bell–LaPadula sanity: engineering cannot read finance's report.
    let eng = MultiLogEngine::new(&db, "engineering")?;
    let overrun = eng.solve_text("L[project(atlas : budget -C-> overrun)]")?;
    assert!(overrun.is_empty(), "no read across incomparable levels");
    println!("\nengineering cannot see finance's `overrun` report — incomparable levels.");

    Ok(())
}
