//! The paper's running example, end to end: replay the update history
//! that produces Figure 1's `Mission` relation, inspect the views at each
//! clearance, compute the three belief-mode views, answer the §3.2 query,
//! and print the Jukic–Vrbsky interpretation table.
//!
//! ```text
//! cargo run -p multilog-suite --example starship_missions
//! ```

use multilog_mlsrel::belief::{believe, BeliefMode};
use multilog_mlsrel::jv::JvRelation;
use multilog_mlsrel::ops::replay;
use multilog_mlsrel::query::believed_in_all_modes;
use multilog_mlsrel::{mission, view, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Replay the reconstructed update history (inserts at U, the
    //    C-level supply mission, the S-level reclassifications, and the
    //    deletions that create the surprise stories).
    let (lat, scheme) = mission::mission_scheme();
    let rel = replay(scheme, &mission::mission_history())?;
    println!("== stored Mission relation (Figure 1), from history replay ==");
    print!("{}", rel.render());
    rel.check_integrity()?;

    // 2. What each clearance sees (Jajodia–Sandhu views, Figures 2–3).
    for level in ["U", "C", "S"] {
        let l = lat.require(level)?;
        println!("\n== view at {level} (σ + subsumption) ==");
        print!("{}", view::view_at(&rel, l).render());
    }

    // 3. The three belief modes at C (Figures 6–8).
    let c = lat.require("C")?;
    for mode in BeliefMode::all() {
        println!("\n== β(Mission, C, {mode}) ==");
        print!("{}", believe(&rel, c, mode)?.render());
    }

    // 4. The §3.2 query: "starships spying on Mars without any doubt".
    let s = lat.require("S")?;
    let certain = believed_in_all_modes(
        &rel,
        s,
        &["Starship"],
        &[
            ("Destination", Value::str("Mars")),
            ("Objective", Value::str("Spying")),
        ],
    )?;
    println!("\n== starships spying on Mars, believed in every mode at S ==");
    for row in &certain {
        println!("  {}", row[0]);
    }
    assert_eq!(certain, vec![vec![Value::str("Voyager")]]);

    // 5. The Jukic–Vrbsky reading of the same history (Figures 4–5).
    let (_, scheme) = mission::mission_scheme();
    let jv = JvRelation::from_history(scheme, &mission::mission_history())?;
    println!("\n== Jukic–Vrbsky belief labels (Figure 4) ==");
    print!("{}", jv.render());
    println!("\n== interpretations at U | C | S (Figure 5) ==");
    print!("{}", jv.render_interpretations(&["U", "C", "S"]));

    Ok(())
}
