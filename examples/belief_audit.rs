//! Belief auditing: use proof trees to explain *why* a belief holds,
//! cross-check the operational and reduction semantics (Theorem 6.1), and
//! show what re-enabling the σ filter (Figure 13) changes.
//!
//! ```text
//! cargo run -p multilog-suite --example belief_audit
//! ```

use multilog_core::examples::{mission_db, D1_SOURCE};
use multilog_core::proof::prove_text;
use multilog_core::reduce::ReducedEngine;
use multilog_core::{parse_database, MultiLogEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Audit a cautious belief on the Mission database. ---
    let db = mission_db()?;
    let engine = MultiLogEngine::new(&db, "s")?;

    println!("== why does S cautiously believe Voyager is spying? ==");
    let goal = "s[mission(voyager : objective -s-> spying)] << cau";
    let tree = prove_text(&engine, goal)?.expect("the belief holds");
    print!("{}", tree.render());
    println!("(proof height {}, size {})", tree.height(), tree.size());

    println!("\n== …and why it does NOT believe the Training cover story ==");
    let cover = "s[mission(voyager : objective -u-> training)] << cau";
    assert!(prove_text(&engine, cover)?.is_none());
    println!("  no proof: the S-classified `spying` overrides the U column.");
    // But optimistically, the cover story is still *visible*:
    assert!(prove_text(
        &engine,
        "s[mission(voyager : objective -u-> training)] << opt"
    )?
    .is_some());
    println!("  (optimistically it is still believed — mode choice matters.)");

    // --- 2. Theorem 6.1 live: operational vs reduction answers. ---
    println!("\n== Theorem 6.1 spot check: operational vs CORAL-style reduction ==");
    let reduced = ReducedEngine::new(&db, "s")?;
    for goal in [
        "s[mission(K : objective -C-> V)] << cau",
        "s[mission(K : destination -C-> V)] << fir",
        "L[mission(avenger : objective -C-> V)]",
    ] {
        let a = engine.solve_text(goal)?;
        let b = reduced.solve_text(goal)?;
        assert_eq!(a, b);
        println!("  `{goal}` → {} answers (both engines)", a.len());
    }

    // --- 3. The D1 query of Figure 11 through both pipelines. ---
    println!("\n== Figure 11's query on D1, at every clearance ==");
    let d1 = parse_database(D1_SOURCE)?;
    for user in ["u", "c", "s"] {
        let op = MultiLogEngine::new(&d1, user)?;
        let red = ReducedEngine::new(&d1, user)?;
        let goal = "c[p(k : a -u-> v)] << opt";
        let (a, b) = (op.solve_text(goal)?, red.solve_text(goal)?);
        assert_eq!(a, b);
        println!(
            "  at {user}: {}",
            if a.is_empty() {
                "fails (no read up)"
            } else {
                "succeeds"
            }
        );
    }

    // --- 4. The σ filter ablation (Figure 13). ---
    println!("\n== Figure 13: resurrecting the surprise story with σ ==");
    let phantom = parse_database(
        r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        s[mission(phantom : starship -u-> phantom)].
        s[mission(phantom : objective -s-> spying)].
        "#,
    )?;
    let plain = MultiLogEngine::new(&phantom, "c")?;
    let sigma = multilog_core::filter::engine_with_sigma(&phantom, "c")?;
    let probe = "c[mission(phantom : starship -u-> phantom)]";
    println!(
        "  `{probe}`\n    MultiLog default: {} answers (no surprise stories)\n    with σ (FILTER): {} answers",
        plain.solve_text(probe)?.len(),
        sigma.solve_text(probe)?.len(),
    );

    Ok(())
}
