//! Quickstart: declare a security lattice, assert labelled facts, and ask
//! belief queries in the three modes.
//!
//! ```text
//! cargo run -p multilog-suite --example quickstart
//! ```

use multilog_core::proof::prove_text;
use multilog_core::{parse_database, MultiLogEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A MultiLog database: Λ declares the lattice `low < high`, Σ holds
    // the labelled data, Π ordinary Datalog.
    let db = parse_database(
        r#"
        % Λ — the security lattice.
        level(low). level(high).
        order(low, high).

        % Σ — labelled facts: the low level believes the server is up;
        % the high level knows it is actually down for maintenance.
        low[status(web1 : state -low-> up)].
        high[status(web1 : state -high-> maintenance)].

        % Π — plain Datalog.
        oncall(alice).
        "#,
    )?;

    // Evaluate at the `high` clearance.
    let engine = MultiLogEngine::new(&db, "high")?;

    println!("== beliefs about web1's state at level high ==");
    for mode in ["fir", "opt", "cau"] {
        let answers = engine.solve_text(&format!("high[status(web1 : state -C-> V)] << {mode}"))?;
        let rendered: Vec<String> = answers
            .iter()
            .map(|a| format!("{} (classified {})", a["V"], a["C"]))
            .collect();
        println!("  {mode:>3}: {}", rendered.join(", "));
    }
    // fir: only `maintenance` (asserted at high).
    // opt: both `up` and `maintenance` (everything visible).
    // cau: only `maintenance` (the high classification overrides).

    println!("\n== the low-level user's view ==");
    let low_engine = MultiLogEngine::new(&db, "low")?;
    let answers = low_engine.solve_text("low[status(web1 : state -C-> V)] << opt")?;
    for a in &answers {
        println!("  believes: {}", a["V"]);
    }
    assert_eq!(answers.len(), 1, "the maintenance secret must not leak");

    println!("\n== why does high cautiously believe `maintenance`? ==");
    let tree = prove_text(
        &engine,
        "high[status(web1 : state -high-> maintenance)] << cau",
    )?
    .expect("provable");
    print!("{}", tree.render());

    Ok(())
}
