//! `multilog-suite` — the integration shell of the MultiLog workspace.
//!
//! This crate has no library code of its own: it exists to host the
//! repo-root `tests/` (cross-crate integration tests, including the
//! Theorem 6.1 equivalence suite and the figure verifications) and
//! `examples/` (the runnable demo binaries) as Cargo targets with
//! explicit paths, so `cargo test --workspace` and
//! `cargo run --example …` work from a virtual workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
