//! Error type for the MultiLog core.

use std::fmt;

use multilog_datalog::DatalogError;
use multilog_lattice::LatticeError;
use multilog_mlsrel::MlsError;

/// Errors raised while parsing, validating, or evaluating MultiLog
/// databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiLogError {
    /// Syntax error with position information.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// Description.
        message: String,
    },
    /// Admissibility violation (Definition 5.3).
    NotAdmissible {
        /// Description of the violated condition.
        detail: String,
    },
    /// Consistency violation (Definition 5.4) detected on the meaning of
    /// the Σ component.
    Inconsistent {
        /// Description of the violated integrity property.
        detail: String,
    },
    /// A clause is not range-restricted.
    UnsafeVariable {
        /// The offending variable.
        variable: String,
        /// The clause, rendered.
        clause: String,
    },
    /// The program uses a cautious b-atom in a position the level
    /// stratification cannot order (our resolution of the paper's
    /// underspecified cautious recursion; see DESIGN.md).
    NotBeliefStratified {
        /// Description of the offending clause.
        detail: String,
    },
    /// A referenced belief mode is neither built-in nor user-defined.
    UnknownMode(String),
    /// The database uses a construct only the reduction semantics
    /// executes (aggregate heads, `@algo(...)` operator calls); the
    /// operational engine rejects it instead of silently deriving
    /// nothing.
    ReductionOnly {
        /// The offending clause, rendered.
        detail: String,
    },
    /// An extensional update (assert or retract) used a non-ground
    /// m-atom; updates must name one concrete cell.
    NonGroundUpdate {
        /// The offending atom, rendered.
        atom: String,
    },
    /// Underlying lattice error.
    Lattice(LatticeError),
    /// Error from the Datalog back-end during reduction.
    Datalog(DatalogError),
    /// Error from the MLS relational layer while applying an update
    /// operation through a live database.
    Relational(MlsError),
    /// Evaluation exceeded the configured fact budget.
    BudgetExceeded {
        /// The configured budget.
        budget: usize,
        /// Facts materialized (or buffered) when the guard tripped.
        used: usize,
    },
    /// Evaluation exceeded its wall-clock deadline.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// Evaluation was cancelled through a
    /// [`CancelToken`](multilog_datalog::CancelToken).
    Cancelled,
    /// A belief server already has an open writer session; MVCC here is
    /// single-writer / multi-reader, so the second writer must wait for
    /// the first to drop.
    WriterBusy,
    /// An internal invariant of the live-update bridge did not hold
    /// (e.g. a tuple's m-atom missing from the refcount table). Typed
    /// rather than a panic, per the no-panic policy, so long-lived
    /// sessions degrade to a failed request instead of crashing.
    Internal {
        /// Which invariant was violated.
        detail: String,
    },
}

impl fmt::Display for MultiLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiLogError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            MultiLogError::NotAdmissible { detail } => {
                write!(f, "database is not admissible (Def 5.3): {detail}")
            }
            MultiLogError::Inconsistent { detail } => {
                write!(f, "database is not consistent (Def 5.4): {detail}")
            }
            MultiLogError::UnsafeVariable { variable, clause } => {
                write!(f, "unsafe variable `{variable}` in `{clause}`")
            }
            MultiLogError::NotBeliefStratified { detail } => {
                write!(f, "cautious belief is not level-stratified: {detail}")
            }
            MultiLogError::UnknownMode(m) => write!(f, "unknown belief mode `{m}`"),
            MultiLogError::ReductionOnly { detail } => {
                write!(
                    f,
                    "construct requires the reduction engine (`ReducedEngine`): {detail}"
                )
            }
            MultiLogError::NonGroundUpdate { atom } => {
                write!(f, "extensional updates must be ground: `{atom}`")
            }
            MultiLogError::Lattice(e) => write!(f, "lattice error: {e}"),
            MultiLogError::Datalog(e) => write!(f, "datalog back-end error: {e}"),
            MultiLogError::Relational(e) => write!(f, "relational update error: {e}"),
            MultiLogError::BudgetExceeded { budget, used } => {
                write!(
                    f,
                    "evaluation exceeded the fact budget of {budget} ({used} used)"
                )
            }
            MultiLogError::DeadlineExceeded { limit_ms } => {
                write!(f, "evaluation exceeded the deadline of {limit_ms} ms")
            }
            MultiLogError::Cancelled => write!(f, "evaluation was cancelled"),
            MultiLogError::WriterBusy => {
                write!(f, "a writer session is already open on this belief server")
            }
            MultiLogError::Internal { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for MultiLogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MultiLogError::Lattice(e) => Some(e),
            MultiLogError::Datalog(e) => Some(e),
            MultiLogError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LatticeError> for MultiLogError {
    fn from(e: LatticeError) -> Self {
        MultiLogError::Lattice(e)
    }
}

impl From<MlsError> for MultiLogError {
    fn from(e: MlsError) -> Self {
        MultiLogError::Relational(e)
    }
}

impl From<DatalogError> for MultiLogError {
    fn from(e: DatalogError) -> Self {
        // Guard trips keep their typed identity across the reduction
        // boundary, so callers match one set of variants for both the
        // operational and the reduced engine.
        match e {
            DatalogError::BudgetExceeded { budget, used } => {
                MultiLogError::BudgetExceeded { budget, used }
            }
            DatalogError::DeadlineExceeded { limit_ms } => {
                MultiLogError::DeadlineExceeded { limit_ms }
            }
            DatalogError::Cancelled => MultiLogError::Cancelled,
            other => MultiLogError::Datalog(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases = [
            MultiLogError::NotAdmissible { detail: "x".into() },
            MultiLogError::Inconsistent { detail: "x".into() },
            MultiLogError::UnknownMode("zeal".into()),
            MultiLogError::ReductionOnly { detail: "x".into() },
            MultiLogError::NonGroundUpdate { atom: "x".into() },
            MultiLogError::BudgetExceeded { budget: 1, used: 2 },
            MultiLogError::DeadlineExceeded { limit_ms: 5 },
            MultiLogError::Cancelled,
            MultiLogError::WriterBusy,
            MultiLogError::Internal { detail: "x".into() },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        let e: MultiLogError = LatticeError::Empty.into();
        assert!(matches!(e, MultiLogError::Lattice(_)));
        let e: MultiLogError = DatalogError::UnknownPredicate("p".into()).into();
        assert!(matches!(e, MultiLogError::Datalog(_)));
    }

    #[test]
    fn guard_errors_lift_through_conversion() {
        let e: MultiLogError = DatalogError::DeadlineExceeded { limit_ms: 9 }.into();
        assert!(matches!(e, MultiLogError::DeadlineExceeded { limit_ms: 9 }));
        let e: MultiLogError = DatalogError::Cancelled.into();
        assert!(matches!(e, MultiLogError::Cancelled));
        let e: MultiLogError = DatalogError::BudgetExceeded { budget: 3, used: 4 }.into();
        assert!(matches!(
            e,
            MultiLogError::BudgetExceeded { budget: 3, used: 4 }
        ));
    }
}
