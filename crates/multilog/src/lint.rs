//! Static analysis (lint) over parsed MultiLog programs.
//!
//! The lint pass checks a [`ParsedProgram`] *before* any evaluation and
//! emits rustc-style spanned [`Diagnostic`]s with stable codes. Errors
//! (`ML01xx` with severity `error`) are conditions the engine would also
//! reject — reported here with precise source positions instead of a
//! stringly runtime error. Warnings flag clauses that are admissible but
//! almost certainly not what the author meant (statically empty rules,
//! degenerate belief modes, cover-story conflicts Proposition 5.1 would
//! reject, …).
//!
//! Codes are stable: tools may match on them, and `docs/LINTS.md`
//! catalogues each with a minimal trigger and the paper section it
//! enforces. Datalog-side lints (`ML00xx`) live in
//! `multilog_datalog::analyze`; this module owns the MultiLog-level
//! codes `ML0101`–`ML0114` and additionally surfaces the shared ML0008
//! (algorithm-operator / aggregation misuse) at the MultiLog syntax.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use multilog_lattice::{Label, LatticeBuilder, SecurityLattice};

pub use multilog_datalog::Severity;

use crate::ast::{Atom, Clause, Goal, Head, Span, Term};
use crate::belief::Mode;
use crate::db::eval_lambda;
use crate::parser::{parse_items, ParsedProgram};
use crate::Result;

/// A single lint finding with a stable code and a source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `ML0103`.
    pub code: &'static str,
    /// Short kebab-case lint name, e.g. `undeclared-label`.
    pub name: &'static str,
    /// `error` findings make `run`/`query` fail fast; `warning`s do not.
    pub severity: Severity,
    /// Source position of the offending item (1-based line/column).
    pub span: Span,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.span
        )
    }
}

/// The outcome of linting one program: diagnostics plus the source text
/// (kept for rendering source-line echoes).
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, errors first, then in source order.
    pub diagnostics: Vec<Diagnostic>,
    source: String,
}

impl LintReport {
    /// Assemble a report from pre-sorted diagnostics and the source text
    /// they refer to — used by the flow pass ([`crate::flow`]), which
    /// renders its ML02xx findings through the same machinery.
    pub(crate) fn from_parts(mut diagnostics: Vec<Diagnostic>, source: String) -> LintReport {
        sort_diagnostics(&mut diagnostics);
        LintReport {
            diagnostics,
            source,
        }
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// `true` if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// `true` if there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// One-line summary, e.g. `2 errors, 1 warning`.
    pub fn summary(&self) -> String {
        let (e, w) = (self.errors(), self.warnings());
        let plural = |n: usize| if n == 1 { "" } else { "s" };
        format!("{e} error{}, {w} warning{}", plural(e), plural(w))
    }

    /// Render all diagnostics rustc-style, echoing the offending source
    /// line under each finding:
    ///
    /// ```text
    /// error[ML0103]: security label `s` is not asserted by Λ
    ///   --> db.mlog:2:1
    ///    |
    ///  2 | u[p(k : a -s-> v)].
    ///    | ^
    /// ```
    pub fn render_human(&self, source_name: &str) -> String {
        let lines: Vec<&str> = self.source.lines().collect();
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            if d.span.is_known() {
                out.push_str(&format!(
                    "  --> {source_name}:{}:{}\n",
                    d.span.line, d.span.column
                ));
                if let Some(text) = lines.get(d.span.line.wrapping_sub(1)) {
                    let gut = d.span.line.to_string();
                    let pad = " ".repeat(gut.len());
                    out.push_str(&format!(" {pad} |\n"));
                    out.push_str(&format!(" {gut} | {text}\n"));
                    let caret_pad = " ".repeat(d.span.column.saturating_sub(1));
                    out.push_str(&format!(" {pad} | {caret_pad}^\n"));
                }
            } else {
                out.push_str(&format!("  --> {source_name}\n"));
            }
            out.push('\n');
        }
        out.push_str(&format!("lint: {}\n", self.summary()));
        out
    }

    /// Render the report as a JSON object (hand-rolled; the workspace has
    /// no serde):
    /// `{"diagnostics":[{"code":…,"name":…,"severity":…,"line":…,"column":…,"message":…}],"errors":N,"warnings":N}`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"diagnostics\":{},\"errors\":{},\"warnings\":{}}}",
            diagnostics_json(&self.diagnostics),
            self.errors(),
            self.warnings()
        )
    }
}

/// Render diagnostics as a JSON array — shared between the lint report
/// and the flow report ([`crate::flow`]), so both emit the same shape.
pub(crate) fn diagnostics_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"line\":{},\"column\":{},\"message\":\"{}\"}}",
            d.code,
            d.name,
            d.severity,
            d.span.line,
            d.span.column,
            json_escape(&d.message)
        ));
    }
    out.push(']');
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lint a MultiLog source text. Returns `Err` only on a *syntax* error;
/// every semantic problem becomes a [`Diagnostic`] in the report.
pub fn lint_source(src: &str) -> Result<LintReport> {
    lint_source_at(src, None)
}

/// Lint with an optional clearance level: additionally reports atoms that
/// can never be visible at that clearance (`ML0114`) and checks the
/// clearance itself is a declared level.
pub fn lint_source_at(src: &str, clearance: Option<&str>) -> Result<LintReport> {
    let prog = parse_items(src)?;
    let mut diagnostics = lint_program(&prog, clearance);
    sort_diagnostics(&mut diagnostics);
    Ok(LintReport {
        diagnostics,
        source: src.to_owned(),
    })
}

/// Run every check over an already-parsed program. Diagnostics are
/// returned unsorted; [`lint_source`] sorts errors first, then by span.
pub fn lint_program(prog: &ParsedProgram, clearance: Option<&str>) -> Vec<Diagnostic> {
    let mut ctx = Ctx::new(prog, clearance);
    ctx.check_unsafe_variables(); //          ML0101
    ctx.check_lambda_purity(); //             ML0102
    ctx.check_labels_declared(); //           ML0103
    ctx.check_lattice_cycle(); //             ML0104
    ctx.check_belief_stratification(); //     ML0105
    ctx.check_modes_known(); //               ML0106
    ctx.check_statically_empty(); //          ML0107
    ctx.check_unsatisfiable_dominance(); //   ML0108
    ctx.check_degenerate_belief_modes(); //   ML0109
    ctx.check_cover_story_conflicts(); //     ML0110
    ctx.check_unused_predicates(); //         ML0111
    ctx.check_singleton_variables(); //       ML0112
    ctx.check_arity_mismatches(); //          ML0113
    ctx.check_invisible_at_clearance(); //    ML0114
    ctx.check_algo_and_aggregates(); //       ML0008 (shared with Datalog)
    ctx.out
}

/// Errors first, then source order, then code — matching
/// `multilog_datalog::analyze::sort_lints`.
fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (b.severity == Severity::Error)
            .cmp(&(a.severity == Severity::Error))
            .then_with(|| a.span.line.cmp(&b.span.line))
            .then_with(|| a.span.column.cmp(&b.span.column))
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
}

/// Shared analysis state: the program partitioned by head kind, the
/// evaluated `[[Λ]]`, and (when Λ is acyclic) the built lattice.
struct Ctx<'p> {
    prog: &'p ParsedProgram,
    clearance: Option<&'p str>,
    lambda: Vec<&'p Clause>,
    sigma: Vec<&'p Clause>,
    pi: Vec<&'p Clause>,
    /// `[[Λ]]` level names.
    levels: HashSet<String>,
    /// `[[Λ]]` order edges.
    orders: HashSet<(String, String)>,
    /// The security lattice, when `[[Λ]]` is non-empty and acyclic.
    lattice: Option<SecurityLattice>,
    out: Vec<Diagnostic>,
}

impl<'p> Ctx<'p> {
    fn new(prog: &'p ParsedProgram, clearance: Option<&'p str>) -> Self {
        let mut lambda = Vec::new();
        let mut sigma = Vec::new();
        let mut pi = Vec::new();
        for c in &prog.clauses {
            match &c.head {
                Head::L(_) | Head::H(_, _) => lambda.push(c),
                Head::M(_) => sigma.push(c),
                Head::P(_) => pi.push(c),
            }
        }
        let owned: Vec<Clause> = lambda.iter().map(|c| (*c).clone()).collect();
        let (levels, orders) = eval_lambda(&owned);
        let lattice = build_lattice(&levels, &orders);
        Ctx {
            prog,
            clearance,
            lambda,
            sigma,
            pi,
            levels,
            orders,
            lattice,
            out: Vec::new(),
        }
    }

    fn push(
        &mut self,
        code: &'static str,
        name: &'static str,
        sev: Severity,
        span: Span,
        message: String,
    ) {
        self.out.push(Diagnostic {
            code,
            name,
            severity: sev,
            span,
            message,
        });
    }

    /// `true` when the program actually uses the MLS machinery; pure-Π
    /// programs degenerate to Datalog (Prop 6.1) and skip lattice lints.
    fn uses_lattice(&self) -> bool {
        !self.lambda.is_empty() || !self.sigma.is_empty()
    }

    fn label_of(&self, name: &str) -> Option<Label> {
        self.lattice.as_ref().and_then(|l| l.label(name))
    }

    /// Each query paired with its span (spans parallel `queries`).
    fn queries_with_spans(&self) -> impl Iterator<Item = (&'p Goal, Span)> + '_ {
        self.prog.queries.iter().enumerate().map(|(i, q)| {
            let span = self
                .prog
                .query_spans
                .get(i)
                .copied()
                .unwrap_or_else(Span::unknown);
            (q, span)
        })
    }

    // ML0101 — every head variable must occur in the body (Def 5.2 range
    // restriction; facts must be ground).
    fn check_unsafe_variables(&mut self) {
        for c in &self.prog.clauses {
            let body_vars: HashSet<&str> = c.body.iter().flat_map(Atom::variables).collect();
            let mut reported: HashSet<&str> = HashSet::new();
            for v in c.head.variables() {
                if !body_vars.contains(v) && reported.insert(v) {
                    self.out.push(Diagnostic {
                        code: "ML0101",
                        name: "unsafe-variable",
                        severity: Severity::Error,
                        span: c.span,
                        message: format!("head variable `{v}` does not occur in the body of `{c}`"),
                    });
                }
            }
        }
    }

    // ML0102 — Def 5.3(1): a Λ clause may depend only on l-/h-atoms (and
    // the internal `leq` constraint).
    fn check_lambda_purity(&mut self) {
        let mut found = Vec::new();
        for c in &self.lambda {
            for a in &c.body {
                if !matches!(a, Atom::L(_) | Atom::H(_, _) | Atom::Leq(_, _)) {
                    found.push((
                        c.span,
                        format!("Λ clause `{c}` depends on the non-lattice atom `{a}`"),
                    ));
                }
            }
        }
        for (span, msg) in found {
            self.push("ML0102", "lambda-impure", Severity::Error, span, msg);
        }
    }

    // ML0103 — Def 5.3(2): every ground security label used in Σ (and in
    // queries, and the clearance itself) must be asserted by [[Λ]]; order
    // facts may not mention undeclared levels.
    fn check_labels_declared(&mut self) {
        if !self.uses_lattice() {
            return;
        }
        let mut found: Vec<(Span, String)> = Vec::new();
        let check_label = |t: &Term, span: Span, what: &str, found: &mut Vec<(Span, String)>| {
            if let Term::Sym(s) = t {
                if !self.levels.contains(s.as_ref()) {
                    found.push((
                        span,
                        format!("security label `{s}` in {what} is not asserted by Λ"),
                    ));
                }
            }
        };
        for c in &self.lambda {
            if let Head::H(lo, hi) = &c.head {
                for t in [lo, hi] {
                    if let Term::Sym(s) = t {
                        if !self.levels.contains(s.as_ref()) {
                            found.push((
                                c.span,
                                format!("order over undeclared level `{s}` in `{c}`"),
                            ));
                        }
                    }
                }
            }
        }
        for c in &self.sigma {
            let desc = format!("`{c}`");
            if let Head::M(m) = &c.head {
                check_label(&m.level, c.span, &desc, &mut found);
                check_label(&m.class, c.span, &desc, &mut found);
            }
            for a in &c.body {
                if let Atom::M(m) | Atom::B(m, _) = a {
                    check_label(&m.level, c.span, &desc, &mut found);
                    check_label(&m.class, c.span, &desc, &mut found);
                }
            }
        }
        for c in &self.pi {
            let desc = format!("`{c}`");
            for a in &c.body {
                if let Atom::M(m) | Atom::B(m, _) = a {
                    check_label(&m.level, c.span, &desc, &mut found);
                    check_label(&m.class, c.span, &desc, &mut found);
                }
            }
        }
        let queries: Vec<(&Goal, Span)> = self.queries_with_spans().collect();
        for (q, span) in queries {
            for a in q {
                if let Atom::M(m) | Atom::B(m, _) = a {
                    check_label(&m.level, span, "the query", &mut found);
                    check_label(&m.class, span, "the query", &mut found);
                }
            }
        }
        if let Some(u) = self.clearance {
            if !self.levels.contains(u) {
                found.push((
                    Span::unknown(),
                    format!("clearance level `{u}` is not asserted by Λ"),
                ));
            }
        }
        for (span, msg) in found {
            self.push("ML0103", "undeclared-label", Severity::Error, span, msg);
        }
    }

    // ML0104 — Def 5.3(3): [[Λ]] must induce a partial order. Reports a
    // cycle witness through the order edges.
    fn check_lattice_cycle(&mut self) {
        if let Some(cycle) = order_cycle(&self.levels, &self.orders) {
            let span = self
                .lambda
                .iter()
                .find(|c| matches!(&c.head, Head::H(_, _)))
                .map(|c| c.span)
                .unwrap_or_else(Span::unknown);
            let mut path = cycle.join(" -> ");
            if let Some(first) = cycle.first() {
                path.push_str(" -> ");
                path.push_str(first);
            }
            self.push(
                "ML0104",
                "lattice-cycle",
                Severity::Error,
                span,
                format!("[[Λ]] is not a partial order: cycle {path}"),
            );
        }
    }

    // ML0105 — the level-stratification condition for cautious belief:
    // when `<< cau` occurs in a clause body, every m-clause head level
    // must be ground, each consulted `cau` level must be ground and
    // strictly dominated by the head level, and p-clauses may not consult
    // `cau` at all (see `MultiLogEngine`'s module docs).
    fn check_belief_stratification(&mut self) {
        let uses_cau = self
            .sigma
            .iter()
            .chain(&self.pi)
            .flat_map(|c| &c.body)
            .any(|a| matches!(a, Atom::B(_, m) if m.as_ref() == "cau"));
        if !uses_cau {
            return;
        }
        let mut found: Vec<(Span, String)> = Vec::new();
        for c in &self.sigma {
            let Head::M(hm) = &c.head else { continue };
            let head_level = match &hm.level {
                Term::Sym(s) => self.label_of(s),
                _ => None,
            };
            if !matches!(&hm.level, Term::Sym(_)) {
                found.push((
                    c.span,
                    format!(
                        "clause `{c}` has a non-ground head level while the program uses `<< cau`"
                    ),
                ));
                continue;
            }
            for a in &c.body {
                if let Atom::B(bm, mode) = a {
                    if mode.as_ref() != "cau" {
                        continue;
                    }
                    let b_level = match &bm.level {
                        Term::Sym(s) => self.label_of(s),
                        _ => None,
                    };
                    let ok = match (b_level, head_level) {
                        (Some(bl), Some(hl)) => {
                            self.lattice.as_ref().is_some_and(|lat| lat.lt(bl, hl))
                        }
                        // Undeclared labels are ML0103's finding; only
                        // flag non-ground or non-dominated levels here.
                        _ => matches!(&bm.level, Term::Sym(_)),
                    };
                    if !ok {
                        found.push((
                            c.span,
                            format!(
                                "in `{c}` the `<< cau` level must be a ground level strictly \
                                 dominated by the head level"
                            ),
                        ));
                    }
                }
            }
        }
        for c in &self.pi {
            for a in &c.body {
                if matches!(a, Atom::B(_, m) if m.as_ref() == "cau") {
                    found.push((c.span, format!("p-clause `{c}` may not consult `<< cau`")));
                }
            }
        }
        for (span, msg) in found {
            self.push("ML0105", "belief-unstratified", Severity::Error, span, msg);
        }
    }

    // ML0106 — every belief mode must be built-in (`fir`/`opt`/`cau`) or
    // defined by a `bel/7` rule (§7).
    fn check_modes_known(&mut self) {
        let user_modes: HashSet<Arc<str>> = self
            .pi
            .iter()
            .filter_map(|c| match &c.head {
                Head::P(p) if p.pred.as_ref() == crate::modes::BEL && p.args.len() == 7 => {
                    match &p.args[6] {
                        Term::Sym(m) => Some(m.clone()),
                        _ => None,
                    }
                }
                _ => None,
            })
            .collect();
        let mut found: Vec<(Span, String)> = Vec::new();
        let check = |atoms: &[Atom], span: Span, found: &mut Vec<(Span, String)>| {
            for a in atoms {
                if let Atom::B(_, mode) = a {
                    if Mode::parse(mode).is_none() && !user_modes.contains(mode) {
                        found.push((
                            span,
                            format!(
                                "unknown belief mode `{mode}` (not built-in and no `bel/7` \
                                 rule defines it)"
                            ),
                        ));
                    }
                }
            }
        };
        for c in &self.prog.clauses {
            check(&c.body, c.span, &mut found);
        }
        let queries: Vec<(&Goal, Span)> = self.queries_with_spans().collect();
        for (q, span) in queries {
            check(q, span, &mut found);
        }
        for (span, msg) in found {
            self.push("ML0106", "unknown-mode", Severity::Error, span, msg);
        }
    }

    // ML0107 — a clause (or query) whose ground security labels have no
    // common dominator in the lattice can never fire: no clearance level
    // makes every label visible at once (Figure 13's guards `l ⪯ u`,
    // `c ⪯ u` all fail).
    fn check_statically_empty(&mut self) {
        let Some(lat) = self.lattice.as_ref() else {
            return;
        };
        let mut found: Vec<(Span, String)> = Vec::new();
        let ground_labels = |head: Option<&Head>, atoms: &[Atom]| -> Vec<Label> {
            let mut out = Vec::new();
            let mut push = |t: &Term| {
                if let Term::Sym(s) = t {
                    if let Some(l) = lat.label(s) {
                        out.push(l);
                    }
                }
            };
            if let Some(Head::M(m)) = head {
                push(&m.level);
                push(&m.class);
            }
            for a in atoms {
                if let Atom::M(m) | Atom::B(m, _) = a {
                    push(&m.level);
                    push(&m.class);
                }
            }
            out
        };
        for c in self.sigma.iter().chain(&self.pi) {
            let labels = ground_labels(Some(&c.head), &c.body);
            if !labels.is_empty() && lat.common_dominators(labels).is_empty() {
                found.push((
                    c.span,
                    format!(
                        "`{c}` can never fire: its security labels have no common \
                         dominator, so no clearance sees all of them"
                    ),
                ));
            }
        }
        let queries: Vec<(&Goal, Span)> = self.queries_with_spans().collect();
        for (q, span) in queries {
            let labels = ground_labels(None, q);
            if !labels.is_empty() && lat.common_dominators(labels).is_empty() {
                found.push((
                    span,
                    "the query's security labels have no common dominator, so no \
                     clearance can answer it"
                        .to_owned(),
                ));
            }
        }
        for (span, msg) in found {
            self.push(
                "ML0107",
                "statically-empty-rule",
                Severity::Warning,
                span,
                msg,
            );
        }
    }

    // ML0108 — a ground `l leq h` constraint that is false in the lattice
    // makes its clause (or query) unsatisfiable.
    fn check_unsatisfiable_dominance(&mut self) {
        let Some(lat) = self.lattice.as_ref() else {
            return;
        };
        let mut found: Vec<(Span, String)> = Vec::new();
        let check = |atoms: &[Atom], span: Span, what: &str, found: &mut Vec<(Span, String)>| {
            for a in atoms {
                if let Atom::Leq(Term::Sym(lo), Term::Sym(hi)) = a {
                    if let (Some(l), Some(h)) = (lat.label(lo), lat.label(hi)) {
                        if !lat.leq(l, h) {
                            found.push((
                                span,
                                format!(
                                    "dominance constraint `{lo} leq {hi}` in {what} is false \
                                     in the lattice"
                                ),
                            ));
                        }
                    }
                }
            }
        };
        for c in &self.prog.clauses {
            check(&c.body, c.span, &format!("`{c}`"), &mut found);
        }
        let queries: Vec<(&Goal, Span)> = self.queries_with_spans().collect();
        for (q, span) in queries {
            check(q, span, "the query", &mut found);
        }
        for (span, msg) in found {
            self.push(
                "ML0108",
                "unsatisfiable-dominance",
                Severity::Warning,
                span,
                msg,
            );
        }
    }

    // ML0109 — `<< cau` / `<< opt` quantify over the levels dominated by
    // the b-atom's level (Figure 13). If that down-set is a single label,
    // the mode degenerates to `fir` and the annotation is misleading.
    fn check_degenerate_belief_modes(&mut self) {
        let Some(lat) = self.lattice.as_ref() else {
            return;
        };
        let mut found: Vec<(Span, String)> = Vec::new();
        let check = |atoms: &[Atom], span: Span, found: &mut Vec<(Span, String)>| {
            for a in atoms {
                if let Atom::B(m, mode) = a {
                    if !matches!(mode.as_ref(), "cau" | "opt") {
                        continue;
                    }
                    if let Term::Sym(s) = &m.level {
                        if let Some(l) = lat.label(s) {
                            if lat.down_set(l).len() == 1 {
                                found.push((
                                    span,
                                    format!(
                                        "`<< {mode}` at level `{s}` degenerates to `fir`: \
                                         `{s}` dominates no other level"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        };
        for c in &self.prog.clauses {
            check(&c.body, c.span, &mut found);
        }
        let queries: Vec<(&Goal, Span)> = self.queries_with_spans().collect();
        for (q, span) in queries {
            check(q, span, &mut found);
        }
        for (span, msg) in found {
            self.push(
                "ML0109",
                "belief-mode-degenerate",
                Severity::Warning,
                span,
                msg,
            );
        }
    }

    // ML0110 — two ground Σ facts at the same level asserting different
    // values for the same (pred, key, attr, class) violate the FD of
    // Proposition 5.1's consistency check and will be flagged at run time.
    // Groups whose key attribute is polyinstantiated across classes are
    // skipped, mirroring `check_consistency`'s molecule-reconstruction
    // ambiguity rule.
    fn check_cover_story_conflicts(&mut self) {
        /// Key of a fact group: (level, pred, key).
        type GroupKey = (String, Arc<str>, String);
        /// One ground fact in a group: (attr, class, value, span).
        type GroupFact = (Arc<str>, String, Term, Span);
        let mut groups: HashMap<GroupKey, Vec<GroupFact>> = HashMap::new();
        for c in &self.sigma {
            if !c.body.is_empty() {
                continue;
            }
            let Head::M(m) = &c.head else { continue };
            let (Term::Sym(level), Term::Sym(key), Term::Sym(class)) = (&m.level, &m.key, &m.class)
            else {
                continue;
            };
            if !m.value.is_ground() {
                continue;
            }
            groups
                .entry((level.to_string(), m.pred.clone(), key.to_string()))
                .or_default()
                .push((m.attr.clone(), class.to_string(), m.value.clone(), c.span));
        }
        let mut found: Vec<(Span, String)> = Vec::new();
        let mut keys: Vec<_> = groups.keys().cloned().collect();
        keys.sort();
        for gk in keys {
            let facts = &groups[&gk];
            let (level, pred, key) = &gk;
            // Molecule-reconstruction ambiguity: the key attribute (an
            // attribute whose every value equals the key) appearing at
            // several classes makes grouping ambiguous — skip, exactly as
            // the runtime consistency check does.
            let mut key_attr_classes: HashMap<&str, HashSet<&str>> = HashMap::new();
            let mut key_attr_all_key: HashMap<&str, bool> = HashMap::new();
            for (attr, class, value, _) in facts {
                let is_key = matches!(value, Term::Sym(v) if v.as_ref() == key.as_str());
                let e = key_attr_all_key.entry(attr.as_ref()).or_insert(true);
                *e &= is_key;
                key_attr_classes
                    .entry(attr.as_ref())
                    .or_default()
                    .insert(class.as_str());
            }
            let ambiguous = key_attr_all_key.iter().any(|(attr, all_key)| {
                *all_key && key_attr_classes.get(*attr).map_or(0, HashSet::len) > 1
            });
            if ambiguous {
                continue;
            }
            let mut seen: HashMap<(&str, &str), (&Term, Span)> = HashMap::new();
            for (attr, class, value, span) in facts {
                match seen.get(&(attr.as_ref(), class.as_str())) {
                    Some((prev, prev_span)) if *prev != value => {
                        found.push((
                            *span,
                            format!(
                                "conflicting cover story: `{level}[{pred}({key} : {attr} \
                                 -{class}-> …)]` is asserted with two different values \
                                 (previous assertion at {prev_span}); Prop 5.1's consistency \
                                 check will reject this"
                            ),
                        ));
                    }
                    Some(_) => {}
                    None => {
                        seen.insert((attr.as_ref(), class.as_str()), (value, *span));
                    }
                }
            }
        }
        for (span, msg) in found {
            self.push(
                "ML0110",
                "conflicting-cover-story",
                Severity::Warning,
                span,
                msg,
            );
        }
    }

    // ML0111 — with queries present, a defined predicate from which no
    // query is reachable is dead weight. `bel/7` is exempt (consulted
    // implicitly by user-mode b-atoms), as are l-/h-heads (the lattice is
    // always live). Reachability itself is the shared kernel
    // `multilog_datalog::analyze::shared::reachable`, so this check and
    // the Datalog-level ML0005 cannot drift.
    fn check_unused_predicates(&mut self) {
        if self.prog.queries.is_empty() {
            return;
        }
        type Node = (&'static str, Arc<str>);
        fn atom_node(a: &Atom) -> Option<Node> {
            match a {
                Atom::M(m) | Atom::B(m, _) => Some(("m", m.pred.clone())),
                Atom::P(p) => Some(("p", p.pred.clone())),
                _ => None,
            }
        }
        fn head_node(h: &Head) -> Option<Node> {
            match h {
                Head::M(m) => Some(("m", m.pred.clone())),
                Head::P(p) => Some(("p", p.pred.clone())),
                Head::L(_) | Head::H(_, _) => None,
            }
        }
        fn intern(index: &mut HashMap<Node, usize>, n: Node) -> usize {
            let next = index.len();
            *index.entry(n).or_insert(next)
        }
        // Intern every (kind, pred) node, collect head→body edges and the
        // query seeds, then ask the shared kernel what is live.
        let mut index: HashMap<Node, usize> = HashMap::new();
        let mut seeds: Vec<usize> = Vec::new();
        for q in &self.prog.queries {
            for a in q {
                if let Some(n) = atom_node(a) {
                    seeds.push(intern(&mut index, n));
                }
            }
        }
        // b-atoms in user modes consult bel/7, and bel/7 bodies may
        // mention any m-atom — seed bel whenever any b-atom is needed.
        let any_b = self
            .prog
            .clauses
            .iter()
            .flat_map(|c| &c.body)
            .chain(self.prog.queries.iter().flatten())
            .any(|a| matches!(a, Atom::B(_, _)));
        if any_b {
            seeds.push(intern(&mut index, ("p", Arc::from(crate::modes::BEL))));
        }
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for c in &self.prog.clauses {
            let Some(h) = head_node(&c.head) else {
                continue;
            };
            let hi = intern(&mut index, h);
            for a in &c.body {
                if let Some(dep) = atom_node(a) {
                    let di = intern(&mut index, dep);
                    edges.push((hi, di));
                }
                // `@algo(input, …)` consults its input relation by name:
                // the input predicate is live whenever the calling rule
                // is (mirrors the Datalog layer's ML0004 behavior).
                if let Atom::P(p) = a {
                    if p.pred.starts_with('@') {
                        if let Some(Term::Sym(input)) = p.args.first() {
                            let di = intern(&mut index, ("p", input.clone()));
                            edges.push((hi, di));
                        }
                    }
                }
            }
        }
        let live = multilog_datalog::analyze::shared::reachable(index.len(), &edges, seeds);
        let mut found: Vec<(Span, String)> = Vec::new();
        let mut reported: HashSet<Node> = HashSet::new();
        for c in &self.prog.clauses {
            let Some(n) = head_node(&c.head) else {
                continue;
            };
            if n.1.as_ref() == crate::modes::BEL {
                continue;
            }
            let dead = index.get(&n).is_none_or(|&i| !live[i]);
            if dead && reported.insert(n.clone()) {
                let kind = if n.0 == "m" {
                    "m-predicate"
                } else {
                    "predicate"
                };
                found.push((
                    c.span,
                    format!("{kind} `{}` is defined but unreachable from any query", n.1),
                ));
            }
        }
        for (span, msg) in found {
            self.push("ML0111", "unused-predicate", Severity::Warning, span, msg);
        }
    }

    // ML0112 — a variable occurring exactly once in a source item is
    // usually a typo; prefix with `_` to silence. Desugared molecular
    // clauses share their item's span, so occurrences are counted per
    // span group: heads across the whole group, the (shared) body once.
    fn check_singleton_variables(&mut self) {
        let mut found: Vec<(Span, String)> = Vec::new();
        let mut i = 0;
        let clauses = &self.prog.clauses;
        while i < clauses.len() {
            let span = clauses[i].span;
            let mut j = i + 1;
            while j < clauses.len()
                && span.is_known()
                && clauses[j].span.line == span.line
                && clauses[j].span.column == span.column
            {
                j += 1;
            }
            let group = &clauses[i..j];
            let mut occurrences: Vec<&str> = Vec::new();
            for c in group {
                occurrences.extend(c.head.variables());
            }
            // All clauses in a span group clone the same source body.
            if let Some(first) = group.first() {
                for a in &first.body {
                    occurrences.extend(a.variables());
                }
            }
            // Counting and the `_`-prefix exemption live in the shared
            // kernel, keeping this in lockstep with Datalog's ML0006.
            for v in multilog_datalog::analyze::shared::singleton_variables(occurrences) {
                found.push((
                    span,
                    format!(
                        "variable `{v}` occurs only once in this item; prefix with `_` \
                         if intentional"
                    ),
                ));
            }
            i = j;
        }
        for (span, msg) in found {
            self.push("ML0112", "singleton-variable", Severity::Warning, span, msg);
        }
    }

    // ML0113 — a p-predicate used with two different arities.
    fn check_arity_mismatches(&mut self) {
        let mut arities: HashMap<Arc<str>, (usize, Span)> = HashMap::new();
        let mut found: Vec<(Span, String)> = Vec::new();
        let check = |pred: &Arc<str>,
                     arity: usize,
                     span: Span,
                     found: &mut Vec<(Span, String)>,
                     arities: &mut HashMap<Arc<str>, (usize, Span)>| {
            match arities.get(pred) {
                Some((prev, prev_span)) if *prev != arity => {
                    found.push((
                        span,
                        format!(
                            "predicate `{pred}` used with arity {arity} but first used \
                             with arity {prev} at {prev_span}"
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    arities.insert(pred.clone(), (arity, span));
                }
            }
        };
        for c in &self.prog.clauses {
            if let Head::P(p) = &c.head {
                check(&p.pred, p.args.len(), c.span, &mut found, &mut arities);
            }
            for a in &c.body {
                if let Atom::P(p) = a {
                    check(&p.pred, p.args.len(), c.span, &mut found, &mut arities);
                }
            }
        }
        let queries: Vec<(&Goal, Span)> = self.queries_with_spans().collect();
        for (q, span) in queries {
            for a in q {
                if let Atom::P(p) = a {
                    check(&p.pred, p.args.len(), span, &mut found, &mut arities);
                }
            }
        }
        for (span, msg) in found {
            self.push("ML0113", "arity-mismatch", Severity::Error, span, msg);
        }
    }

    // ML0114 — with a clearance `u` given, a body or query atom whose
    // ground level (or class) is not dominated by `u` can never be
    // visible to that user (Bell–LaPadula guards `l ⪯ u`, `c ⪯ u`).
    fn check_invisible_at_clearance(&mut self) {
        let (Some(lat), Some(u)) = (self.lattice.as_ref(), self.clearance) else {
            return;
        };
        let Some(ul) = lat.label(u) else {
            return; // undeclared clearance is ML0103's finding
        };
        let mut found: Vec<(Span, String)> = Vec::new();
        let check = |atoms: &[Atom], span: Span, found: &mut Vec<(Span, String)>| {
            for a in atoms {
                if let Atom::M(m) | Atom::B(m, _) = a {
                    for (t, what) in [(&m.level, "level"), (&m.class, "classification")] {
                        if let Term::Sym(s) = t {
                            if let Some(l) = lat.label(s) {
                                if !lat.leq(l, ul) {
                                    found.push((
                                        span,
                                        format!(
                                            "{what} `{s}` in `{a}` is not dominated by \
                                             clearance `{u}`: the atom is never visible \
                                             to this user"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        };
        for c in self.sigma.iter().chain(&self.pi) {
            check(&c.body, c.span, &mut found);
        }
        let queries: Vec<(&Goal, Span)> = self.queries_with_spans().collect();
        for (q, span) in queries {
            check(q, span, &mut found);
        }
        for (span, msg) in found {
            self.push(
                "ML0114",
                "invisible-at-clearance",
                Severity::Warning,
                span,
                msg,
            );
        }
    }

    // ML0008 — algorithm-operator and aggregation misuse, surfacing the
    // Datalog layer's lint of the same code at the MultiLog surface:
    // unknown `@algo(...)` operators, wrong call arity, and an aggregate
    // clause reading its own head predicate (the fold needs its input
    // complete before it runs — no stratification exists).
    fn check_algo_and_aggregates(&mut self) {
        let registry = multilog_datalog::algo::registry();
        let mut found: Vec<(&'static str, Span, String)> = Vec::new();
        for c in &self.prog.clauses {
            for a in &c.body {
                let Atom::P(p) = a else { continue };
                let Some(name) = p.pred.strip_prefix('@') else {
                    continue;
                };
                match registry.get(name) {
                    None => found.push((
                        "unknown-algo",
                        c.span,
                        format!(
                            "unknown algorithm operator `@{name}` (known: {})",
                            registry.names().join(", ")
                        ),
                    )),
                    // args = the input relation plus the output terms.
                    Some(op) if p.args.len() != op.arity() + 1 => found.push((
                        "algo-call-arity",
                        c.span,
                        format!(
                            "`@{name}(...)` called with {} argument terms, but the \
                             operator takes {}",
                            p.args.len().saturating_sub(1),
                            op.arity()
                        ),
                    )),
                    Some(_) => {}
                }
            }
            if c.agg.is_some() {
                if let Head::P(hp) = &c.head {
                    let recursive = c
                        .body
                        .iter()
                        .any(|a| matches!(a, Atom::P(p) if p.pred == hp.pred));
                    if recursive {
                        found.push((
                            "aggregation-through-recursion",
                            c.span,
                            format!(
                                "aggregate clause `{c}` reads its own head predicate \
                                 `{}` — aggregation through recursion is not stratifiable",
                                hp.pred
                            ),
                        ));
                    }
                }
            }
        }
        for (name, span, msg) in found {
            self.push("ML0008", name, Severity::Error, span, msg);
        }
    }
}

/// Build the security lattice from `[[Λ]]`, ignoring order edges over
/// undeclared levels (those are ML0103 findings). Returns `None` when the
/// level set is empty or the order is cyclic (ML0104 reports the cycle).
pub(crate) fn build_lattice(
    levels: &HashSet<String>,
    orders: &HashSet<(String, String)>,
) -> Option<SecurityLattice> {
    if levels.is_empty() {
        return None;
    }
    let mut b = LatticeBuilder::new();
    let mut sorted: Vec<&String> = levels.iter().collect();
    sorted.sort();
    for l in sorted {
        b.add_level(l.clone());
    }
    let mut sorted_orders: Vec<&(String, String)> = orders.iter().collect();
    sorted_orders.sort();
    for (lo, hi) in sorted_orders {
        if levels.contains(lo) && levels.contains(hi) {
            b.add_order(lo.clone(), hi.clone());
        }
    }
    b.build().ok()
}

/// Find a cycle in the order relation restricted to declared levels:
/// returns the node sequence of one cycle, or `None` if acyclic.
fn order_cycle(
    levels: &HashSet<String>,
    orders: &HashSet<(String, String)>,
) -> Option<Vec<String>> {
    let mut nodes: Vec<&String> = levels.iter().collect();
    nodes.sort();
    let index: HashMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut edges: Vec<&(String, String)> = orders.iter().collect();
    edges.sort();
    for (lo, hi) in edges {
        if let (Some(&a), Some(&b)) = (index.get(lo.as_str()), index.get(hi.as_str())) {
            if a == b {
                return Some(vec![lo.clone()]);
            }
            adj[a].push(b);
        }
    }
    // Iterative DFS with colouring; on a back edge, walk the explicit
    // stack to recover the cycle path.
    let mut colour = vec![0u8; nodes.len()]; // 0 white, 1 grey, 2 black
    for start in 0..nodes.len() {
        if colour[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = 1;
        while let Some(&mut (n, ref mut next)) = stack.last_mut() {
            if *next < adj[n].len() {
                let m = adj[n][*next];
                *next += 1;
                match colour[m] {
                    0 => {
                        colour[m] = 1;
                        stack.push((m, 0));
                    }
                    1 => {
                        // Back edge n -> m: the cycle is the stack suffix
                        // starting at m.
                        let pos = stack
                            .iter()
                            .position(|&(x, _)| x == m)
                            .unwrap_or(stack.len() - 1);
                        return Some(
                            stack[pos..]
                                .iter()
                                .map(|&(x, _)| nodes[x].clone())
                                .collect(),
                        );
                    }
                    _ => {}
                }
            } else {
                colour[n] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        let report = lint_source(src).expect("parse");
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let report = lint_source(
            "level(u). level(s). order(u, s).\n\
             s[p(k : a -u-> v)].\n\
             q(X) <- s[p(k : a -u-> X)].\n\
             <- q(X).",
        )
        .unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn undeclared_label_has_span() {
        let report = lint_source("level(u).\nu[p(k : a -s-> v)].").unwrap();
        let d = &report.diagnostics[0];
        assert_eq!(d.code, "ML0103");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.line, 2);
        assert_eq!(d.span.column, 1);
    }

    #[test]
    fn lattice_cycle_reports_witness() {
        let report =
            lint_source("level(u). level(s). order(u, s). order(s, u). u[p(k : a -u-> v)].")
                .unwrap();
        let cyc: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "ML0104")
            .collect();
        assert_eq!(cyc.len(), 1);
        assert!(cyc[0].message.contains("s -> u") || cyc[0].message.contains("u -> s"));
    }

    #[test]
    fn json_escapes_and_renders() {
        let report = lint_source("level(u).\nu[p(k : a -s-> v)].").unwrap();
        let json = report.render_json();
        assert!(json.starts_with("{\"diagnostics\":["));
        assert!(json.contains("\"code\":\"ML0103\""));
        assert!(json.contains("\"errors\":"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn human_rendering_echoes_source() {
        let report = lint_source("level(u).\nu[p(k : a -s-> v)].").unwrap();
        let text = report.render_human("db.mlog");
        assert!(text.contains("error[ML0103]"));
        assert!(text.contains("--> db.mlog:2:1"));
        assert!(text.contains(" 2 | u[p(k : a -s-> v)]."));
    }

    #[test]
    fn statically_empty_warns_on_incomparable_labels() {
        // a and b are incomparable maximal levels: no common dominator.
        let report = lint_source(
            "level(u). level(a). level(b). order(u, a). order(u, b).\n\
             a[p(k : x -b-> v)].",
        )
        .unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "ML0107"));
    }

    #[test]
    fn cover_story_conflict_detected_and_poly_key_skipped() {
        // Same (level, pred, key, attr, class), different values.
        let conflict = codes(
            "level(u). level(s). order(u, s).\n\
             s[p(k : a -u-> v1)].\n\
             s[p(k : a -u-> v2)].",
        );
        assert!(conflict.contains(&"ML0110"));
        // Polyinstantiated key attribute -> ambiguous grouping, skipped
        // (mirrors the runtime consistency check on the mission example).
        let skipped = codes(
            "level(u). level(s). order(u, s).\n\
             s[p(k : id -u-> k)].\n\
             s[p(k : id -s-> k)].\n\
             s[p(k : a -u-> v1)].\n\
             s[p(k : a -u-> v2)].",
        );
        assert!(!skipped.contains(&"ML0110"));
    }

    #[test]
    fn singleton_variable_counts_molecules_once() {
        // Molecular head: K occurs in every desugared head, X in one; the
        // source counts are K=3 (head twice? no — key once, body once) …
        // what matters: no false positive for the key variable.
        let clean = codes(
            "level(u). level(s). order(u, s).\n\
             s[q(k : a -u-> v; b -u-> w)].\n\
             s[p(K : a -u-> X; b -u-> X)] <- s[q(K : a -u-> X)].",
        );
        assert!(!clean.contains(&"ML0112"), "{clean:?}");
        let firing = codes(
            "level(u). level(s). order(u, s).\n\
             s[p(k : a -u-> v)].\n\
             q(X) <- s[p(k : a -u-> X)], level(Lonely).",
        );
        assert!(firing.contains(&"ML0112"));
    }

    fn names(src: &str) -> Vec<&'static str> {
        let report = lint_source(src).expect("parse");
        report.diagnostics.iter().map(|d| d.name).collect()
    }

    #[test]
    fn ml0008_unknown_algo_and_call_arity() {
        let unknown = names("edge(a, b). r(X, Y) <- @nope(edge, X, Y). <- r(X, Y).");
        assert!(unknown.contains(&"unknown-algo"), "{unknown:?}");

        let arity = names("edge(a, b). r(X) <- @bfs(edge, X). <- r(X).");
        assert!(arity.contains(&"algo-call-arity"), "{arity:?}");

        let clean = names("edge(a, b). r(X, Y) <- @bfs(edge, X, Y). <- r(X, Y).");
        assert!(!clean.contains(&"unknown-algo"), "{clean:?}");
        assert!(!clean.contains(&"algo-call-arity"), "{clean:?}");
    }

    #[test]
    fn ml0008_aggregation_through_recursion() {
        let firing = names(
            "part(a, b).\n\
             total(P, count(S)) <- total(P, S), part(P, S).\n\
             <- total(P, S).",
        );
        assert!(
            firing.contains(&"aggregation-through-recursion"),
            "{firing:?}"
        );

        let clean = names(
            "part(a, b).\n\
             total(P, count(S)) <- part(P, S).\n\
             <- total(P, S).",
        );
        assert!(
            !clean.contains(&"aggregation-through-recursion"),
            "{clean:?}"
        );
    }

    #[test]
    fn algo_input_predicate_is_not_unused() {
        // `edge` is referenced only as the input relation of `@bfs`; the
        // liveness pass must treat the call as a read so ML0111 stays
        // quiet (mirrors the Datalog layer's ML0004 behaviour).
        let report = lint_source("edge(a, b). r(X, Y) <- @bfs(edge, X, Y). <- r(a, Y).").unwrap();
        let unused: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "ML0111")
            .collect();
        assert!(unused.is_empty(), "{unused:?}");
    }
}
