//! MultiLog databases `Δ = ⟨Λ, Σ, Π, Q⟩` (Definition 5.1), admissibility
//! (Definition 5.3), and consistency (Definition 5.4).

use std::collections::HashSet;
use std::sync::Arc;

use multilog_lattice::{LatticeBuilder, SecurityLattice};

use crate::ast::{Atom, Clause, Goal, Head, Term};
use crate::{MultiLogError, Result};

/// A validated MultiLog database: the clauses partitioned into the
/// lattice component Λ (l- and h-clauses), the secured data component Σ
/// (m-clauses), the plain component Π (p-clauses), and the queries Q.
#[derive(Clone, Debug)]
pub struct MultiLogDb {
    lambda: Vec<Clause>,
    sigma: Vec<Clause>,
    pi: Vec<Clause>,
    queries: Vec<Goal>,
}

impl MultiLogDb {
    /// Partition clauses by head kind and run the syntactic checks
    /// (range restriction; Λ purity per Def 5.3 condition 1).
    pub fn new(clauses: Vec<Clause>, queries: Vec<Goal>) -> Result<Self> {
        let mut db = MultiLogDb {
            lambda: Vec::new(),
            sigma: Vec::new(),
            pi: Vec::new(),
            queries,
        };
        for c in clauses {
            check_range_restricted(&c)?;
            match &c.head {
                Head::L(_) | Head::H(_, _) => {
                    // Def 5.3(1): the dependency graph of a Λ clause may
                    // contain only l- and h-atoms.
                    for a in &c.body {
                        if !matches!(a, Atom::L(_) | Atom::H(_, _) | Atom::Leq(_, _)) {
                            return Err(MultiLogError::NotAdmissible {
                                detail: format!(
                                    "Λ clause `{c}` depends on a non-lattice atom `{a}`"
                                ),
                            });
                        }
                    }
                    db.lambda.push(c);
                }
                Head::M(_) => db.sigma.push(c),
                Head::P(_) => db.pi.push(c),
            }
        }
        Ok(db)
    }

    /// The Λ component.
    pub fn lambda(&self) -> &[Clause] {
        &self.lambda
    }

    /// The Σ component.
    pub fn sigma(&self) -> &[Clause] {
        &self.sigma
    }

    /// The Π component.
    pub fn pi(&self) -> &[Clause] {
        &self.pi
    }

    /// The queries Q.
    pub fn queries(&self) -> &[Goal] {
        &self.queries
    }

    /// All clauses (Λ ∪ Σ ∪ Π), Λ first.
    pub fn clauses(&self) -> impl Iterator<Item = &Clause> {
        self.lambda.iter().chain(&self.sigma).chain(&self.pi)
    }

    /// Evaluate `[[Λ]]` and build the security lattice, enforcing the
    /// remaining admissibility conditions of Definition 5.3:
    ///
    /// 2. every ground security label used in Σ is asserted by `[[Λ]]`;
    /// 3. `[[Λ]]` induces a partial order (no cycles).
    pub fn lattice(&self) -> Result<Arc<SecurityLattice>> {
        let (levels, orders) = eval_lambda(&self.lambda);
        let mut b = LatticeBuilder::new();
        let mut sorted: Vec<&String> = levels.iter().collect();
        sorted.sort();
        for l in sorted {
            b.add_level(l.clone());
        }
        let mut sorted_orders: Vec<&(String, String)> = orders.iter().collect();
        sorted_orders.sort();
        for (lo, hi) in sorted_orders {
            if !levels.contains(lo) || !levels.contains(hi) {
                return Err(MultiLogError::NotAdmissible {
                    detail: format!("order({lo}, {hi}) uses an undeclared level"),
                });
            }
            b.add_order(lo.clone(), hi.clone());
        }
        let lattice = b.build().map_err(|e| match e {
            multilog_lattice::LatticeError::CycleDetected(l) => MultiLogError::NotAdmissible {
                detail: format!("[[Λ]] is not a partial order: cycle through `{l}`"),
            },
            other => MultiLogError::Lattice(other),
        })?;

        // Def 5.3(2): labels used in Σ must be asserted by [[Λ]].
        for c in &self.sigma {
            for label in clause_labels(c) {
                if lattice.label(&label).is_none() {
                    return Err(MultiLogError::NotAdmissible {
                        detail: format!("security label `{label}` in `{c}` is not asserted by Λ"),
                    });
                }
            }
        }
        Ok(Arc::new(lattice))
    }
}

/// Evaluate `[[Λ]]` to fixpoint: the asserted level names and order
/// edges. Λ may contain rules, but only over level/order atoms; a simple
/// naive fixpoint suffices at lattice scale. Clauses whose bodies contain
/// non-lattice atoms are skipped (the lint pass reports them; validated
/// databases never contain them).
pub(crate) fn eval_lambda(lambda: &[Clause]) -> (HashSet<String>, HashSet<(String, String)>) {
    let mut levels: HashSet<String> = HashSet::new();
    let mut orders: HashSet<(String, String)> = HashSet::new();
    let pure: Vec<&Clause> = lambda
        .iter()
        .filter(|c| {
            matches!(c.head, Head::L(_) | Head::H(_, _))
                && c.body
                    .iter()
                    .all(|a| matches!(a, Atom::L(_) | Atom::H(_, _) | Atom::Leq(_, _)))
        })
        .collect();
    // Seed with facts, then iterate rules.
    loop {
        let mut changed = false;
        for c in &pure {
            for (lv, od) in derive_lambda(c, &levels, &orders) {
                match (lv, od) {
                    (Some(l), None) => changed |= levels.insert(l),
                    (None, Some(o)) => changed |= orders.insert(o),
                    _ => {}
                }
            }
        }
        if !changed {
            break;
        }
    }
    (levels, orders)
}

/// A derivable Λ fact: `(Some(level), None)` or `(None, Some(order pair))`.
type LambdaFact = (Option<String>, Option<(String, String)>);

/// One naive-fixpoint step for a Λ clause: returns newly derivable
/// level/order facts.
fn derive_lambda(
    c: &Clause,
    levels: &HashSet<String>,
    orders: &HashSet<(String, String)>,
) -> Vec<LambdaFact> {
    use std::collections::HashMap;
    // Enumerate substitutions satisfying the body over current facts.
    let mut subs: Vec<HashMap<&str, String>> = vec![HashMap::new()];
    for atom in &c.body {
        let mut next = Vec::new();
        for sub in &subs {
            match atom {
                Atom::L(t) => {
                    for l in levels {
                        if let Some(s) = extend(sub, &[(t, l)]) {
                            next.push(s);
                        }
                    }
                }
                Atom::H(lo, hi) => {
                    for (a, b) in orders {
                        if let Some(s) = extend(sub, &[(lo, a), (hi, b)]) {
                            next.push(s);
                        }
                    }
                }
                Atom::Leq(lo, hi) => {
                    // ⪯ over the *current* order edges: reflexive-transitive
                    // closure computed on the fly.
                    for a in levels {
                        for b in levels {
                            if leq_in(orders, a, b) {
                                if let Some(s) = extend(sub, &[(lo, a), (hi, b)]) {
                                    next.push(s);
                                }
                            }
                        }
                    }
                }
                _ => unreachable!("Λ purity checked at construction"),
            }
        }
        subs = next;
    }
    let resolve = |t: &Term, sub: &HashMap<&str, String>| -> Option<String> {
        match t {
            Term::Sym(s) => Some(s.to_string()),
            Term::Var(v) => sub.get(v.as_ref()).cloned(),
            _ => None,
        }
    };
    let mut out = Vec::new();
    for sub in &subs {
        match &c.head {
            Head::L(t) => {
                if let Some(l) = resolve(t, sub) {
                    out.push((Some(l), None));
                }
            }
            Head::H(lo, hi) => {
                if let (Some(a), Some(b)) = (resolve(lo, sub), resolve(hi, sub)) {
                    out.push((None, Some((a, b))));
                }
            }
            _ => unreachable!("Λ heads are l- or h-atoms"),
        }
    }
    out
}

fn extend<'a>(
    sub: &std::collections::HashMap<&'a str, String>,
    pairs: &[(&'a Term, &str)],
) -> Option<std::collections::HashMap<&'a str, String>> {
    let mut out = sub.clone();
    for (t, val) in pairs {
        match t {
            Term::Sym(s) => {
                if s.as_ref() != *val {
                    return None;
                }
            }
            Term::Var(v) => match out.get(v.as_ref()) {
                Some(existing) if existing != val => return None,
                Some(_) => {}
                None => {
                    out.insert(v.as_ref(), (*val).to_string());
                }
            },
            _ => return None,
        }
    }
    Some(out)
}

fn leq_in(orders: &HashSet<(String, String)>, a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    // BFS over order edges.
    let mut stack = vec![a.to_owned()];
    let mut seen = HashSet::new();
    while let Some(cur) = stack.pop() {
        for (lo, hi) in orders {
            if lo == &cur && seen.insert(hi.clone()) {
                if hi == b {
                    return true;
                }
                stack.push(hi.clone());
            }
        }
    }
    false
}

/// Ground security labels mentioned by an m-clause (head and body levels
/// and classes).
fn clause_labels(c: &Clause) -> Vec<String> {
    let mut out = Vec::new();
    let mut push = |t: &Term| {
        if let Term::Sym(s) = t {
            out.push(s.to_string());
        }
    };
    if let Head::M(m) = &c.head {
        push(&m.level);
        push(&m.class);
    }
    for a in &c.body {
        match a {
            Atom::M(m) | Atom::B(m, _) => {
                push(&m.level);
                push(&m.class);
            }
            _ => {}
        }
    }
    out
}

/// Range restriction: every head variable must occur in the body (facts
/// must be ground). All MultiLog body atoms are positive and enumerable,
/// so occurrence anywhere in the body grounds a variable.
fn check_range_restricted(c: &Clause) -> Result<()> {
    let body_vars: HashSet<&str> = c.body.iter().flat_map(Atom::variables).collect();
    for v in c.head.variables() {
        if !body_vars.contains(v) {
            return Err(MultiLogError::UnsafeVariable {
                variable: v.to_owned(),
                clause: c.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;

    #[test]
    fn partitions_by_head_kind() {
        let db = parse_database(
            "level(u). level(s). order(u, s).\
             u[p(k : a -u-> v)].\
             q(a). r(X) <- q(X).",
        )
        .unwrap();
        assert_eq!(db.lambda().len(), 3);
        assert_eq!(db.sigma().len(), 1);
        assert_eq!(db.pi().len(), 2);
    }

    #[test]
    fn lattice_from_facts() {
        let db = parse_database("level(u). level(c). level(s). order(u, c). order(c, s).").unwrap();
        let lat = db.lattice().unwrap();
        assert_eq!(lat.len(), 3);
        assert!(lat.dominates_by_name("s", "u").unwrap());
    }

    #[test]
    fn lattice_from_rules() {
        // Λ may contain rules over l-/h-atoms.
        let db = parse_database(
            "level(u). level(c). level(s).\
             order(u, c).\
             order(c, s) <- level(c), level(s).",
        )
        .unwrap();
        let lat = db.lattice().unwrap();
        assert!(lat.dominates_by_name("s", "u").unwrap());
    }

    #[test]
    fn lambda_purity_enforced() {
        let err = parse_database("level(u) <- q(a). q(a).");
        assert!(matches!(err, Err(MultiLogError::NotAdmissible { .. })));
    }

    #[test]
    fn undeclared_label_in_sigma_rejected() {
        let db = parse_database("level(u). u[p(k : a -s-> v)].").unwrap();
        assert!(matches!(
            db.lattice(),
            Err(MultiLogError::NotAdmissible { .. })
        ));
    }

    #[test]
    fn cyclic_order_rejected() {
        let db =
            parse_database("level(u). level(c). order(u, c). order(c, u). u[p(k : a -u-> v)].")
                .unwrap();
        assert!(matches!(
            db.lattice(),
            Err(MultiLogError::NotAdmissible { .. })
        ));
    }

    #[test]
    fn order_over_undeclared_level_rejected() {
        let db = parse_database("level(u). order(u, s).").unwrap();
        assert!(matches!(
            db.lattice(),
            Err(MultiLogError::NotAdmissible { .. })
        ));
    }

    #[test]
    fn unsafe_head_variable_rejected() {
        let err = parse_database("q(X).");
        assert!(matches!(err, Err(MultiLogError::UnsafeVariable { .. })));
    }

    #[test]
    fn variable_level_head_allowed_when_bound() {
        let db = parse_database(
            "level(u). level(s). order(u, s).\
             L[p(k : a -L-> v)] <- level(L).",
        )
        .unwrap();
        assert_eq!(db.sigma().len(), 1);
        db.lattice().unwrap();
    }

    #[test]
    fn datalog_degeneration_partition() {
        // Prop 6.1: with Λ and Σ empty, Δ is a Datalog program.
        let db = parse_database("q(a). p(X) <- q(X). <- p(X).").unwrap();
        assert!(db.lambda().is_empty());
        assert!(db.sigma().is_empty());
        assert_eq!(db.pi().len(), 2);
        assert_eq!(db.queries().len(), 1);
        // Empty Λ yields an empty label set; lattice construction reports
        // the empty lattice.
        assert!(db.lattice().is_err());
    }
}
