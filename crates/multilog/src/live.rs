//! A *live* MLS database: Jajodia–Sandhu update operations applied to a
//! relational instance, with the MultiLog belief semantics maintained
//! incrementally instead of re-encoded and re-evaluated per update.
//!
//! [`LiveDatabase`] pairs an [`MlsRelation`] with an incremental
//! [`ReducedEngine`]. Each [`Op`] (§2's insert/assert/update/delete under
//! required polyinstantiation) is applied to the relation, the tuple-level
//! diff is translated to m-atom assertions and retractions, and one
//! transaction commits them against the materialized fixpoint — so belief
//! queries (`<< fir` / `<< opt` / `<< cau`) stay warm across the whole
//! update history.
//!
//! Two distinct tuples can contribute the *same* m-atom (polyinstantiated
//! variants sharing an attribute cell), so the bridge reference-counts
//! each contributed fact and only asserts on the 0→1 transition and
//! retracts on the 1→0 transition.

// Update-path no-panic policy, as in `multilog_datalog::incremental`:
// invariant breaks surface as `MultiLogError::Internal`, never aborts.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;

use multilog_datalog as dl;
use multilog_mlsrel::ops::{self, Op};
use multilog_mlsrel::{MlsRelation, MlsTuple, Value};

use crate::ast::{MAtom, Term};
use crate::engine::{Answer, EngineOptions};
use crate::examples::{encode_relation, sym};
use crate::reduce::{EdbUpdate, ReducedEngine};
use crate::Result;

/// An MLS relational instance whose MultiLog belief semantics is
/// maintained incrementally across update operations.
///
/// ```
/// use multilog_core::live::LiveDatabase;
/// use multilog_mlsrel::ops::Op;
/// use multilog_mlsrel::{mission, MlsRelation, Value};
///
/// let (_, scheme) = mission::mission_scheme();
/// let mut live = LiveDatabase::new(MlsRelation::new(scheme), "s").unwrap();
/// live.apply(&Op::Insert {
///     level: "S".into(),
///     values: vec![
///         Value::str("Voyager"),
///         Value::str("Spying"),
///         Value::str("Mars"),
///     ],
/// })
/// .unwrap();
/// let ans = live
///     .solve_text("s[mission(voyager : objective -C-> V)] << cau")
///     .unwrap();
/// assert_eq!(ans.len(), 1);
/// ```
pub struct LiveDatabase {
    relation: MlsRelation,
    engine: ReducedEngine,
    /// Encoded predicate name (the relation's, sanitized).
    pred: std::sync::Arc<str>,
    /// Encoded attribute names, in scheme order.
    attrs: Vec<std::sync::Arc<str>>,
    /// How many live tuples contribute each encoded m-atom (keyed by its
    /// rendering, which is injective on ground atoms).
    refcounts: BTreeMap<String, usize>,
}

impl std::fmt::Debug for LiveDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveDatabase")
            .field("tuples", &self.relation.len())
            .field("facts", &self.refcounts.len())
            .finish_non_exhaustive()
    }
}

impl LiveDatabase {
    /// Encode `relation` (Example 5.1's per-tuple molecules plus the
    /// lattice) and materialize its belief fixpoint for the subject level
    /// `user`. The user level is sanitized like every other symbol, so
    /// `"S"` names the same level as `"s"`.
    ///
    /// # Errors
    ///
    /// [`crate::MultiLogError::NotAdmissible`] if `user` is not a level
    /// of the relation's lattice; any reduction or evaluation error.
    pub fn new(relation: MlsRelation, user: &str) -> Result<Self> {
        Self::with_options(relation, user, EngineOptions::default())
    }

    /// Like [`LiveDatabase::new`], with evaluation guards: the fact
    /// budget, deadline, and cancellation token of `options` cover both
    /// the initial materialization and every later update commit.
    pub fn with_options(relation: MlsRelation, user: &str, options: EngineOptions) -> Result<Self> {
        let db = crate::parser::parse_database(&encode_relation(&relation))?;
        let engine = ReducedEngine::with_options(&db, &sym(user), options)?;
        let pred: std::sync::Arc<str> = sym(relation.scheme().name()).into();
        let attrs: Vec<std::sync::Arc<str>> = relation
            .scheme()
            .attr_names()
            .map(|a| std::sync::Arc::from(sym(a)))
            .collect();
        let mut live = LiveDatabase {
            relation,
            engine,
            pred,
            attrs,
            refcounts: BTreeMap::new(),
        };
        for t in live.relation.tuples() {
            for m in tuple_atoms(&live.pred, &live.attrs, &live.relation, t) {
                *live.refcounts.entry(m.to_string()).or_insert(0) += 1;
            }
        }
        Ok(live)
    }

    /// The current relational instance.
    pub fn relation(&self) -> &MlsRelation {
        &self.relation
    }

    /// The incremental belief engine (for queries and statistics).
    pub fn engine(&self) -> &ReducedEngine {
        &self.engine
    }

    /// Apply one update operation and incrementally maintain the belief
    /// fixpoint. The operation either fully applies — relation mutated,
    /// m-atom diff committed — or nothing changes.
    ///
    /// # Errors
    ///
    /// [`crate::MultiLogError::Relational`] if the operation is invalid
    /// (not visible, duplicate key, bad level). A guard trip mid-commit
    /// poisons the incremental engine; `apply` then rebuilds the
    /// fixpoint from the (unchanged) pre-operation state before
    /// returning the trip error, so the session stays usable — the
    /// relation, refcounts, and belief fixpoint all reflect the state
    /// before the failed operation. Only if that recovery itself fails
    /// does the database stay poisoned (check
    /// [`engine().is_poisoned()`](ReducedEngine::is_poisoned);
    /// [`LiveDatabase::rematerialize`] retries the rebuild).
    pub fn apply(&mut self, op: &Op) -> Result<dl::CommitStats> {
        // Lazy recovery: if an earlier failure left the engine poisoned
        // (e.g. its recovery was itself cancelled), rebuild before
        // attempting this operation rather than rejecting it outright.
        if self.engine.is_poisoned() {
            self.engine.rematerialize()?;
        }
        // Apply to a scratch copy: `ops::apply` can leave a relation
        // partially mutated when it errors mid-way.
        let mut next = self.relation.clone();
        ops::apply(&mut next, op)?;
        let removed = self
            .relation
            .tuples()
            .iter()
            .filter(|t| !next.tuples().contains(t));
        let added = next
            .tuples()
            .iter()
            .filter(|t| !self.relation.tuples().contains(t));
        let mut counts = self.refcounts.clone();
        let mut batch: Vec<EdbUpdate> = Vec::new();
        for t in removed {
            for m in tuple_atoms(&self.pred, &self.attrs, &self.relation, t) {
                let key = m.to_string();
                let slot = counts
                    .get_mut(&key)
                    .ok_or_else(|| crate::MultiLogError::Internal {
                        detail: format!("live tuple's m-atom `{m}` is not refcounted"),
                    })?;
                *slot -= 1;
                if *slot == 0 {
                    counts.remove(&key);
                    batch.push(EdbUpdate::Retract(m));
                }
            }
        }
        for t in added {
            for m in tuple_atoms(&self.pred, &self.attrs, &next, t) {
                let slot = counts.entry(m.to_string()).or_insert(0);
                *slot += 1;
                if *slot == 1 {
                    batch.push(EdbUpdate::Assert(m));
                }
            }
        }
        match self.engine.apply_updates(&batch) {
            Ok(stats) => {
                // All-or-nothing: only a successful commit publishes the
                // new relation and refcounts, so failures leak neither.
                self.relation = next;
                self.refcounts = counts;
                Ok(stats)
            }
            Err(err) => {
                // A commit abort poisons the engine with its base
                // restored to the pre-commit state; rebuilding here
                // hands the caller a live session again. A failed
                // rebuild keeps the poison, and the original error
                // still describes what went wrong first.
                if self.engine.is_poisoned() {
                    let _ = self.engine.rematerialize();
                }
                Err(err)
            }
        }
    }

    /// Apply a whole history of operations in order.
    ///
    /// # Errors
    ///
    /// As for [`LiveDatabase::apply`]; the history stops at the first
    /// failing operation.
    pub fn replay(&mut self, history: &[Op]) -> Result<()> {
        for op in history {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Parse and solve a textual MultiLog goal against the maintained
    /// fixpoint.
    ///
    /// # Errors
    ///
    /// Parse errors; any query evaluation error.
    pub fn solve_text(&self, goal: &str) -> Result<Vec<Answer>> {
        self.engine.solve_text(goal)
    }

    /// Parse and solve a textual MultiLog goal demand-driven: the
    /// magic-sets rewrite evaluates only the sub-fixpoint the goal's
    /// constants demand, instead of reading the maintained
    /// materialization. Answers equal [`LiveDatabase::solve_text`]; the
    /// current transactional base is what the rewrite runs against, so
    /// applied updates are visible here too.
    ///
    /// # Errors
    ///
    /// Parse errors; any query evaluation error.
    pub fn solve_text_demand(&self, goal: &str) -> Result<Vec<Answer>> {
        self.engine.solve_text_demand(goal)
    }

    /// Rebuild the belief fixpoint from scratch after a poisoning abort.
    ///
    /// # Errors
    ///
    /// Any evaluation error from the full materialization.
    pub fn rematerialize(&mut self) -> Result<()> {
        self.engine.rematerialize()
    }
}

/// The m-atoms a tuple contributes under the Example 5.1 encoding: one
/// per attribute (key attribute included), at the tuple's `TC` level.
fn tuple_atoms(
    pred: &std::sync::Arc<str>,
    attrs: &[std::sync::Arc<str>],
    rel: &MlsRelation,
    t: &MlsTuple,
) -> Vec<MAtom> {
    let lat = rel.lattice();
    let level = Term::sym(sym(lat.name(t.tc)));
    let key = value_term(t.key());
    attrs
        .iter()
        .zip(t.values.iter().zip(&t.classes))
        .map(|(attr, (v, &c))| MAtom {
            level: level.clone(),
            pred: pred.clone(),
            key: key.clone(),
            attr: attr.clone(),
            class: Term::sym(sym(lat.name(c))),
            value: value_term(v),
        })
        .collect()
}

/// A relational value as a MultiLog term, matching
/// [`encode_relation`]'s textual conversion exactly.
fn value_term(v: &Value) -> Term {
    match v {
        Value::Null => Term::Null,
        Value::Str(s) => Term::sym(sym(s)),
        Value::Int(i) => Term::Int(*i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multilog_mlsrel::mission;

    /// A freshly re-encoded, from-scratch engine over the same relation —
    /// what the live engine must always agree with.
    fn rebuilt(rel: &MlsRelation, user: &str) -> ReducedEngine {
        let db = crate::parser::parse_database(&encode_relation(rel)).unwrap();
        ReducedEngine::new(&db, &sym(user)).unwrap()
    }

    fn assert_agrees(live: &LiveDatabase, user: &str) {
        let fresh = rebuilt(live.relation(), user);
        for attr in ["starship", "objective", "destination"] {
            for mode in ["", " << fir", " << opt", " << cau"] {
                let goal = format!("L[mission(K : {attr} -C-> V)]{mode}");
                assert_eq!(
                    live.solve_text(&goal).unwrap(),
                    fresh.solve_text(&goal).unwrap(),
                    "goal `{goal}` diverged from a full rebuild"
                );
            }
        }
    }

    #[test]
    fn mission_history_stays_consistent_with_rebuild() {
        let (_, scheme) = mission::mission_scheme();
        let mut live = LiveDatabase::new(MlsRelation::new(scheme), "s").unwrap();
        for op in mission::mission_history() {
            live.apply(&op).unwrap();
            assert_agrees(&live, "s");
        }
        // The replayed history reproduces Figure 1.
        let (_, fig1) = mission::mission_relation();
        assert!(live.relation().same_tuples(&fig1));
    }

    #[test]
    fn invalid_op_changes_nothing() {
        let (_, scheme) = mission::mission_scheme();
        let mut live = LiveDatabase::new(MlsRelation::new(scheme), "s").unwrap();
        let before = live.relation().len();
        let err = live.apply(&Op::Delete {
            level: "U".into(),
            key: Value::str("Ghost"),
            key_class: "U".into(),
        });
        assert!(matches!(err, Err(crate::MultiLogError::Relational(_))));
        assert_eq!(live.relation().len(), before);
        assert_agrees(&live, "s");
    }

    #[test]
    fn polyinstantiated_update_keeps_cover_story_beliefs() {
        let (_, scheme) = mission::mission_scheme();
        let mut live = LiveDatabase::new(MlsRelation::new(scheme), "s").unwrap();
        live.apply(&Op::Insert {
            level: "U".into(),
            values: vec![
                Value::str("Falcon"),
                Value::str("Exploration"),
                Value::str("Venus"),
            ],
        })
        .unwrap();
        // An s-subject update polyinstantiates; the u original survives.
        live.apply(&Op::Update {
            level: "S".into(),
            key: Value::str("Falcon"),
            key_class: "U".into(),
            assignments: vec![("Objective".into(), Some(Value::str("Spying")), "S".into())],
        })
        .unwrap();
        assert_eq!(live.relation().len(), 2);
        assert_agrees(&live, "s");
        // Cautiously, s believes the s-classified objective, not the
        // beaten u cover story.
        let cau = live
            .solve_text("s[mission(falcon : objective -C-> V)] << cau")
            .unwrap();
        assert_eq!(cau.len(), 1);
        assert_eq!(cau[0]["V"], Term::sym("spying"));
    }

    #[test]
    fn replay_matches_per_op_application() {
        let (_, scheme) = mission::mission_scheme();
        let mut live = LiveDatabase::new(MlsRelation::new(scheme), "c").unwrap();
        live.replay(&mission::mission_history()).unwrap();
        assert_agrees(&live, "c");
    }

    fn mission_insert(ship: &str, dest: &str) -> Op {
        Op::Insert {
            level: "S".into(),
            values: vec![Value::str(ship), Value::str("Spying"), Value::str(dest)],
        }
    }

    #[test]
    fn session_recovers_after_budget_tripped_commit() {
        // Probe run: measure the fixpoint size after each op, so the
        // real run can set a budget that admits op 1 (and recovery of
        // its state) but trips mid-commit of op 2.
        let (_, scheme) = mission::mission_scheme();
        let mut probe = LiveDatabase::new(MlsRelation::new(scheme.clone()), "s").unwrap();
        probe.apply(&mission_insert("Voyager", "Mars")).unwrap();
        let after_first = probe.engine().database().fact_count();
        probe.apply(&mission_insert("Falcon", "Venus")).unwrap();
        let after_second = probe.engine().database().fact_count();
        assert!(after_second > after_first + 1, "need budget headroom");

        let options = EngineOptions {
            fact_limit: after_second - 1,
            ..EngineOptions::default()
        };
        let mut live = LiveDatabase::with_options(MlsRelation::new(scheme), "s", options).unwrap();
        live.apply(&mission_insert("Voyager", "Mars")).unwrap();

        // The second insert blows the budget mid-commit; `apply` must
        // rebuild the pre-op fixpoint (which fits the budget) before
        // returning, leaving the session immediately usable.
        let err = live.apply(&mission_insert("Falcon", "Venus")).unwrap_err();
        assert!(matches!(err, crate::MultiLogError::BudgetExceeded { .. }));
        assert!(!live.engine().is_poisoned(), "apply must auto-recover");
        assert_eq!(live.relation().len(), 1, "failed op must not apply");
        assert_agrees(&live, "s");

        // The refcount bridge was not corrupted by the failed attempt:
        // a small in-budget op still nets out exactly.
        live.apply(&Op::Delete {
            level: "S".into(),
            key: Value::str("Voyager"),
            key_class: "S".into(),
        })
        .unwrap();
        assert_eq!(live.relation().len(), 0);
        assert_agrees(&live, "s");
    }

    #[test]
    fn session_recovers_lazily_after_cancelled_recovery() {
        // A cancelled commit leaves the engine poisoned AND defeats the
        // in-`apply` rebuild (the sticky token cancels that too). Once
        // the token resets, the next `apply` recovers at entry and the
        // session heals without manual `rematerialize` calls.
        let (_, scheme) = mission::mission_scheme();
        let cancel = multilog_datalog::CancelToken::new();
        let options = EngineOptions {
            cancel: Some(cancel.clone()),
            ..EngineOptions::default()
        };
        let mut live = LiveDatabase::with_options(MlsRelation::new(scheme), "s", options).unwrap();
        live.apply(&mission_insert("Voyager", "Mars")).unwrap();

        cancel.cancel();
        let err = live.apply(&mission_insert("Falcon", "Venus")).unwrap_err();
        assert!(matches!(err, crate::MultiLogError::Cancelled));
        assert_eq!(live.relation().len(), 1, "failed op must not apply");

        cancel.reset();
        live.apply(&mission_insert("Falcon", "Venus")).unwrap();
        assert!(!live.engine().is_poisoned());
        assert_eq!(live.relation().len(), 2);
        assert_agrees(&live, "s");
    }
}
