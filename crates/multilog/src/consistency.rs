//! Consistency checking (Definition 5.4) over the meaning of the Σ
//! component — entity integrity, null integrity (with subsumption-
//! freedom), and polyinstantiation integrity, applied to the m-facts
//! derived by an evaluated engine.
//!
//! The apparent key of a predicate is detected structurally: an attribute
//! is the key attribute `AK` iff its value equals the molecule key in
//! every fact of the predicate that carries it (Def 5.2's requirement:
//! for every m-atom `s[p(k : b -d-> v)]` there is also `s[p(k : a -c-> k)]`).
//! Toy databases like D₁ omit the key atom; for those predicates the
//! AK-dependent checks are skipped and polyinstantiation integrity falls
//! back to the FD `(pred, key, level, attr, class) → value`.
//!
//! Two deliberate deviations from a literal reading of Def 5.4, both
//! forced by the paper's own examples:
//!
//! * **Subsumption-freedom** — read literally, Def 5.4 outlaws Figure 1's
//!   own encoding (t2/t6/t7 are distinct molecules with identical data
//!   that mutually subsume). We flag only *strict* subsumption.
//! * **Molecule reconstruction** — desugaring molecules to atoms loses
//!   which non-key atom belongs to which key-class instance. When one
//!   `(pred, key, level)` group contains key atoms at *several* classes
//!   (Figure 1's t4/t5, both at S with key classes U and C), the
//!   association is ambiguous and the FD/entity checks are skipped for
//!   that group rather than reporting a spurious violation. This is a
//!   genuine expressiveness gap of atom-granularity MultiLog that the
//!   paper does not discuss; see DESIGN.md.

use std::collections::BTreeMap;
use std::sync::Arc;

use multilog_lattice::Label;

use crate::ast::Term;
use crate::engine::MultiLogEngine;
use crate::{MultiLogError, Result};

/// A fact group: all m-facts of one `(pred, key, level)`.
#[derive(Debug, Clone)]
struct Group<'a> {
    pred: &'a str,
    key: &'a Term,
    level: Label,
    /// `(attr, value, class)` triples, possibly several per attr.
    fields: Vec<(&'a str, &'a Term, Label)>,
}

impl Group<'_> {
    fn key_classes(&self, ak: Option<&str>) -> Vec<Label> {
        let Some(ak) = ak else { return Vec::new() };
        let mut out: Vec<Label> = self
            .fields
            .iter()
            .filter(|(a, _, _)| *a == ak)
            .map(|&(_, _, c)| c)
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Run the Definition 5.4 suite against an evaluated engine's m-facts.
pub fn check_consistency(engine: &MultiLogEngine) -> Result<()> {
    let lat = engine.lattice();
    let facts = engine.mfacts();

    // --- Group facts by (pred, key, level). ---
    let mut groups: Vec<Group<'_>> = Vec::new();
    for f in facts {
        let idx = groups
            .iter()
            .position(|g| g.pred == f.pred.as_ref() && g.key == &f.key && g.level == f.level);
        let g = match idx {
            Some(i) => &mut groups[i],
            None => {
                groups.push(Group {
                    pred: &f.pred,
                    key: &f.key,
                    level: f.level,
                    fields: Vec::new(),
                });
                groups.last_mut().expect("just pushed")
            }
        };
        g.fields.push((&f.attr, &f.value, f.class));
    }

    // --- Detect the apparent key attribute per predicate. ---
    let mut preds: Vec<&str> = groups.iter().map(|g| g.pred).collect();
    preds.sort_unstable();
    preds.dedup();
    let mut key_attr: BTreeMap<&str, Option<&str>> = BTreeMap::new();
    for &pred in &preds {
        let mut attrs: Vec<&str> = groups
            .iter()
            .filter(|g| g.pred == pred)
            .flat_map(|g| g.fields.iter().map(|&(a, _, _)| a))
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        let found = attrs.iter().copied().find(|&a| {
            let mut seen = false;
            let ok = groups.iter().filter(|g| g.pred == pred).all(|g| {
                g.fields
                    .iter()
                    .filter(|&&(attr, _, _)| attr == a)
                    .all(|&(_, v, _)| {
                        seen = true;
                        v == g.key
                    })
            });
            ok && seen
        });
        key_attr.insert(pred, found);
    }

    for g in &groups {
        // Entity integrity: non-null key, always checkable.
        if matches!(g.key, Term::Null) {
            return Err(MultiLogError::Inconsistent {
                detail: format!("entity integrity: null key in predicate `{}`", g.pred),
            });
        }
        let ak = key_attr.get(g.pred).copied().flatten();
        let key_classes = g.key_classes(ak);
        match key_classes.as_slice() {
            [c_ak] => {
                // Unambiguous molecule: full entity + null integrity.
                let ak = ak.expect("key class implies key attr");
                for &(attr, v, c) in &g.fields {
                    if attr == ak {
                        continue;
                    }
                    if !lat.leq(*c_ak, c) {
                        return Err(MultiLogError::Inconsistent {
                            detail: format!(
                                "entity integrity: class {} of `{}` in {}[{}({})] does \
                                 not dominate the key class {}",
                                lat.name(c),
                                attr,
                                lat.name(g.level),
                                g.pred,
                                g.key,
                                lat.name(*c_ak)
                            ),
                        });
                    }
                    if matches!(v, Term::Null) && c != *c_ak {
                        return Err(MultiLogError::Inconsistent {
                            detail: format!(
                                "null integrity: ⊥ in `{attr}` of {}[{}({})] classified \
                                 {} instead of the key class {}",
                                lat.name(g.level),
                                g.pred,
                                g.key,
                                lat.name(c),
                                lat.name(*c_ak)
                            ),
                        });
                    }
                }
            }
            [] | [_, _, ..] => {
                // No key atom, or several key classes (ambiguous molecule
                // reconstruction): AK-dependent checks skipped.
            }
        }

        // Within-group FD (pred, key, level, attr, class) → value, only
        // for unambiguous groups.
        if key_classes.len() <= 1 {
            for (i, &(a1, v1, c1)) in g.fields.iter().enumerate() {
                for &(a2, v2, c2) in &g.fields[i + 1..] {
                    if a1 == a2 && c1 == c2 && v1 != v2 {
                        return Err(MultiLogError::Inconsistent {
                            detail: format!(
                                "polyinstantiation integrity: {}[{}({})] has two values \
                                 for attribute {} at class {}",
                                lat.name(g.level),
                                g.pred,
                                g.key,
                                a1,
                                lat.name(c1)
                            ),
                        });
                    }
                }
            }
        }
    }

    // --- Cross-group checks, for unambiguous same-entity pairs. ---
    for (i, a) in groups.iter().enumerate() {
        for b in &groups[i + 1..] {
            if a.pred != b.pred || a.key != b.key {
                continue;
            }
            let ak = key_attr.get(a.pred).copied().flatten();
            let (ka, kb) = (a.key_classes(ak), b.key_classes(ak));
            if ka.len() > 1 || kb.len() > 1 {
                continue; // ambiguous molecules
            }
            // Subsumption-freedom (strict only) — checked before the FD,
            // as a ⊥-bearing molecule covered by a fuller one is a
            // subsumption problem, not a value conflict.
            if strictly_subsumes(a, b) || strictly_subsumes(b, a) {
                return Err(MultiLogError::Inconsistent {
                    detail: format!(
                        "null integrity: molecules for {}({}) at {} and {} subsume one \
                         another",
                        a.pred,
                        a.key,
                        lat.name(a.level),
                        lat.name(b.level)
                    ),
                });
            }
            // Polyinstantiation integrity requires equal key classes
            // (different C_AK = different entity instances). ⊥ denotes
            // absence, not a conflicting value.
            if ka == kb {
                for &(a1, v1, c1) in &a.fields {
                    for &(a2, v2, c2) in &b.fields {
                        if a1 == a2
                            && c1 == c2
                            && v1 != v2
                            && !matches!(v1, Term::Null)
                            && !matches!(v2, Term::Null)
                        {
                            return Err(MultiLogError::Inconsistent {
                                detail: format!(
                                    "polyinstantiation integrity: {}({}) attribute {} \
                                     has values `{v1}` and `{v2}` at the same class {}",
                                    a.pred,
                                    a.key,
                                    a1,
                                    lat.name(c1)
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Group-level strict subsumption: `a` covers every field of `b` (equal
/// value+class, or a non-null value where `b` has ⊥ at the same attr)
/// with at least one strictly-more-informative field.
fn strictly_subsumes(a: &Group<'_>, b: &Group<'_>) -> bool {
    let mut strict = false;
    for &(attr, vb, cb) in &b.fields {
        let covered = a.fields.iter().any(|&(aa, va, ca)| {
            aa == attr
                && ((va == vb && ca == cb)
                    || (!matches!(va, Term::Null) && matches!(vb, Term::Null)))
        });
        if !covered {
            return false;
        }
        let exact = a
            .fields
            .iter()
            .any(|&(aa, va, ca)| aa == attr && va == vb && ca == cb);
        if !exact {
            strict = true;
        }
    }
    strict
}

/// Convenience: evaluate a database at a level and run the suite.
pub fn check_database(db: &crate::db::MultiLogDb, user: &str) -> Result<Arc<MultiLogEngine>> {
    let engine = MultiLogEngine::new(db, user)?;
    check_consistency(&engine)?;
    Ok(Arc::new(engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;

    fn engine(src: &str, user: &str) -> MultiLogEngine {
        MultiLogEngine::new(&parse_database(src).unwrap(), user).unwrap()
    }

    #[test]
    fn mission_encoding_is_consistent() {
        // Includes the ambiguous t4/t5 pair (both Phantom at S, key
        // classes U and C) — must not be a spurious violation.
        let db = crate::examples::mission_db().unwrap();
        let e = MultiLogEngine::new(&db, "s").unwrap();
        check_consistency(&e).unwrap();
    }

    #[test]
    fn d1_is_consistent_without_key_atoms() {
        let db = crate::examples::d1();
        let e = MultiLogEngine::new(&db, "s").unwrap();
        check_consistency(&e).unwrap();
    }

    #[test]
    fn entity_integrity_violation_detected() {
        // Key classified s but attribute classified u: c_i ⋡ c_AK.
        let e = engine(
            r#"
            level(u). level(s). order(u, s).
            s[p(k1 : name -s-> k1; size -u-> big)].
            "#,
            "s",
        );
        let err = check_consistency(&e).unwrap_err();
        assert!(matches!(err, MultiLogError::Inconsistent { .. }));
        assert!(err.to_string().contains("entity integrity"));
    }

    #[test]
    fn null_integrity_violation_detected() {
        let e = engine(
            r#"
            level(u). level(c). level(s). order(u, c). order(c, s).
            s[p(k1 : name -u-> k1; size -s-> null)].
            "#,
            "s",
        );
        let err = check_consistency(&e).unwrap_err();
        assert!(err.to_string().contains("null integrity"));
    }

    #[test]
    fn null_at_key_class_is_fine() {
        let e = engine(
            r#"
            level(u). level(s). order(u, s).
            s[p(k1 : name -u-> k1; size -u-> null)].
            "#,
            "s",
        );
        check_consistency(&e).unwrap();
    }

    #[test]
    fn polyinstantiation_integrity_violation_detected() {
        // Same key, same key class, same attr class, different values.
        let e = engine(
            r#"
            level(u). level(s). order(u, s).
            u[p(k1 : name -u-> k1; size -u-> small)].
            s[p(k1 : name -u-> k1; size -u-> large)].
            "#,
            "s",
        );
        let err = check_consistency(&e).unwrap_err();
        assert!(err.to_string().contains("polyinstantiation"));
    }

    #[test]
    fn within_level_fd_violation_detected() {
        let e = engine(
            r#"
            level(u).
            u[p(k1 : name -u-> k1; size -u-> small)].
            u[p(k1 : size -u-> large)].
            "#,
            "u",
        );
        let err = check_consistency(&e).unwrap_err();
        assert!(err.to_string().contains("polyinstantiation"));
    }

    #[test]
    fn legal_polyinstantiation_accepted() {
        // Different classes for the differing value: a cover story.
        let e = engine(
            r#"
            level(u). level(s). order(u, s).
            u[p(k1 : name -u-> k1; size -u-> small)].
            s[p(k1 : name -u-> k1; size -s-> large)].
            "#,
            "s",
        );
        check_consistency(&e).unwrap();
    }

    #[test]
    fn different_key_classes_are_different_entities() {
        // Same value-level conflict but distinct key classes: legal.
        let e = engine(
            r#"
            level(u). level(c). level(s). order(u, c). order(c, s).
            u[p(k1 : name -u-> k1; size -u-> small)].
            c[p(k1 : name -c-> k1; size -c-> large)].
            "#,
            "s",
        );
        check_consistency(&e).unwrap();
    }

    #[test]
    fn strict_subsumption_detected() {
        let e = engine(
            r#"
            level(u). level(s). order(u, s).
            u[p(k1 : name -u-> k1; size -u-> small)].
            s[p(k1 : name -u-> k1; size -u-> null)].
            "#,
            "s",
        );
        let err = check_consistency(&e).unwrap_err();
        assert!(err.to_string().contains("subsume"));
    }

    #[test]
    fn reasserted_identical_molecules_are_legal() {
        // The t2/t6/t7 pattern: identical data at several levels.
        let e = engine(
            r#"
            level(u). level(c). level(s). order(u, c). order(c, s).
            u[p(k1 : name -u-> k1; size -u-> small)].
            c[p(k1 : name -u-> k1; size -u-> small)].
            s[p(k1 : name -u-> k1; size -u-> small)].
            "#,
            "s",
        );
        check_consistency(&e).unwrap();
    }

    #[test]
    fn null_key_detected() {
        let e = engine(
            r#"
            level(u).
            u[p(k1 : name -u-> k1)].
            u[q(null : a -u-> x)].
            "#,
            "u",
        );
        let err = check_consistency(&e).unwrap_err();
        assert!(err.to_string().contains("null key"));
    }

    #[test]
    fn check_database_convenience() {
        let db = crate::examples::mission_db().unwrap();
        let e = check_database(&db, "s").unwrap();
        assert_eq!(e.mfacts().len(), 30);
    }
}
