//! Parser for the MultiLog concrete syntax.
//!
//! ```text
//! database := item*
//! item     := clause "." | "<-" body "."            (a query)
//! clause   := head ( "<-" body )?
//! head     := m-molecule | p-atom | l-atom | h-atom
//! body     := atom ("," atom)*
//! atom     := m-molecule ("<<" MODE)? | l-atom | h-atom | leq | p-atom
//! m-molecule := term "[" IDENT "(" term ":" field (";" field)* ")" "]"
//! field    := IDENT "-" term "->" term
//! l-atom   := "level" "(" term ")"
//! h-atom   := "order" "(" term "," term ")"
//! leq      := term "leq" term
//! p-atom   := IDENT ( "(" term ("," term)* ")" )?
//! term     := VARIABLE | IDENT | INTEGER | "null" | "_"
//! ```
//!
//! Identifiers starting lowercase are symbols; uppercase or `_`-prefixed
//! are variables; a bare `_` is a *don't-care* (§7) and desugars to a
//! fresh variable. `%` starts a line comment. Molecular heads desugar to
//! one clause per field; molecular body atoms desugar to conjunctions.

use std::sync::Arc;

use crate::ast::{Atom, Clause, Goal, Head, MAggFunc, MAggregate, MMolecule, PAtom, Span, Term};
use crate::db::MultiLogDb;
use crate::{MultiLogError, Result};

/// The raw output of the parser: clauses (spans attached) and queries
/// with their source spans, *before* any database-level validation.
///
/// The lint pass works on this form so it can report range-restriction
/// and admissibility problems as collected diagnostics instead of the
/// fail-fast errors [`MultiLogDb::new`] raises.
#[derive(Clone, Debug, Default)]
pub struct ParsedProgram {
    /// The clauses in source order, each carrying its span.
    pub clauses: Vec<Clause>,
    /// The queries (`<- …` items) in source order.
    pub queries: Vec<Goal>,
    /// The source span of each query, parallel to `queries`.
    pub query_spans: Vec<Span>,
}

/// Parse a database into its raw, unvalidated form (see
/// [`ParsedProgram`]). Only syntax errors are reported here.
pub fn parse_items(src: &str) -> Result<ParsedProgram> {
    let mut p = Parser::new(src)?;
    let mut out = ParsedProgram::default();
    while !p.at_end() {
        let span = p.span_here();
        if p.peek_is(&Tok::Arrow) {
            p.advance();
            let body = p.body()?;
            p.expect(&Tok::Dot, "`.`")?;
            out.queries.push(body);
            out.query_spans.push(span);
        } else {
            out.clauses.extend(p.clause()?);
        }
    }
    Ok(out)
}

/// Parse a full database (clauses and `<- …` queries), validating it
/// (Definition 5.1 partitioning plus the syntactic admissibility checks).
pub fn parse_database(src: &str) -> Result<MultiLogDb> {
    let items = parse_items(src)?;
    MultiLogDb::new(items.clauses, items.queries)
}

/// Parse one clause (molecular heads may yield several); must consume all
/// input.
pub fn parse_clause(src: &str) -> Result<Vec<Clause>> {
    let mut p = Parser::new(src)?;
    let cs = p.clause()?;
    p.expect_end()?;
    Ok(cs)
}

/// Parse a goal (conjunction of atoms, optionally ending with `.`).
pub fn parse_goal(src: &str) -> Result<Goal> {
    let mut p = Parser::new(src)?;
    if p.peek_is(&Tok::Arrow) {
        p.advance();
    }
    let g = p.body()?;
    if p.peek_is(&Tok::Dot) {
        p.advance();
    }
    p.expect_end()?;
    Ok(g)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    AlgoName(String), // `@bfs`, `@cc`, … (without the `@`)
    Var(String),
    Int(i64),
    Null,
    DontCare,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    Dot,
    Arrow,   // <- or :-
    Believe, // <<
    Dash,    // -
    RArrow,  // ->
    Leq,     // keyword `leq`
}

struct Parser {
    tokens: Vec<(Tok, usize, usize)>,
    pos: usize,
    fresh: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
            fresh: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    fn peek_is(&self, t: &Tok) -> bool {
        self.peek() == Some(t)
    }

    fn peek2_is(&self, t: &Tok) -> bool {
        self.tokens.get(self.pos + 1).map(|(t, _, _)| t) == Some(t)
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> MultiLogError {
        let (line, column) = self
            .tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or((1, 1), |&(_, l, c)| (l, c));
        MultiLogError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.peek_is(t) {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err("expected end of input"))
        }
    }

    fn fresh_var(&mut self) -> Term {
        self.fresh += 1;
        Term::var(format!("_Dc{}", self.fresh))
    }

    /// The span of the next token (or of the last token at end of input).
    fn span_here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or_else(Span::unknown, |&(_, l, c)| Span::new(l, c))
    }

    fn clause(&mut self) -> Result<Vec<Clause>> {
        let span = self.span_here();
        let (heads, agg) = self.head()?;
        let body = if self.peek_is(&Tok::Arrow) {
            self.advance();
            self.body()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::Dot, "`.` at end of clause")?;
        Ok(heads
            .into_iter()
            .map(|head| {
                let mut c = Clause::new(head, body.clone()).with_span(span);
                if let Some(agg) = agg {
                    c = c.with_agg(agg);
                }
                c
            })
            .collect())
    }

    /// A head: returns several heads when molecular, plus the aggregate
    /// annotation when the head is an aggregate p-atom.
    fn head(&mut self) -> Result<(Vec<Head>, Option<MAggregate>)> {
        // level(…)/order(…) with the distinguished arities; otherwise fall
        // back to a p-atom of the same name.
        let start = self.pos;
        if let Some(la) = self.try_level_order()? {
            return Ok((
                vec![match la {
                    Atom::L(t) => Head::L(t),
                    Atom::H(l, h) => Head::H(l, h),
                    other => {
                        return Err(
                            self.err(format!("expected a level/order head, found `{other}`"))
                        )
                    }
                }],
                None,
            ));
        }
        self.pos = start;
        // m-molecule (term "[" …) or p-atom.
        if let Ok(mol) = self.molecule() {
            return Ok((mol.atoms().into_iter().map(Head::M).collect(), None));
        }
        self.pos = start;
        let (p, agg) = self.head_patom()?;
        Ok((vec![Head::P(p)], agg))
    }

    /// A p-atom head, where one argument may be an aggregate term
    /// `count(V)` / `sum(V)` / `min(V)` / `max(V)` — the aggregated
    /// variable is stored as a plain term and the function recorded in
    /// the returned [`MAggregate`].
    fn head_patom(&mut self) -> Result<(PAtom, Option<MAggregate>)> {
        let pred = match self.advance() {
            Some(Tok::Ident(p)) => p,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected predicate name"));
            }
        };
        let mut args = Vec::new();
        let mut agg: Option<MAggregate> = None;
        if self.peek_is(&Tok::LParen) {
            self.advance();
            loop {
                let is_agg = matches!(
                    self.peek(),
                    Some(Tok::Ident(n)) if MAggFunc::parse(n).is_some()
                ) && self.peek2_is(&Tok::LParen);
                if is_agg {
                    let func = match self.advance() {
                        Some(Tok::Ident(n)) => match MAggFunc::parse(&n) {
                            Some(func) => func,
                            None => return Err(self.err("expected aggregate function")),
                        },
                        _ => return Err(self.err("expected aggregate function")),
                    };
                    self.advance(); // `(`
                    if agg.is_some() {
                        return Err(self.err("at most one aggregate per head"));
                    }
                    let var = match self.advance() {
                        Some(Tok::Var(v)) => Term::var(v),
                        _ => {
                            return Err(self.err(format!(
                                "`{}(...)` takes a variable to aggregate",
                                func.keyword()
                            )))
                        }
                    };
                    self.expect(&Tok::RParen, "`)` after aggregate variable")?;
                    agg = Some(MAggregate {
                        func,
                        position: args.len(),
                    });
                    args.push(var);
                } else {
                    args.push(self.term()?);
                }
                if self.peek_is(&Tok::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
        }
        Ok((
            PAtom {
                pred: Arc::from(pred.as_str()),
                args,
            },
            agg,
        ))
    }

    /// Attempt to parse `level(t)` or `order(l, h)`; `Ok(None)` when the
    /// lookahead does not match, leaving the position for the caller to
    /// reset on fallback.
    fn try_level_order(&mut self) -> Result<Option<Atom>> {
        let start = self.pos;
        let name = match self.peek() {
            Some(Tok::Ident(n))
                if (n == "level" || n == "order") && self.peek2_is(&Tok::LParen) =>
            {
                n.clone()
            }
            _ => return Ok(None),
        };
        self.advance();
        self.advance(); // `(`
        let first = match self.term() {
            Ok(t) => t,
            Err(_) => {
                self.pos = start;
                return Ok(None);
            }
        };
        if name == "level" {
            if self.peek_is(&Tok::RParen) {
                self.advance();
                return Ok(Some(Atom::L(first)));
            }
        } else if self.peek_is(&Tok::Comma) {
            self.advance();
            if let Ok(second) = self.term() {
                if self.peek_is(&Tok::RParen) {
                    self.advance();
                    return Ok(Some(Atom::H(first, second)));
                }
            }
        }
        // Wrong arity: not an l-/h-atom; let the caller re-parse as p-atom.
        self.pos = start;
        Ok(None)
    }

    fn body(&mut self) -> Result<Vec<Atom>> {
        let mut out = Vec::new();
        self.body_atom(&mut out)?;
        while self.peek_is(&Tok::Comma) {
            self.advance();
            self.body_atom(&mut out)?;
        }
        Ok(out)
    }

    fn body_atom(&mut self, out: &mut Vec<Atom>) -> Result<()> {
        // `@name(input, t1, …, tn)` — a native algorithm operator call,
        // carried as a p-atom whose predicate keeps the `@` prefix; the
        // reduction passes it through verbatim to the Datalog layer.
        if let Some(Tok::AlgoName(name)) = self.peek().cloned() {
            self.advance();
            self.expect(&Tok::LParen, "`(` after algorithm operator")?;
            let input = match self.advance() {
                Some(Tok::Ident(p)) => Term::sym(p),
                _ => return Err(self.err("expected an input predicate name (identifier)")),
            };
            let mut args = vec![input];
            while self.peek_is(&Tok::Comma) {
                self.advance();
                args.push(self.term()?);
            }
            self.expect(&Tok::RParen, "`)`")?;
            out.push(Atom::P(PAtom {
                pred: Arc::from(format!("@{name}").as_str()),
                args,
            }));
            return Ok(());
        }
        // level(…) / order(…)?
        let start = self.pos;
        if let Some(la) = self.try_level_order()? {
            out.push(la);
            return Ok(());
        }
        self.pos = start;
        // m-molecule, possibly believed?
        if let Ok(mol) = self.molecule() {
            if self.peek_is(&Tok::Believe) {
                self.advance();
                let mode = match self.advance() {
                    Some(Tok::Ident(m)) => m,
                    _ => return Err(self.err("expected belief mode after `<<`")),
                };
                for a in mol.atoms() {
                    out.push(Atom::B(a, Arc::from(mode.as_str())));
                }
            } else {
                for a in mol.atoms() {
                    out.push(Atom::M(a));
                }
            }
            return Ok(());
        }
        self.pos = start;
        // `term leq term`?
        if let Ok(l) = self.term() {
            if self.peek_is(&Tok::Leq) {
                self.advance();
                let h = self.term()?;
                out.push(Atom::Leq(l, h));
                return Ok(());
            }
        }
        self.pos = start;
        out.push(Atom::P(self.patom()?));
        Ok(())
    }

    fn molecule(&mut self) -> Result<MMolecule> {
        let level = self.term()?;
        self.expect(&Tok::LBracket, "`[`")?;
        let pred = match self.advance() {
            Some(Tok::Ident(p)) => p,
            _ => return Err(self.err("expected predicate name")),
        };
        self.expect(&Tok::LParen, "`(`")?;
        let key = self.term()?;
        self.expect(&Tok::Colon, "`:`")?;
        let mut fields = Vec::new();
        loop {
            let attr = match self.advance() {
                Some(Tok::Ident(a)) => a,
                _ => return Err(self.err("expected attribute name")),
            };
            self.expect(&Tok::Dash, "`-`")?;
            let class = self.term_or_dontcare()?;
            self.expect(&Tok::RArrow, "`->`")?;
            let value = self.term()?;
            fields.push((Arc::from(attr.as_str()), class, value));
            if self.peek_is(&Tok::Semi) {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::RBracket, "`]`")?;
        Ok(MMolecule {
            level,
            pred: Arc::from(pred.as_str()),
            key,
            fields,
        })
    }

    fn patom(&mut self) -> Result<PAtom> {
        let pred = match self.advance() {
            Some(Tok::Ident(p)) => p,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected predicate name"));
            }
        };
        let mut args = Vec::new();
        if self.peek_is(&Tok::LParen) {
            self.advance();
            args.push(self.term()?);
            while self.peek_is(&Tok::Comma) {
                self.advance();
                args.push(self.term()?);
            }
            self.expect(&Tok::RParen, "`)`")?;
        }
        Ok(PAtom {
            pred: Arc::from(pred.as_str()),
            args,
        })
    }

    fn term(&mut self) -> Result<Term> {
        self.term_or_dontcare()
    }

    fn term_or_dontcare(&mut self) -> Result<Term> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                // An identifier followed by `[` or `(` is not a plain term
                // in contexts where we backtrack — but inside terms that is
                // the caller's concern; accept the symbol.
                self.advance();
                Ok(Term::sym(s))
            }
            Some(Tok::Var(v)) => {
                self.advance();
                Ok(Term::var(v))
            }
            Some(Tok::Int(i)) => {
                self.advance();
                Ok(Term::Int(i))
            }
            Some(Tok::Null) => {
                self.advance();
                Ok(Term::Null)
            }
            Some(Tok::DontCare) => {
                self.advance();
                Ok(self.fresh_var())
            }
            _ => Err(self.err("expected term")),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize, usize)>> {
    let mut out = Vec::new();
    let mut it = src.chars().peekable();
    let (mut line, mut col) = (1usize, 1usize);
    macro_rules! bump {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        };
    }
    let perr = |line: usize, column: usize, message: String| MultiLogError::Parse {
        line,
        column,
        message,
    };
    while let Some(&ch) = it.peek() {
        let (tl, tc) = (line, col);
        match ch {
            c if c.is_whitespace() => {
                it.next();
                bump!(c);
            }
            '%' => {
                for c in it.by_ref() {
                    bump!(c);
                    if c == '\n' {
                        break;
                    }
                }
            }
            '@' => {
                it.next();
                bump!('@');
                let mut text = String::new();
                while let Some(&d) = it.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        text.push(d);
                        it.next();
                        bump!(d);
                    } else {
                        break;
                    }
                }
                if text.is_empty() || !text.starts_with(|c: char| c.is_lowercase()) {
                    return Err(perr(
                        tl,
                        tc,
                        "expected a lowercase algorithm operator name after `@`".into(),
                    ));
                }
                out.push((Tok::AlgoName(text), tl, tc));
            }
            '[' | ']' | '(' | ')' | ';' | ',' | '.' => {
                it.next();
                bump!(ch);
                let t = match ch {
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    _ => Tok::Dot,
                };
                out.push((t, tl, tc));
            }
            ':' => {
                it.next();
                bump!(':');
                if it.peek() == Some(&'-') {
                    it.next();
                    bump!('-');
                    out.push((Tok::Arrow, tl, tc));
                } else {
                    out.push((Tok::Colon, tl, tc));
                }
            }
            '<' => {
                it.next();
                bump!('<');
                match it.peek() {
                    Some('-') => {
                        it.next();
                        bump!('-');
                        out.push((Tok::Arrow, tl, tc));
                    }
                    Some('<') => {
                        it.next();
                        bump!('<');
                        out.push((Tok::Believe, tl, tc));
                    }
                    _ => return Err(perr(tl, tc, "expected `<-` or `<<`".into())),
                }
            }
            '-' => {
                it.next();
                bump!('-');
                if it.peek() == Some(&'>') {
                    it.next();
                    bump!('>');
                    out.push((Tok::RArrow, tl, tc));
                } else if it.peek().is_some_and(|c| c.is_ascii_digit()) {
                    let mut text = String::from("-");
                    while let Some(&d) = it.peek() {
                        if d.is_ascii_digit() {
                            text.push(d);
                            it.next();
                            bump!(d);
                        } else {
                            break;
                        }
                    }
                    let i: i64 = text
                        .parse()
                        .map_err(|_| perr(tl, tc, format!("bad integer {text}")))?;
                    out.push((Tok::Int(i), tl, tc));
                } else {
                    out.push((Tok::Dash, tl, tc));
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&d) = it.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        it.next();
                        bump!(d);
                    } else {
                        break;
                    }
                }
                let i: i64 = text
                    .parse()
                    .map_err(|_| perr(tl, tc, format!("bad integer {text}")))?;
                out.push((Tok::Int(i), tl, tc));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&d) = it.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        text.push(d);
                        it.next();
                        bump!(d);
                    } else {
                        break;
                    }
                }
                let t = if text == "null" {
                    Tok::Null
                } else if text == "leq" {
                    Tok::Leq
                } else if text == "_" {
                    Tok::DontCare
                } else if text.starts_with(|c: char| c.is_uppercase() || c == '_') {
                    Tok::Var(text)
                } else {
                    Tok::Ident(text)
                };
                out.push((t, tl, tc));
            }
            other => return Err(perr(tl, tc, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_51_molecule() {
        // Example 5.1 of the paper (with `;` separators).
        let cs = parse_clause(
            "s[mission(avenger : starship -s-> avenger; objective -s-> shipping; \
             destination -s-> pluto)].",
        )
        .unwrap();
        assert_eq!(cs.len(), 3, "molecule desugars to one clause per field");
        assert!(cs.iter().all(|c| c.is_fact()));
        match &cs[1].head {
            Head::M(m) => {
                assert_eq!(m.attr.as_ref(), "objective");
                assert_eq!(m.value, Term::sym("shipping"));
            }
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn parses_figure10_database() {
        let db = parse_database(
            r#"
            % Database D1 of Figure 10.
            level(u). level(c). level(s).
            order(u, c). order(c, s).
            u[p(k : a -u-> v)].
            c[p(k : a -c-> t)] <- q(j).
            s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.
            q(j).
            <- c[p(k : a -u-> v)] << opt.
            "#,
        )
        .unwrap();
        assert_eq!(db.lambda().len(), 5);
        assert_eq!(db.sigma().len(), 3);
        assert_eq!(db.pi().len(), 1);
        assert_eq!(db.queries().len(), 1);
    }

    #[test]
    fn parses_batom_in_body() {
        let cs = parse_clause("s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.").unwrap();
        assert_eq!(cs.len(), 1);
        assert!(matches!(cs[0].body[0], Atom::B(_, ref m) if m.as_ref() == "cau"));
    }

    #[test]
    fn parses_leq_constraint() {
        let g = parse_goal("u leq H, H leq s").unwrap();
        assert_eq!(g.len(), 2);
        assert!(matches!(g[0], Atom::Leq(_, _)));
    }

    #[test]
    fn dont_care_becomes_fresh_variable() {
        let g = parse_goal("c[mission(phantom : objective -_-> X)] << opt").unwrap();
        match &g[0] {
            Atom::B(m, _) => {
                assert!(m.class.is_var());
                assert_ne!(m.class, Term::var("X"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn molecular_body_atom_desugars() {
        let g = parse_goal("s[m(k : a -u-> v; b -u-> w)]").unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn variable_level_and_class() {
        let cs = parse_clause("L[p(K : a -C-> V)] <- level(L), q(K, C, V).").unwrap();
        match &cs[0].head {
            Head::M(m) => {
                assert!(m.level.is_var());
                assert!(m.class.is_var());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn p_clause_named_level_with_args_is_latom_only_with_one_arg() {
        // level/1 and order/2 are distinguished; a 2-ary `level` is just a
        // p-atom.
        let db = parse_database("level(a, b).").unwrap();
        assert_eq!(db.pi().len(), 1);
        assert!(db.lambda().is_empty());
    }

    #[test]
    fn queries_accept_plain_atoms() {
        let db = parse_database("q(a). <- q(X).").unwrap();
        assert_eq!(db.queries().len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_database("u[p(k a -u-> v)].").is_err());
        assert!(parse_database("u[p(k : a -u- v)].").is_err());
        assert!(parse_database("u[p(k : a -u-> v)]").is_err()); // missing dot
        assert!(parse_database("& nope.").is_err());
        assert!(parse_database("u[p(k : a -u-> v)] << .").is_err());
    }

    #[test]
    fn parses_algo_call_in_body() {
        let cs = parse_clause("reach(X, Y) <- @bfs(edge, X, Y).").unwrap();
        match &cs[0].body[0] {
            Atom::P(p) => {
                assert_eq!(p.pred.as_ref(), "@bfs");
                assert_eq!(p.args[0], Term::sym("edge"));
                assert_eq!(p.args.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(cs[0].uses_algo());
        assert_eq!(cs[0].to_string(), "reach(X, Y) <- @bfs(edge, X, Y).");
        assert_eq!(parse_clause(&cs[0].to_string()).unwrap(), cs);
    }

    #[test]
    fn parses_aggregate_head() {
        use crate::ast::MAggFunc;
        let cs = parse_clause("total(H, count(K)) <- vis(H, K).").unwrap();
        let agg = cs[0].agg.unwrap();
        assert_eq!(agg.func, MAggFunc::Count);
        assert_eq!(agg.position, 1);
        assert_eq!(cs[0].to_string(), "total(H, count(K)) <- vis(H, K).");
        assert_eq!(parse_clause(&cs[0].to_string()).unwrap(), cs);
        for func in ["sum", "min", "max"] {
            let cs = parse_clause(&format!("t({func}(V)) <- p(V).")).unwrap();
            assert!(cs[0].agg.is_some(), "{func}");
        }
    }

    #[test]
    fn aggregate_names_stay_plain_symbols_elsewhere() {
        // `count` with no parens is an ordinary symbol or predicate.
        let cs = parse_clause("p(count) <- q(count).").unwrap();
        assert!(cs[0].agg.is_none());
        let cs = parse_clause("count(X) <- q(X).").unwrap();
        assert!(cs[0].agg.is_none());
    }

    #[test]
    fn rejects_malformed_algo_and_aggregates() {
        assert!(parse_clause("p(X) <- @bfs.").is_err());
        assert!(parse_clause("p(X) <- @bfs(X, Y).").is_err()); // input must be an identifier
        assert!(parse_database("p(X) <- @Bfs(edge, X, X).").is_err());
        assert!(parse_clause("t(count(K), sum(V)) <- p(K, V).").is_err());
        assert!(parse_clause("t(count(3)) <- p(X).").is_err());
        assert!(parse_clause("@bfs(edge, X, Y) <- p(X, Y).").is_err()); // no algo heads
    }

    #[test]
    fn negative_integers_lex() {
        let cs = parse_clause("q(-5).").unwrap();
        match &cs[0].head {
            Head::P(p) => assert_eq!(p.args[0], Term::Int(-5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn roundtrip_display_parse() {
        let src = "s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau, q(j).";
        let cs = parse_clause(src).unwrap();
        let printed = cs[0].to_string();
        let cs2 = parse_clause(&printed).unwrap();
        assert_eq!(cs, cs2);
    }
}
