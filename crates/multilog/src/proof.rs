//! Sequent-style proof trees (Figures 9 and 11).
//!
//! The operational engine records, for every derived fact, the clause and
//! the ground body atoms that produced it. This module replays those
//! justifications *goal-directed* — starting from a query and working
//! back to `EMPTY` leaves — labelling every step with the proof rule of
//! Figure 9 it instantiates:
//!
//! | rule | proves |
//! |---|---|
//! | `EMPTY` | the empty goal |
//! | `AND` | conjunctions |
//! | `DEDUCTION-G` | p-, l-, h-atoms via clause resolution |
//! | `DEDUCTION-G'` | m-atoms, guarded by `l ⪯ u` (no read up) |
//! | `BELIEF` | b-atoms, guarded by `l ⪯ u`, via `⊢^m` |
//! | `DESCEND-O` | optimistic descent to a dominated level |
//! | `DESCEND-C1…C4` | the four cautious cases |
//! | `REFLEXIVITY`/`ORDER`/`TRANSITIVITY` | `l ⪯ h` goals |
//! | `USER-BELIEF` | user-mode b-atoms via `bel/7` (Figure 13) |
//! | `FILTER`/`FILTER-NULL` | σ inheritance (Figure 13) |
//!
//! Well-foundedness: every justification references facts derived
//! strictly earlier, so the replay terminates.

use std::fmt;

use multilog_lattice::Label;

use crate::ast::{Atom, Goal, Term};
use crate::belief::{believed, MFact, Mode};
use crate::engine::{JustAtom, MultiLogEngine};
use crate::{MultiLogError, Result};

/// The proof-rule labels of Figures 9 and 13.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum RuleName {
    Empty,
    And,
    DeductionG,
    DeductionGPrime,
    DeductionB,
    Belief,
    DescendO,
    DescendC1,
    DescendC2,
    DescendC3,
    DescendC4,
    Reflexivity,
    Order,
    Transitivity,
    UserBelief,
    Filter,
}

impl fmt::Display for RuleName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuleName::Empty => "EMPTY",
            RuleName::And => "AND",
            RuleName::DeductionG => "DEDUCTION-G",
            RuleName::DeductionGPrime => "DEDUCTION-G'",
            RuleName::DeductionB => "DEDUCTION-B",
            RuleName::Belief => "BELIEF",
            RuleName::DescendO => "DESCEND-O",
            RuleName::DescendC1 => "DESCEND-C1",
            RuleName::DescendC2 => "DESCEND-C2",
            RuleName::DescendC3 => "DESCEND-C3",
            RuleName::DescendC4 => "DESCEND-C4",
            RuleName::Reflexivity => "REFLEXIVITY",
            RuleName::Order => "ORDER",
            RuleName::Transitivity => "TRANSITIVITY",
            RuleName::UserBelief => "USER-BELIEF",
            RuleName::Filter => "FILTER",
        })
    }
}

/// One node of a proof tree: a sequent, the rule that proves it, and the
/// subproofs of the rule's assumptions.
#[derive(Clone, Debug)]
pub struct ProofNode {
    /// The proved sequent, rendered (`⟨Δ, u⟩ ⊢ goal`).
    pub sequent: String,
    /// The Figure 9/13 rule instantiated at this node.
    pub rule: RuleName,
    /// Subproofs.
    pub children: Vec<ProofNode>,
}

impl ProofNode {
    fn leaf(sequent: String) -> ProofNode {
        ProofNode {
            sequent,
            rule: RuleName::Empty,
            children: Vec::new(),
        }
    }

    /// Height of the proof (Figure 9 terminology).
    pub fn height(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProofNode::height)
            .max()
            .unwrap_or(0)
    }

    /// Size of the proof: number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProofNode::size).sum::<usize>()
    }

    /// Render as an indented derivation, root first (the Figure 11 tree,
    /// flattened).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("[{}] {}\n", self.rule, self.sequent));
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    /// Iterate over every rule name used in the tree.
    pub fn rules_used(&self) -> Vec<RuleName> {
        let mut out = vec![self.rule];
        for c in &self.children {
            out.extend(c.rules_used());
        }
        out
    }
}

/// Build a proof tree for the *first* answer of `goal` under the engine's
/// user context; `Ok(None)` if the goal has no proof.
pub fn prove(engine: &MultiLogEngine, goal: &Goal) -> Result<Option<ProofNode>> {
    let answers = engine.solve(goal)?;
    let Some(first) = answers.first() else {
        return Ok(None);
    };
    // Ground the goal with the first answer.
    let ground: Vec<Atom> = goal.iter().map(|a| substitute(a, first)).collect();
    let ctx = Ctx { engine };
    let children: Vec<ProofNode> = ground
        .iter()
        .map(|a| ctx.prove_atom(a))
        .collect::<Result<_>>()?;
    if ground.len() == 1 {
        return Ok(Some(children.into_iter().next().expect("one child")));
    }
    Ok(Some(ProofNode {
        sequent: ctx.sequent(&render_goal(&ground)),
        rule: RuleName::And,
        children,
    }))
}

/// Parse and prove a textual goal.
pub fn prove_text(engine: &MultiLogEngine, goal: &str) -> Result<Option<ProofNode>> {
    prove(engine, &crate::parser::parse_goal(goal)?)
}

struct Ctx<'e> {
    engine: &'e MultiLogEngine,
}

impl Ctx<'_> {
    fn sequent(&self, goal: &str) -> String {
        format!(
            "⟨Δ, {}⟩ ⊢ {}",
            self.engine.lattice().name(self.engine.user_level()),
            goal
        )
    }

    fn prove_atom(&self, atom: &Atom) -> Result<ProofNode> {
        match atom {
            Atom::M(m) => {
                // Find the fact.
                let lat = self.engine.lattice();
                let fact = self.engine.mfacts().iter().enumerate().find(|(_, f)| {
                    f.pred == m.pred
                        && f.attr == m.attr
                        && Term::sym(lat.name(f.level)) == m.level
                        && Term::sym(lat.name(f.class)) == m.class
                        && f.key == m.key
                        && f.value == m.value
                });
                match fact {
                    Some((idx, _)) => self.prove_mfact(idx),
                    None => {
                        // Provable only via FILTER (σ inheritance).
                        self.prove_via_filter(m)
                    }
                }
            }
            Atom::B(m, mode) => self.prove_batom(m, mode),
            Atom::P(p) => {
                let fact = crate::engine::PFact {
                    pred: p.pred.clone(),
                    args: p.args.clone(),
                };
                let idx = self.engine.p_fact_index(&fact).ok_or_else(|| {
                    MultiLogError::NotAdmissible {
                        detail: format!("no derivation recorded for `{p}`"),
                    }
                })?;
                self.prove_pfact(idx)
            }
            Atom::L(t) => Ok(ProofNode {
                sequent: self.sequent(&format!("level({t})")),
                rule: RuleName::DeductionG,
                children: vec![ProofNode::leaf(self.sequent("□"))],
            }),
            Atom::H(l, h) => Ok(ProofNode {
                sequent: self.sequent(&format!("order({l}, {h})")),
                rule: RuleName::Order,
                children: vec![ProofNode::leaf(self.sequent("□"))],
            }),
            Atom::Leq(l, h) => {
                let lat = self.engine.lattice();
                let (Some(ll), Some(hl)) = (l.as_label(lat), h.as_label(lat)) else {
                    return Err(MultiLogError::NotAdmissible {
                        detail: format!("cannot prove non-ground `{l} leq {h}`"),
                    });
                };
                Ok(self.prove_leq(ll, hl))
            }
        }
    }

    fn prove_mfact(&self, idx: usize) -> Result<ProofNode> {
        let lat = self.engine.lattice();
        let fact = &self.engine.mfacts()[idx];
        let just = self.engine.m_justification(idx);
        // DEDUCTION-G': body proof + the no-read-up side condition l ⪯ u.
        let mut children = vec![self.prove_leq(fact.level, self.engine.user_level())];
        children.extend(self.prove_just_body(&just.body)?);
        Ok(ProofNode {
            sequent: self.sequent(&fact.render(lat)),
            rule: RuleName::DeductionGPrime,
            children,
        })
    }

    fn prove_pfact(&self, idx: usize) -> Result<ProofNode> {
        let fact = &self.engine.pfacts()[idx];
        let just = self.engine.p_justification(idx);
        let children = self.prove_just_body(&just.body)?;
        let rendered = crate::ast::PAtom {
            pred: fact.pred.clone(),
            args: fact.args.clone(),
        }
        .to_string();
        Ok(ProofNode {
            sequent: self.sequent(&rendered),
            rule: RuleName::DeductionG,
            children,
        })
    }

    fn prove_just_body(&self, body: &[JustAtom]) -> Result<Vec<ProofNode>> {
        if body.is_empty() {
            return Ok(vec![ProofNode::leaf(self.sequent("□"))]);
        }
        body.iter()
            .map(|ja| match ja {
                JustAtom::M(i) => self.prove_mfact(*i),
                JustAtom::P(i) => self.prove_pfact(*i),
                JustAtom::Bel { fact, at, mode } => self.prove_bel(*fact, *at, mode),
                JustAtom::Leq(l, h) => Ok(self.prove_leq(*l, *h)),
                JustAtom::L(l) => Ok(ProofNode {
                    sequent: self.sequent(&format!("level({})", self.engine.lattice().name(*l))),
                    rule: RuleName::DeductionG,
                    children: vec![ProofNode::leaf(self.sequent("□"))],
                }),
                JustAtom::H(l, h) => Ok(ProofNode {
                    sequent: self.sequent(&format!(
                        "order({}, {})",
                        self.engine.lattice().name(*l),
                        self.engine.lattice().name(*h)
                    )),
                    rule: RuleName::Order,
                    children: vec![ProofNode::leaf(self.sequent("□"))],
                }),
            })
            .collect()
    }

    fn prove_batom(&self, m: &crate::ast::MAtom, mode: &str) -> Result<ProofNode> {
        let lat = self.engine.lattice();
        let at = m
            .level
            .as_label(lat)
            .ok_or_else(|| MultiLogError::NotAdmissible {
                detail: format!("cannot prove b-atom with non-ground level `{}`", m.level),
            })?;
        // Locate the supporting fact.
        let support = self.engine.mfacts().iter().enumerate().find(|(_, f)| {
            f.pred == m.pred
                && f.attr == m.attr
                && Term::sym(lat.name(f.class)) == m.class
                && f.key == m.key
                && f.value == m.value
                && match Mode::parse(mode) {
                    Some(md) => believed(lat, self.engine.mfacts(), f, at, md),
                    None => true,
                }
        });
        let Some((idx, _)) = support else {
            return Err(MultiLogError::NotAdmissible {
                detail: format!("no belief support recorded for `{m} << {mode}`"),
            });
        };
        // BELIEF wraps the ⊢^m step, carrying the at ⪯ u guard.
        let inner = self.prove_bel(idx, at, mode)?;
        Ok(ProofNode {
            sequent: self.sequent(&format!("{m} << {mode}")),
            rule: RuleName::Belief,
            children: vec![self.prove_leq(at, self.engine.user_level()), inner],
        })
    }

    fn prove_bel(&self, fact_idx: usize, at: Label, mode: &str) -> Result<ProofNode> {
        let lat = self.engine.lattice();
        let fact = &self.engine.mfacts()[fact_idx];
        let sequent = self.sequent(&format!(
            "{}[{}({} : {} -{}-> {})] << {}",
            lat.name(at),
            fact.pred,
            fact.key,
            fact.attr,
            lat.name(fact.class),
            fact.value,
            mode
        ));
        let rule = match Mode::parse(mode) {
            Some(Mode::Fir) => RuleName::DeductionB,
            Some(Mode::Opt) => RuleName::DescendO,
            Some(Mode::Cau) => self.cautious_case(fact, at),
            None => RuleName::UserBelief,
        };
        // Assumptions: the descent condition R ⪯ at plus the m-fact proof.
        let mut children = Vec::new();
        if fact.level != at {
            children.push(self.prove_leq(fact.level, at));
        }
        children.push(self.prove_mfact(fact_idx)?);
        Ok(ProofNode {
            sequent,
            rule,
            children,
        })
    }

    /// Which of the four cautious descent rules applies (Figure 9).
    fn cautious_case(&self, fact: &MFact, at: Label) -> RuleName {
        let lat = self.engine.lattice();
        let peers: Vec<&MFact> = self
            .engine
            .mfacts()
            .iter()
            .filter(|w| {
                w.pred == fact.pred
                    && w.key == fact.key
                    && w.attr == fact.attr
                    && lat.leq(w.level, at)
            })
            .collect();
        let own = fact.level == at;
        let has_local = peers.iter().any(|w| w.level == at);
        let overrides_lower = peers
            .iter()
            .any(|w| w.level != fact.level && lat.lt(w.class, fact.class));
        match (own, has_local, overrides_lower) {
            // C1: believing one's own assertion with no lower challenger.
            (true, _, false) => RuleName::DescendC1,
            // C4: own assertion kept over lower ones it dominates.
            (true, _, true) => RuleName::DescendC4,
            // C2: pure inheritance — nothing asserted locally.
            (false, false, _) => RuleName::DescendC2,
            // C3: a lower assertion overriding the local one.
            (false, true, _) => RuleName::DescendC3,
        }
    }

    fn prove_via_filter(&self, m: &crate::ast::MAtom) -> Result<ProofNode> {
        if !self.engine.options().enable_filter {
            return Err(MultiLogError::NotAdmissible {
                detail: format!("no derivation recorded for `{m}`"),
            });
        }
        let lat = self.engine.lattice();
        let goal_level = m.level.as_label(lat);
        let source = self.engine.mfacts().iter().enumerate().find(|(_, f)| {
            f.pred == m.pred
                && f.attr == m.attr
                && f.key == m.key
                && goal_level.is_some_and(|gl| {
                    lat.lt(gl, f.level)
                        && ((m.value == f.value && lat.leq(f.class, gl))
                            || (m.value == Term::Null && !lat.leq(f.class, gl)))
                })
        });
        let Some((idx, fact)) = source else {
            return Err(MultiLogError::NotAdmissible {
                detail: format!("no σ source for `{m}`"),
            });
        };
        let gl = goal_level.expect("checked above");
        Ok(ProofNode {
            sequent: self.sequent(&m.to_string()),
            rule: RuleName::Filter,
            children: vec![self.prove_leq(gl, fact.level), self.prove_mfact(idx)?],
        })
    }

    /// Prove `lo ⪯ hi` as a REFLEXIVITY / ORDER / TRANSITIVITY chain.
    fn prove_leq(&self, lo: Label, hi: Label) -> ProofNode {
        let lat = self.engine.lattice();
        let sequent = self.sequent(&format!("{} ⪯ {}", lat.name(lo), lat.name(hi)));
        if lo == hi {
            return ProofNode {
                sequent,
                rule: RuleName::Reflexivity,
                children: vec![ProofNode::leaf(self.sequent("□"))],
            };
        }
        // Find a cover path lo → hi (exists because lo ≺ hi).
        let path = self.cover_path(lo, hi);
        if path.len() == 2 {
            return ProofNode {
                sequent,
                rule: RuleName::Order,
                children: vec![ProofNode::leaf(self.sequent("□"))],
            };
        }
        // TRANSITIVITY: first edge + the rest.
        let mid = path[1];
        ProofNode {
            sequent,
            rule: RuleName::Transitivity,
            children: vec![
                ProofNode {
                    sequent: self.sequent(&format!("{} ⪯ {}", lat.name(lo), lat.name(mid))),
                    rule: RuleName::Order,
                    children: vec![ProofNode::leaf(self.sequent("□"))],
                },
                self.prove_leq(mid, hi),
            ],
        }
    }

    /// A cover-edge path from `lo` to `hi` (BFS).
    fn cover_path(&self, lo: Label, hi: Label) -> Vec<Label> {
        let lat = self.engine.lattice();
        let mut queue = std::collections::VecDeque::from([vec![lo]]);
        while let Some(path) = queue.pop_front() {
            let last = *path.last().expect("non-empty path");
            if last == hi {
                return path;
            }
            for &(a, b) in lat.covers() {
                if a == last && lat.leq(b, hi) {
                    let mut next = path.clone();
                    next.push(b);
                    queue.push_back(next);
                }
            }
        }
        vec![lo, hi] // fallback: treat as a direct edge
    }
}

trait TermLabelExt {
    fn as_label(&self, lat: &multilog_lattice::SecurityLattice) -> Option<Label>;
}

impl TermLabelExt for Term {
    fn as_label(&self, lat: &multilog_lattice::SecurityLattice) -> Option<Label> {
        match self {
            Term::Sym(s) => lat.label(s),
            _ => None,
        }
    }
}

fn substitute(atom: &Atom, answer: &crate::engine::Answer) -> Atom {
    let sub = |t: &Term| -> Term {
        match t {
            Term::Var(v) => answer.get(v.as_ref()).cloned().unwrap_or_else(|| t.clone()),
            other => other.clone(),
        }
    };
    match atom {
        Atom::M(m) => Atom::M(crate::ast::MAtom {
            level: sub(&m.level),
            pred: m.pred.clone(),
            key: sub(&m.key),
            attr: m.attr.clone(),
            class: sub(&m.class),
            value: sub(&m.value),
        }),
        Atom::B(m, mode) => {
            let Atom::M(m2) = substitute(&Atom::M(m.clone()), answer) else {
                unreachable!("substitute(M) yields M");
            };
            Atom::B(m2, mode.clone())
        }
        Atom::P(p) => Atom::P(crate::ast::PAtom {
            pred: p.pred.clone(),
            args: p.args.iter().map(&sub).collect(),
        }),
        Atom::L(t) => Atom::L(sub(t)),
        Atom::H(l, h) => Atom::H(sub(l), sub(h)),
        Atom::Leq(l, h) => Atom::Leq(sub(l), sub(h)),
    }
}

fn render_goal(goal: &[Atom]) -> String {
    goal.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;
    use crate::MultiLogEngine;

    const D1: &str = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[p(k : a -u-> v)].
        c[p(k : a -c-> t)] <- q(j).
        s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.
        q(j).
    "#;

    fn engine(user: &str) -> MultiLogEngine {
        MultiLogEngine::new(&parse_database(D1).unwrap(), user).unwrap()
    }

    #[test]
    fn figure11_proof_tree() {
        // ⟨D1, c⟩ ⊢ c[p(k : a -u-> v)] << opt — the Figure 11 derivation.
        let e = engine("c");
        let tree = prove_text(&e, "c[p(k : a -u-> v)] << opt")
            .unwrap()
            .expect("provable");
        let rules = tree.rules_used();
        assert!(rules.contains(&RuleName::Belief));
        assert!(rules.contains(&RuleName::DescendO), "{}", tree.render());
        assert!(rules.contains(&RuleName::DeductionGPrime));
        assert!(rules.contains(&RuleName::Empty));
        // Figure 11's descent binds R/u: the u ⪯ c step must appear.
        assert!(tree.render().contains("u ⪯ c"), "{}", tree.render());
        assert!(tree.height() >= 3);
        assert!(tree.size() >= 5);
    }

    #[test]
    fn unprovable_goal_yields_none() {
        let e = engine("u");
        assert!(prove_text(&e, "c[p(k : a -c-> t)]").unwrap().is_none());
    }

    #[test]
    fn conjunction_uses_and() {
        let e = engine("s");
        let tree = prove_text(&e, "q(j), u leq s").unwrap().expect("provable");
        assert_eq!(tree.rule, RuleName::And);
        assert_eq!(tree.children.len(), 2);
    }

    #[test]
    fn transitivity_chain_for_leq() {
        let e = engine("s");
        let tree = prove_text(&e, "u leq s").unwrap().expect("provable");
        let rules = tree.rules_used();
        assert!(rules.contains(&RuleName::Transitivity), "{}", tree.render());
        assert!(rules.contains(&RuleName::Order));
    }

    #[test]
    fn reflexivity_for_same_level() {
        let e = engine("s");
        let tree = prove_text(&e, "s leq s").unwrap().expect("provable");
        assert_eq!(tree.rule, RuleName::Reflexivity);
    }

    #[test]
    fn cautious_proof_uses_descend_c() {
        let e = engine("s");
        let tree = prove_text(&e, "c[p(k : a -c-> t)] << cau")
            .unwrap()
            .expect("provable");
        let rules = tree.rules_used();
        assert!(
            rules.iter().any(|r| matches!(
                r,
                RuleName::DescendC1
                    | RuleName::DescendC2
                    | RuleName::DescendC3
                    | RuleName::DescendC4
            )),
            "{}",
            tree.render()
        );
    }

    #[test]
    fn rule_clause_chain_reaches_p_facts() {
        // The s-level fact depends on the cau belief which depends on the
        // c rule which depends on q(j).
        let e = engine("s");
        let tree = prove_text(&e, "s[p(k : a -u-> v)]")
            .unwrap()
            .expect("provable");
        assert!(tree.render().contains("q(j)"), "{}", tree.render());
        assert!(tree.rules_used().contains(&RuleName::DeductionG));
    }

    #[test]
    fn firm_belief_uses_deduction_b() {
        let e = engine("c");
        let tree = prove_text(&e, "c[p(k : a -c-> t)] << fir")
            .unwrap()
            .expect("provable");
        assert!(tree.rules_used().contains(&RuleName::DeductionB));
    }

    #[test]
    fn render_shape() {
        let e = engine("c");
        let tree = prove_text(&e, "q(j)").unwrap().expect("provable");
        let shown = tree.render();
        assert!(shown.starts_with("[DEDUCTION-G] ⟨Δ, c⟩ ⊢ q(j)"));
        assert!(shown.contains("[EMPTY]"));
    }
}
