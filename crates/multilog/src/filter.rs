//! The FILTER / FILTER-NULL extension of Figure 13: downward inheritance
//! of higher-level tuple parts (the Jajodia–Sandhu filter function σ).
//!
//! MultiLog deliberately omits σ (§7): it is the mechanism that creates
//! *surprise stories*. Figure 13 shows how to add it back as two extra
//! proof rules:
//!
//! * **FILTER** — a lower level `l` inherits the columns of a higher
//!   tuple whose classification is dominated by `l`;
//! * **FILTER-NULL** — the remaining columns surface as `⊥` classified at
//!   `l`.
//!
//! The rules are implemented inside the engine's m-atom matcher and
//! switched on via [`crate::engine::EngineOptions`]; this module hosts the
//! documentation, convenience constructors, and the tests that
//! demonstrate the paper's argument — with the filter on, the failing
//! queries of §7 start succeeding, and the surprise stories reappear.

use crate::db::MultiLogDb;
use crate::engine::{EngineOptions, MultiLogEngine};
use crate::Result;

/// Build an engine with FILTER enabled (but not FILTER-NULL).
pub fn engine_with_filter(db: &MultiLogDb, user: &str) -> Result<MultiLogEngine> {
    MultiLogEngine::with_options(
        db,
        user,
        EngineOptions {
            enable_filter: true,
            enable_filter_null: false,
            ..EngineOptions::default()
        },
    )
}

/// Build an engine with both FILTER and FILTER-NULL enabled — the full σ
/// semantics, surprise stories included.
pub fn engine_with_sigma(db: &MultiLogDb, user: &str) -> Result<MultiLogEngine> {
    MultiLogEngine::with_options(
        db,
        user,
        EngineOptions {
            enable_filter: true,
            enable_filter_null: true,
            ..EngineOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;
    use crate::MultiLogEngine;

    /// The Phantom situation of §7: the S tuple carries a U-classified
    /// key while objective/destination are S-classified.
    const PHANTOM: &str = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        s[mission(phantom : starship -u-> phantom)].
        s[mission(phantom : objective -s-> spying)].
        s[mission(phantom : destination -u-> omega)].
    "#;

    #[test]
    fn section7_queries_fail_without_filter() {
        // "All these queries fail as the atomic conjunctions fail due to
        // non-availability of objective and/or destination information."
        let db = parse_database(PHANTOM).unwrap();
        let e = MultiLogEngine::new(&db, "c").unwrap();
        let q = "c[mission(phantom : starship -C1-> phantom; objective -C2-> X; \
                 destination -C3-> Y)]";
        assert!(e.solve_text(q).unwrap().is_empty());
        let q_cau = format!("{q} << cau");
        assert!(e.solve_text(&q_cau).unwrap().is_empty());
    }

    #[test]
    fn filter_inherits_visible_columns() {
        let db = parse_database(PHANTOM).unwrap();
        let e = engine_with_filter(&db, "c").unwrap();
        // The U-classified columns flow down to c (and u).
        assert_eq!(
            e.solve_text("c[mission(phantom : starship -u-> phantom)]")
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            e.solve_text("u[mission(phantom : destination -u-> omega)]")
                .unwrap()
                .len(),
            1
        );
        // The S-classified objective still does not flow.
        assert!(e
            .solve_text("c[mission(phantom : objective -s-> spying)]")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn filter_null_surfaces_surprise_story() {
        let db = parse_database(PHANTOM).unwrap();
        let e = engine_with_sigma(&db, "c").unwrap();
        // The §7 molecular query now succeeds, with ⊥ for the objective —
        // the surprise story made explicit.
        let ans = e
            .solve_text(
                "c[mission(phantom : starship -u-> phantom; objective -c-> null; \
                 destination -u-> omega)]",
            )
            .unwrap();
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn filter_respects_user_clearance() {
        let db = parse_database(PHANTOM).unwrap();
        let e = engine_with_sigma(&db, "u").unwrap();
        // Even with σ on, a u user cannot pose goals above u.
        assert!(e
            .solve_text("c[mission(phantom : starship -u-> phantom)]")
            .unwrap()
            .is_empty());
        // But sees the down-filtered u columns.
        assert_eq!(
            e.solve_text("u[mission(phantom : starship -u-> phantom)]")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn filter_off_is_the_default() {
        let db = parse_database(PHANTOM).unwrap();
        let e = MultiLogEngine::new(&db, "s").unwrap();
        assert!(e
            .solve_text("u[mission(phantom : starship -u-> phantom)]")
            .unwrap()
            .is_empty());
    }
}
