//! Atom-granularity belief: the β function of Definition 3.1 lifted to
//! m-facts, as encoded by the proof rules DESCEND-O/C1–C4 (Figure 9) and
//! the axioms a₄–a₉ of the inference engine (Figure 12).

use std::fmt;
use std::sync::Arc;

use multilog_lattice::{Label, SecurityLattice};

use crate::ast::Term;

/// A ground m-fact: `level[pred(key : attr -class-> value)]`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MFact {
    /// The predicate name.
    pub pred: Arc<str>,
    /// The ground key.
    pub key: Term,
    /// The attribute name.
    pub attr: Arc<str>,
    /// The value's classification.
    pub class: Label,
    /// The ground value.
    pub value: Term,
    /// The level the fact is asserted at (the m-atom's `s`).
    pub level: Label,
}

impl MFact {
    /// Render against a lattice (the concrete MultiLog syntax).
    pub fn render(&self, lat: &SecurityLattice) -> String {
        format!(
            "{}[{}({} : {} -{}-> {})]",
            lat.name(self.level),
            self.pred,
            self.key,
            self.attr,
            lat.name(self.class),
            self.value
        )
    }
}

impl fmt::Debug for MFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}({} : {} -{}-> {})]",
            self.level.index(),
            self.pred,
            self.key,
            self.attr,
            self.class.index(),
            self.value
        )
    }
}

/// The built-in belief modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// `fir` — believe own-level assertions only.
    Fir,
    /// `opt` — believe everything visible.
    Opt,
    /// `cau` — believe the visible values whose column classification is
    /// maximal.
    Cau,
}

impl Mode {
    /// Parse the paper's shorthand.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "fir" => Some(Mode::Fir),
            "opt" => Some(Mode::Opt),
            "cau" => Some(Mode::Cau),
            _ => None,
        }
    }

    /// The shorthand name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Fir => "fir",
            Mode::Opt => "opt",
            Mode::Cau => "cau",
        }
    }
}

/// Whether an agent at `at` believes `(fact.value, fact.class)` for
/// `(pred, key, attr)` in the given mode, judged against the full set of
/// m-facts `facts`.
///
/// * `fir`: `fact.level == at`.
/// * `opt`: `fact.level ⪯ at`.
/// * `cau`: `fact.level ⪯ at` and no visible fact for the same
///   `(pred, key, attr)` has a column classification strictly dominating
///   `fact.class` (Def 3.1: no w with `v.class` strictly below `w.class`).
pub fn believed(
    lat: &SecurityLattice,
    facts: &[MFact],
    fact: &MFact,
    at: Label,
    mode: Mode,
) -> bool {
    match mode {
        Mode::Fir => fact.level == at,
        Mode::Opt => lat.leq(fact.level, at),
        Mode::Cau => {
            if !lat.leq(fact.level, at) {
                return false;
            }
            !facts.iter().any(|w| {
                w.pred == fact.pred
                    && w.key == fact.key
                    && w.attr == fact.attr
                    && lat.leq(w.level, at)
                    && lat.lt(fact.class, w.class)
            })
        }
    }
}

/// All beliefs at level `at` in `mode`: `(fact, at)` pairs rendered as the
/// believed m-facts. The believed fact keeps its *source* classification
/// and original level — the b-atom `at[p(k : a -c-> v)] << m` refers to
/// the value and class, while the belief level is `at`.
pub fn beliefs_at(lat: &SecurityLattice, facts: &[MFact], at: Label, mode: Mode) -> Vec<MFact> {
    facts
        .iter()
        .filter(|f| believed(lat, facts, f, at, mode))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multilog_lattice::standard;

    fn fact(pred: &str, key: &str, attr: &str, class: Label, value: &str, level: Label) -> MFact {
        MFact {
            pred: Arc::from(pred),
            key: Term::sym(key),
            attr: Arc::from(attr),
            class,
            value: Term::sym(value),
            level,
        }
    }

    fn setup() -> (SecurityLattice, Vec<MFact>) {
        let lat = standard::mission_levels();
        let u = lat.label("U").unwrap();
        let c = lat.label("C").unwrap();
        let s = lat.label("S").unwrap();
        // Mirrors D1's p(k): value v classified u at level u, value t
        // classified c at level c.
        let facts = vec![
            fact("p", "k", "a", u, "v", u),
            fact("p", "k", "a", c, "t", c),
            fact("q", "k2", "b", s, "w", s),
        ];
        (lat, facts)
    }

    #[test]
    fn firm_is_own_level() {
        let (lat, facts) = setup();
        let u = lat.label("U").unwrap();
        let c = lat.label("C").unwrap();
        assert!(believed(&lat, &facts, &facts[0], u, Mode::Fir));
        assert!(!believed(&lat, &facts, &facts[0], c, Mode::Fir));
        assert!(believed(&lat, &facts, &facts[1], c, Mode::Fir));
    }

    #[test]
    fn optimistic_accumulates_upward() {
        let (lat, facts) = setup();
        let c = lat.label("C").unwrap();
        let s = lat.label("S").unwrap();
        assert!(believed(&lat, &facts, &facts[0], c, Mode::Opt));
        assert!(believed(&lat, &facts, &facts[0], s, Mode::Opt));
        assert!(!believed(&lat, &facts, &facts[2], c, Mode::Opt));
    }

    #[test]
    fn cautious_prefers_higher_classification() {
        let (lat, facts) = setup();
        let c = lat.label("C").unwrap();
        // At c: the c-classified `t` overrides the u-classified `v`.
        assert!(!believed(&lat, &facts, &facts[0], c, Mode::Cau));
        assert!(believed(&lat, &facts, &facts[1], c, Mode::Cau));
        // At u: only the u fact is visible — believed.
        let u = lat.label("U").unwrap();
        assert!(believed(&lat, &facts, &facts[0], u, Mode::Cau));
    }

    #[test]
    fn cautious_with_incomparable_classes_believes_both() {
        let lat = standard::diamond("bot", "l", "r", "top");
        let (bot, l, r, top) = (
            lat.label("bot").unwrap(),
            lat.label("l").unwrap(),
            lat.label("r").unwrap(),
            lat.label("top").unwrap(),
        );
        let facts = vec![
            fact("p", "k", "a", l, "x", l),
            fact("p", "k", "a", r, "y", r),
            fact("p", "k", "a", bot, "z", bot),
        ];
        assert!(believed(&lat, &facts, &facts[0], top, Mode::Cau));
        assert!(believed(&lat, &facts, &facts[1], top, Mode::Cau));
        assert!(!believed(&lat, &facts, &facts[2], top, Mode::Cau));
        assert_eq!(beliefs_at(&lat, &facts, top, Mode::Cau).len(), 2);
    }

    #[test]
    fn beliefs_at_counts() {
        let (lat, facts) = setup();
        let s = lat.label("S").unwrap();
        assert_eq!(beliefs_at(&lat, &facts, s, Mode::Opt).len(), 3);
        assert_eq!(beliefs_at(&lat, &facts, s, Mode::Fir).len(), 1);
        // cau at S: for p(k,a) the c-classified t wins; q fact maximal.
        assert_eq!(beliefs_at(&lat, &facts, s, Mode::Cau).len(), 2);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse("cau"), Some(Mode::Cau));
        assert_eq!(Mode::parse("nope"), None);
        assert_eq!(Mode::Opt.name(), "opt");
    }

    #[test]
    fn render_matches_syntax() {
        let (lat, facts) = setup();
        assert_eq!(facts[0].render(&lat), "U[p(k : a -U-> v)]");
    }
}
