//! The reduction semantics of §6: the translation τ from MultiLog to
//! Datalog plus the inference-engine axiom set **A** of Figure 12,
//! executed on the `multilog-datalog` engine (our CORAL substitute).
//!
//! ## Encoding (§6.1)
//!
//! * `τ(l[p(k : a -c-> v)]) = rel(p, k, a, v, c, l)`
//! * `τ(l[p(k : a -c-> v)] << m) = bel(p, k, a, v, c, l, m)`
//! * p-, l-, h-atoms translate to themselves; `⪯` becomes `dominate/2`.
//! * `τ(λ(B, u))` guards every body/query m- and b-atom with
//!   `dominate(l, u)` and `dominate(c, u)` — the Bell–LaPadula *no read
//!   up* conditions, baked in at compile time because the reduced program
//!   cannot enforce per-user views (§6.2).
//!
//! ## Making Figure 12 executable
//!
//! The paper prints the axioms a₁–a₉ ([`paper_axioms`]) and asserts they
//! are stratified. As written they are not: `rel` depends on `bel`
//! whenever a rule body consults a belief, and the cautious axioms make
//! `bel` depend *negatively* on `rel` — a negative cycle for any
//! syntactic stratifier (and a₆/a₉ additionally use unsafe negation).
//! We therefore emit a semantically equivalent *specialized* axiom set:
//!
//! * `bel` is split per mode (`bel_fir`, `bel_opt`, `bel_cau`), so rules
//!   consuming only monotone modes never touch the negation;
//! * when a rule body does consult `<< cau`, `rel` is additionally split
//!   per level (`rel_u`, `rel_c`, …) and the cautious predicates are
//!   generated per level against the *statically known* dominance
//!   relation — the level stratification of the operational engine,
//!   reflected syntactically. This requires ground levels on body m-atoms
//!   (checked; the operational engine has the same restriction for
//!   cautious programs);
//! * the unsafe negations of a₆–a₉ become safe auxiliary predicates
//!   (`visible`, `beaten`): a value is cautiously believed iff it is
//!   visible and no visible value for the same column strictly dominates
//!   its classification — exactly β (Definition 3.1).
//!
//! Theorem 6.1 (equivalence with the operational semantics) is exercised
//! by `tests/equivalence.rs` at the workspace root.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use multilog_datalog as dl;
use multilog_lattice::SecurityLattice;

use crate::ast::{Atom, Clause, Goal, Head, MAtom, Term};
use crate::belief::Mode;
use crate::db::MultiLogDb;
use crate::engine::{Answer, EngineOptions};
use crate::{MultiLogError, Result};

/// The verbatim inference engine of Figure 12 (axioms a₁–a₉), as printed
/// in the paper. This is the *reproduced artifact*; [`ReducedEngine`]
/// executes the safe specialization described in the module docs.
pub fn paper_axioms() -> &'static str {
    "\
a1: dominate(X, Y) <- order(X, Y).
a2: dominate(X, X) <- level(X).
a3: dominate(X, Y) <- order(X, Z), dominate(Z, Y).
a4: bel(P, K, A, V, C, H, fir) <- rel(P, K, A, V, C, H).
a5: bel(P, K, A, V, C, H, opt) <- rel(P, K, A, V, C, L), dominate(L, H).
a6: bel(P, K, A, V, C, H, cau) <- rel(P, K, A, V, C, H), ~order(L, H).
a7: bel(P, K, A, V, C, H, cau) <- order(L, H), ~rel(P, K, A, V', C', H), bel(P, K, A, V, C, L, cau).
a8: bel(P, K, A, V, C, H, cau) <- rel(P, K, A, V', C', H), rel(P, K, A, V, C, L), dominate(L, H), dominate(C', C).
a9: bel(P, K, A, V, C, H, cau) <- rel(P, K, A, V, C, H), ~rel(P, K, A, V', C', L), dominate(L, H), dominate(C, C')."
}

/// One extensional update to a reduced database: assert or retract a
/// ground m-atom (one classified cell).
///
/// Applied in batches by [`ReducedEngine::apply_updates`], which drives
/// the Datalog back-end's incremental maintenance instead of
/// re-translating and re-evaluating the whole database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EdbUpdate {
    /// Assert the m-atom as a new extensional fact.
    Assert(MAtom),
    /// Retract a previously asserted m-atom. Retracting a cell that was
    /// only ever *derived* (by a Σ rule body) is a no-op: derived beliefs
    /// cannot be deleted out from under their justification.
    Retract(MAtom),
}

/// A MultiLog database reduced to Datalog and evaluated to fixpoint.
///
/// The fixpoint is held by an incremental Datalog engine, so extensional
/// updates ([`ReducedEngine::apply_updates`]) maintain the materialized
/// belief relations by delta propagation rather than recomputation —
/// belief queries stay warm across updates.
pub struct ReducedEngine {
    lattice: Arc<SecurityLattice>,
    user: String,
    incremental: dl::IncrementalEngine,
    /// Whether `rel` was split per level (cautious bodies present).
    level_split: bool,
    program_text: String,
    /// Guard configuration, replayed onto demand-driven goal runs.
    fact_limit: usize,
    deadline: Option<std::time::Duration>,
    cancel: Option<dl::CancelToken>,
    /// Lattice-flow demand pruning ([`EngineOptions::flow_prune`]).
    prune: Option<FlowPrune>,
}

/// Demand-pruning state: the static flow analysis of the source
/// database plus each Σ/Π clause paired with its τ image, so prunable
/// rules can be dropped from the demand program by structural equality
/// (spans are not identity, see [`crate::ast::Span`]).
///
/// Only the *demand* path prunes; the incremental materialized fixpoint
/// always evaluates the full program, so `solve`/`apply_updates` are
/// untouched and pruning can never change a committed answer.
struct FlowPrune {
    report: crate::flow::FlowReport,
    /// `(source clause, translated clause)` for every Σ/Π rule.
    rules: Vec<(Clause, dl::Clause)>,
    /// Per-level cautious machinery (`visible_h`, `beaten_h`,
    /// `bel_cau_h`) for levels `h` not dominated by the clearance —
    /// nothing at or below the clearance ever reads them, and they are
    /// never update targets (updates land in `rel_*`), so dropping them
    /// is sound independent of updates.
    machinery: HashSet<String>,
    /// Set once any update transaction has been opened: achieved label
    /// sets may have widened beyond the static bounds, so only the
    /// ground-label (update-independent) criteria remain usable.
    tainted: bool,
}

impl std::fmt::Debug for ReducedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReducedEngine")
            .field("user", &self.user)
            .field("level_split", &self.level_split)
            .field("facts", &self.incremental.database().fact_count())
            .finish_non_exhaustive()
    }
}

impl ReducedEngine {
    /// Translate and evaluate `db` at the clearance level named `user`.
    pub fn new(db: &MultiLogDb, user: &str) -> Result<Self> {
        Self::with_options(db, user, EngineOptions::default())
    }

    /// Like [`ReducedEngine::new`], but evaluating the reduced program
    /// under the same guards the operational engine honors: the fact
    /// budget, wall-clock deadline, and cancellation token of `options`.
    /// Guard trips lift back as the MultiLog-level typed errors.
    pub fn with_options(db: &MultiLogDb, user: &str, options: EngineOptions) -> Result<Self> {
        let mut engine = Self::with_options_deferred(db, user, options)?;
        // The initial materialization runs under the configured guards;
        // trips convert through `From<DatalogError>` so callers see the
        // same `BudgetExceeded`/`DeadlineExceeded`/`Cancelled` variants
        // as the operational engine.
        engine.incremental.recover()?;
        Ok(engine)
    }

    /// Like [`ReducedEngine::with_options`], but *without* materializing
    /// the reduced fixpoint. The back-end starts poisoned and the
    /// database empty, so [`ReducedEngine::solve`]/
    /// [`ReducedEngine::solve_text`] (which read the materialization)
    /// return no answers and [`ReducedEngine::apply_updates`] is
    /// unusable until [`ReducedEngine::rematerialize`] runs. Demand-driven
    /// point queries ([`ReducedEngine::solve_demand`]) work immediately:
    /// they evaluate goal-directed against the translated program and
    /// never need the full fixpoint — the cheap entry point for serving a
    /// few point queries without paying for a materialization.
    pub fn with_options_deferred(
        db: &MultiLogDb,
        user: &str,
        options: EngineOptions,
    ) -> Result<Self> {
        // Match the operational engine's Prop 6.1 fallback.
        let lattice = if db.lambda().is_empty() && db.sigma().is_empty() {
            Arc::new(
                multilog_lattice::LatticeBuilder::new()
                    .level(user)
                    .build()
                    .map_err(MultiLogError::Lattice)?,
            )
        } else {
            db.lattice()?
        };
        if lattice.label(user).is_none() {
            return Err(MultiLogError::NotAdmissible {
                detail: format!("user level `{user}` is not a declared level"),
            });
        }
        let level_split = db
            .sigma()
            .iter()
            .chain(db.pi())
            .flat_map(|c| &c.body)
            .any(|a| matches!(a, Atom::B(_, m) if m.as_ref() == "cau"));
        let program_text = translate(db, user, &lattice, level_split)?;
        let program = dl::parse_program(&program_text).map_err(MultiLogError::Datalog)?;
        // Flow pruning needs a real lattice; the Prop 6.1 fallback has
        // no Σ rules to prune anyway.
        let prune = if options.flow_prune && !(db.lambda().is_empty() && db.sigma().is_empty()) {
            let report = crate::flow::analyze_db(db);
            let mut rules = Vec::new();
            for c in db.sigma().iter().chain(db.pi()) {
                let text = translate_clause(c, user, level_split)?;
                let image = dl::parse_program(&text).map_err(MultiLogError::Datalog)?;
                for t in image.clauses() {
                    rules.push((c.clone(), t.clone()));
                }
            }
            let mut machinery = HashSet::new();
            if level_split {
                if let Some(u) = lattice.label(user) {
                    for h in lattice.labels() {
                        if !lattice.leq(h, u) {
                            let hn = lattice.name(h);
                            machinery.insert(format!("visible_{hn}"));
                            machinery.insert(format!("beaten_{hn}"));
                            machinery.insert(format!("bel_cau_{hn}"));
                        }
                    }
                }
            }
            Some(FlowPrune {
                report,
                rules,
                machinery,
                tainted: false,
            })
        } else {
            None
        };
        let fact_limit = options.limit();
        let mut incremental = dl::IncrementalEngine::new_deferred(&program)
            .map_err(MultiLogError::Datalog)?
            .with_fact_limit(fact_limit);
        if let Some(deadline) = options.deadline {
            incremental = incremental.with_deadline(deadline);
        }
        if let Some(cancel) = &options.cancel {
            incremental = incremental.with_cancel_token(cancel.clone());
        }
        Ok(ReducedEngine {
            lattice,
            user: user.to_owned(),
            incremental,
            level_split,
            program_text,
            fact_limit,
            deadline: options.deadline,
            cancel: options.cancel,
            prune,
        })
    }

    /// Per-rule / per-stratum statistics from evaluating the reduced
    /// program to fixpoint (the most recent full materialization;
    /// incremental commits report through [`dl::CommitStats`] instead).
    pub fn stats(&self) -> &dl::EvalStats {
        self.incremental.materialize_stats()
    }

    /// The generated Datalog program (for inspection and the figures
    /// binary).
    pub fn program_text(&self) -> &str {
        &self.program_text
    }

    /// The evaluated Datalog database.
    pub fn database(&self) -> &dl::Database {
        self.incremental.database()
    }

    /// Apply a batch of extensional updates as one transaction against
    /// the materialized fixpoint. All updates land atomically: either the
    /// whole batch commits and the belief relations are delta-maintained,
    /// or nothing changes.
    ///
    /// Each atom must be ground and its level and classification must be
    /// declared levels of the lattice. Retracting an atom that was never
    /// asserted (or was derived by a rule) is a counted no-op, mirroring
    /// the back-end's semantics.
    ///
    /// # Errors
    ///
    /// [`MultiLogError::NonGroundUpdate`] for an atom with variables;
    /// [`MultiLogError::NotAdmissible`] for an undeclared level or
    /// classification; guard trips poison the back-end, in which case
    /// [`ReducedEngine::rematerialize`] must run before further use.
    pub fn apply_updates(&mut self, updates: &[EdbUpdate]) -> Result<dl::CommitStats> {
        // Validate every atom before touching the transaction, so a bad
        // batch is rejected without opening one.
        let mut encoded: Vec<(bool, String, Vec<dl::Const>)> = Vec::with_capacity(updates.len());
        for update in updates {
            let (m, insert) = match update {
                EdbUpdate::Assert(m) => (m, true),
                EdbUpdate::Retract(m) => (m, false),
            };
            let (pred, fact) = self.encode_update(m)?;
            encoded.push((insert, pred, fact));
        }
        // Any update may widen the achieved label sets beyond the static
        // flow bounds; from here on only ground-label pruning is sound.
        if let Some(p) = self.prune.as_mut() {
            p.tainted = true;
        }
        self.incremental.begin()?;
        for (insert, pred, fact) in encoded {
            let staged = if insert {
                self.incremental.insert(&pred, fact)
            } else {
                self.incremental.retract(&pred, fact)
            };
            if let Err(e) = staged {
                // Arity clash against the translated program: discard the
                // partial batch so the engine stays usable.
                let _ = self.incremental.rollback();
                return Err(e.into());
            }
        }
        Ok(self.incremental.commit()?)
    }

    /// Whether an aborted update (guard trip mid-commit) left the
    /// materialized database inconsistent.
    pub fn is_poisoned(&self) -> bool {
        self.incremental.is_poisoned()
    }

    /// Rebuild the fixpoint from scratch after a poisoning abort; also
    /// usable to force a full recomputation.
    ///
    /// # Errors
    ///
    /// Any evaluation error from the full materialization.
    pub fn rematerialize(&mut self) -> Result<()> {
        Ok(self.incremental.recover()?)
    }

    /// Encode a ground m-atom into its τ image: the target relation name
    /// and the constant tuple, honoring the level split.
    fn encode_update(&self, m: &MAtom) -> Result<(String, Vec<dl::Const>)> {
        if !m.is_ground() {
            return Err(MultiLogError::NonGroundUpdate {
                atom: m.to_string(),
            });
        }
        for (role, t) in [("level", &m.level), ("classification", &m.class)] {
            let Term::Sym(name) = t else {
                return Err(MultiLogError::NotAdmissible {
                    detail: format!("update {role} `{t}` is not a symbolic level"),
                });
            };
            if self.lattice.label(name).is_none() {
                return Err(MultiLogError::NotAdmissible {
                    detail: format!("update {role} `{name}` is not a declared level"),
                });
            }
        }
        let mut fact = vec![
            dl::Const::sym(&m.pred),
            term_const(&m.key),
            dl::Const::sym(&m.attr),
            term_const(&m.value),
            term_const(&m.class),
        ];
        if self.level_split {
            Ok((format!("rel_{}", m.level), fact))
        } else {
            fact.push(term_const(&m.level));
            Ok(("rel".to_owned(), fact))
        }
    }

    /// Solve a MultiLog goal against the reduced database; answers are in
    /// MultiLog terms, sorted, and directly comparable with
    /// [`crate::MultiLogEngine::solve`].
    pub fn solve(&self, goal: &Goal) -> Result<Vec<Answer>> {
        let mut body: Vec<dl::Literal> = Vec::new();
        for atom in goal {
            translate_atom(atom, &self.user, self.level_split, true, &mut body)?;
        }
        let answers =
            dl::run_query(self.incremental.database(), &body).map_err(MultiLogError::Datalog)?;
        Ok(project_answers(goal, &answers))
    }

    /// Parse and solve a textual MultiLog goal.
    pub fn solve_text(&self, goal: &str) -> Result<Vec<Answer>> {
        self.solve(&crate::parser::parse_goal(goal)?)
    }

    /// Solve a MultiLog goal demand-driven: instead of reading the
    /// materialized fixpoint, rewrite the translated program with the
    /// magic-sets transformation seeded from the goal's constants (the
    /// predicate name, key, and the user's clearance level in the
    /// appended `dominate` guards all bind arguments after the τ
    /// encoding) and evaluate only the demanded sub-fixpoint. Answers
    /// equal [`ReducedEngine::solve`]; the win is that for point queries
    /// only a fraction of the belief relations is computed — and no
    /// materialization is required at all (see
    /// [`ReducedEngine::with_options_deferred`]).
    pub fn solve_demand(&self, goal: &Goal) -> Result<Vec<Answer>> {
        Ok(self.solve_demand_with_stats(goal)?.0)
    }

    /// [`ReducedEngine::solve_demand`], also returning the evaluation
    /// counters of the goal-directed run — [`dl::EvalStats::demand`]
    /// records whether the magic rewrite applied and how much it
    /// materialized.
    pub fn solve_demand_with_stats(&self, goal: &Goal) -> Result<(Vec<Answer>, dl::EvalStats)> {
        let mut body: Vec<dl::Literal> = Vec::new();
        for atom in goal {
            translate_atom(atom, &self.user, self.level_split, true, &mut body)?;
        }
        let program = self
            .incremental
            .current_program()
            .map_err(MultiLogError::Datalog)?;
        let (program, pruned_rules) = self.pruned_program(program);
        let mut engine = dl::Engine::new(&program)?.with_fact_limit(self.fact_limit);
        if let Some(d) = self.deadline {
            engine = engine.with_deadline(d);
        }
        if let Some(c) = &self.cancel {
            engine = engine.with_cancel_token(c.clone());
        }
        // Guard trips convert through `From<DatalogError>`, surfacing the
        // same typed errors as a full materialization would.
        let (answers, mut stats) = engine.run_for_goal(&body)?;
        if let Some(d) = stats.demand.as_mut() {
            d.pruned_rules = pruned_rules;
        }
        Ok((project_answers(goal, &answers), stats))
    }

    /// Parse and solve a textual MultiLog goal demand-driven.
    pub fn solve_text_demand(&self, goal: &str) -> Result<Vec<Answer>> {
        self.solve_demand(&crate::parser::parse_goal(goal)?)
    }

    /// [`ReducedEngine::solve_demand`] through a [`DemandCache`]: the
    /// magic-sets rewrite is memoized per binding pattern (the
    /// `(predicate, adornment)` key of [`dl::magic::prepared_key`]), so
    /// repeated point goals that differ only in their constants — the
    /// REPL's common shape — skip the per-goal program clone and rewrite
    /// and only replay the prepared sub-fixpoint with a fresh seed.
    /// Answers equal [`ReducedEngine::solve_demand`]; the caller must
    /// [`DemandCache::clear`] the cache after any extensional update
    /// (the prepared programs embed the EDB).
    pub fn solve_demand_cached(&self, goal: &Goal, cache: &mut DemandCache) -> Result<Vec<Answer>> {
        let mut body: Vec<dl::Literal> = Vec::new();
        for atom in goal {
            translate_atom(atom, &self.user, self.level_split, true, &mut body)?;
        }
        let (key, consts) = dl::magic::prepared_key(&body);
        let prepared = match cache.map.get(&key) {
            Some(entry) => {
                cache.hits += 1;
                entry
            }
            None => {
                let program = self
                    .incremental
                    .current_program()
                    .map_err(MultiLogError::Datalog)?;
                let (program, _) = self.pruned_program(program);
                cache
                    .map
                    .entry(key)
                    .or_insert_with(|| dl::magic::prepare(&program, &body))
            }
        };
        if let Some(m) = prepared.as_ref().and_then(|p| p.instantiate(&consts)) {
            let mut engine = dl::Engine::new(&m.program)?.with_fact_limit(self.fact_limit);
            if let Some(d) = self.deadline {
                engine = engine.with_deadline(d);
            }
            if let Some(c) = &self.cancel {
                engine = engine.with_cancel_token(c.clone());
            }
            let db = engine.run()?;
            return Ok(project_answers(goal, &m.answers(&db)));
        }
        // Nothing to parameterize (or no sound rewrite): the plain
        // demand path handles it, including its cone fallback.
        self.solve_demand(goal)
    }

    /// Drop everything the flow analysis proves invisible at this
    /// engine's clearance from `program`: the per-level cautious
    /// machinery above the clearance, then every Σ/Π rule whose τ image
    /// matches a prunable source clause. Returns the (possibly) smaller
    /// program and how many clauses were dropped. A no-op (0 dropped)
    /// unless [`EngineOptions::flow_prune`] was set.
    fn pruned_program(&self, program: dl::Program) -> (dl::Program, usize) {
        let Some(p) = self.prune.as_ref() else {
            return (program, 0);
        };
        let before = program.clauses().len();
        let mut out = program;
        if !p.machinery.is_empty() {
            out = out.without_predicates(&p.machinery);
        }
        let excluded: HashSet<dl::Clause> = p
            .rules
            .iter()
            .filter(|(mc, _)| p.report.rule_prunable(mc, &self.user, !p.tainted))
            .map(|(_, t)| t.clone())
            .collect();
        if !excluded.is_empty() {
            out = out.without_clauses(&excluded);
        }
        let dropped = before - out.clauses().len();
        (out, dropped)
    }

    /// The flow analysis backing demand pruning, when
    /// [`EngineOptions::flow_prune`] was set.
    pub fn flow_report(&self) -> Option<&crate::flow::FlowReport> {
        self.prune.as_ref().map(|p| &p.report)
    }

    /// The lattice used by the reduction.
    pub fn lattice(&self) -> &Arc<SecurityLattice> {
        &self.lattice
    }

    /// A detached goal translator for this engine's clearance and
    /// encoding, carrying the engine's guard configuration. Reader
    /// sessions pair it with a pinned [`dl::Snapshot`] to answer goals
    /// without touching (or blocking on) the engine itself.
    pub fn goal_translator(&self) -> GoalTranslator {
        GoalTranslator {
            user: self.user.clone(),
            level_split: self.level_split,
            guards: dl::QueryGuards {
                deadline: self.deadline,
                fact_limit: if self.fact_limit == usize::MAX {
                    0
                } else {
                    self.fact_limit
                },
                cancel: self.cancel.clone(),
            },
        }
    }

    /// A copy-on-write clone of the current materialized database — an
    /// O(#relations) handle sharing all fact segments, suitable for
    /// publishing as a [`dl::GenerationStore`] generation.
    pub fn database_snapshot(&self) -> dl::Database {
        self.incremental.database().clone()
    }
}

/// The query-side half of the τ translation, detached from the engine.
///
/// A translator knows the clearance level it serves, whether the
/// reduction split `rel` per level, and the session's query guards — the
/// three inputs needed to turn a MultiLog goal into a reduced Datalog
/// body and answer it against *any* database produced by the matching
/// [`ReducedEngine`] (typically a pinned snapshot). It holds no database
/// itself, so readers using one never contend with writers.
#[derive(Clone, Debug)]
pub struct GoalTranslator {
    user: String,
    level_split: bool,
    guards: dl::QueryGuards,
}

impl GoalTranslator {
    /// The clearance level this translator serves.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Solve a MultiLog goal against `db` (a materialized reduction at
    /// this translator's clearance), under the session guards. Answers
    /// match [`ReducedEngine::solve`] on the same database.
    pub fn solve_on(&self, db: &dl::Database, goal: &Goal) -> Result<Vec<Answer>> {
        let mut body: Vec<dl::Literal> = Vec::new();
        for atom in goal {
            translate_atom(atom, &self.user, self.level_split, true, &mut body)?;
        }
        let answers =
            dl::run_query_guarded(db, &body, &self.guards).map_err(MultiLogError::Datalog)?;
        Ok(project_answers(goal, &answers))
    }

    /// Parse and solve a textual MultiLog goal against `db`.
    pub fn solve_text_on(&self, db: &dl::Database, goal: &str) -> Result<Vec<Answer>> {
        self.solve_on(db, &crate::parser::parse_goal(goal)?)
    }
}

/// Project Datalog answers back onto the goal's own variables, in
/// MultiLog terms, sorted and deduplicated — the translation may add
/// guard-only variables that must not leak into the answers.
/// A memo of prepared magic-sets rewrites keyed by goal binding pattern,
/// owned by interactive callers (the REPL) and passed to
/// [`ReducedEngine::solve_demand_cached`]. Entries embed the extensional
/// database of the moment they were prepared: invalidate with
/// [`DemandCache::clear`] after every committed `+`/`-` update.
#[derive(Debug, Default)]
pub struct DemandCache {
    map: std::collections::HashMap<String, Option<dl::magic::PreparedMagic>>,
    hits: u64,
}

impl DemandCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every prepared rewrite (after an extensional update).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of distinct binding patterns prepared (including patterns
    /// recorded as not-rewritable).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// How many goals were answered from an already-prepared rewrite.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

fn project_answers(goal: &Goal, answers: &dl::QueryAnswer) -> Vec<Answer> {
    let goal_vars: Vec<&str> = {
        let mut vs = Vec::new();
        for a in goal {
            for v in a.variables() {
                if !vs.contains(&v) {
                    vs.push(v);
                }
            }
        }
        vs
    };
    let mut out: Vec<Answer> = Vec::new();
    for b in &answers.answers {
        let mut a: Answer = BTreeMap::new();
        for v in &goal_vars {
            if let Some(c) = b.get(*v) {
                a.insert((*v).to_owned(), const_to_term(c));
            }
        }
        out.push(a);
    }
    out.sort();
    out.dedup();
    out
}

/// Translate the full database to a Datalog program text: `τ(Δ) ∪ A`.
fn translate(
    db: &MultiLogDb,
    user: &str,
    lattice: &SecurityLattice,
    level_split: bool,
) -> Result<String> {
    let mut out = String::new();
    // --- τ(Λ): the lattice component translates one-to-one. ---
    for c in db.lambda() {
        out.push_str(&translate_clause(c, user, level_split)?);
        out.push('\n');
    }
    // --- τ(Σ) and τ(Π). ---
    for c in db.sigma().iter().chain(db.pi()) {
        out.push_str(&translate_clause(c, user, level_split)?);
        out.push('\n');
    }
    // --- The axiom set A. ---
    out.push_str("% axiom set A (Figure 12, safe specialization)\n");
    out.push_str("dominate(X, Y) :- order(X, Y).\n");
    out.push_str("dominate(X, X) :- level(X).\n");
    out.push_str("dominate(X, Y) :- order(X, Z), dominate(Z, Y).\n");
    if level_split {
        // Union view of the split relation, for queries.
        for l in lattice.labels() {
            let name = lattice.name(l);
            out.push_str(&format!(
                "rel(P, K, A, V, C, {name}) :- rel_{name}(P, K, A, V, C).\n"
            ));
        }
        // Per-level cautious machinery over the statically known order.
        for h in lattice.labels() {
            let hn = lattice.name(h);
            for l in lattice.down_set(h) {
                let ln = lattice.name(l);
                out.push_str(&format!(
                    "visible_{hn}(P, K, A, V, C) :- rel_{ln}(P, K, A, V, C).\n"
                ));
            }
            out.push_str(&format!(
                "beaten_{hn}(P, K, A, C) :- visible_{hn}(P, K, A, V, C), \
                 visible_{hn}(P, K, A, V2, C2), dominate(C, C2), C != C2.\n"
            ));
            out.push_str(&format!(
                "bel_cau_{hn}(P, K, A, V, C) :- visible_{hn}(P, K, A, V, C), \
                 not beaten_{hn}(P, K, A, C).\n"
            ));
            out.push_str(&format!(
                "bel(P, K, A, V, C, {hn}, cau) :- bel_cau_{hn}(P, K, A, V, C).\n"
            ));
        }
    } else {
        // Generic cautious machinery (negation confined to query strata).
        out.push_str("visible(P, K, A, V, C, H) :- rel(P, K, A, V, C, L), dominate(L, H).\n");
        out.push_str(
            "beaten(P, K, A, C, H) :- visible(P, K, A, V, C, H), \
             visible(P, K, A, V2, C2, H), dominate(C, C2), C != C2.\n",
        );
        out.push_str(
            "bel(P, K, A, V, C, H, cau) :- visible(P, K, A, V, C, H), \
             not beaten(P, K, A, C, H).\n",
        );
    }
    // Monotone modes, split so rule bodies avoid the negation stratum.
    out.push_str("bel_fir(P, K, A, V, C, H) :- rel(P, K, A, V, C, H).\n");
    out.push_str("bel_opt(P, K, A, V, C, H) :- rel(P, K, A, V, C, L), dominate(L, H).\n");
    out.push_str("bel(P, K, A, V, C, H, fir) :- bel_fir(P, K, A, V, C, H).\n");
    out.push_str("bel(P, K, A, V, C, H, opt) :- bel_opt(P, K, A, V, C, H).\n");
    Ok(out)
}

fn translate_clause(c: &Clause, user: &str, level_split: bool) -> Result<String> {
    let head = match &c.head {
        Head::M(m) => {
            if level_split {
                let Term::Sym(level) = &m.level else {
                    return Err(MultiLogError::NotBeliefStratified {
                        detail: format!(
                            "reduction of `{c}` requires a ground head level when the \
                             program consults `<< cau`"
                        ),
                    });
                };
                format!(
                    "rel_{level}({}, {}, {}, {}, {})",
                    m.pred,
                    term_text(&m.key),
                    m.attr,
                    term_text(&m.value),
                    term_text(&m.class),
                )
            } else {
                matom_text(m)
            }
        }
        Head::P(p) => match c.agg {
            // Aggregate heads render in the Datalog layer's surface
            // syntax (`total(H, count(K))`); the back-end evaluates the
            // fold per stratum over distinct witness bindings, so
            // polyinstantiated m-atoms at different levels count
            // separately (bag semantics per Bertossi–Gottlob).
            Some(agg) => {
                let args: Vec<String> = p
                    .args
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        if i == agg.position {
                            format!("{}({})", agg.func.keyword(), term_text(t))
                        } else {
                            term_text(t)
                        }
                    })
                    .collect();
                format!("{}({})", p.pred, args.join(", "))
            }
            None => patom_text(p),
        },
        Head::L(t) => format!("level({})", term_text(t)),
        Head::H(l, h) => format!("order({}, {})", term_text(l), term_text(h)),
    };
    if c.body.is_empty() {
        return Ok(format!("{head}."));
    }
    let mut lits: Vec<dl::Literal> = Vec::new();
    for a in &c.body {
        translate_atom(a, user, level_split, false, &mut lits)?;
    }
    let body: Vec<String> = lits.iter().map(ToString::to_string).collect();
    Ok(format!("{head} :- {}.", body.join(", ")))
}

/// τ(λ(B, u)): translate one atom, adding the no-read-up guards for m-
/// and b-atoms. `in_query` distinguishes query-side translation (always
/// the generic predicates) from rule bodies (level/mode specialized).
fn translate_atom(
    atom: &Atom,
    user: &str,
    level_split: bool,
    in_query: bool,
    out: &mut Vec<dl::Literal>,
) -> Result<()> {
    let lit = |s: &str| -> Result<dl::Literal> {
        let atoms = dl::parse_query(s).map_err(MultiLogError::Datalog)?;
        atoms
            .into_iter()
            .next()
            .ok_or_else(|| MultiLogError::Parse {
                line: 1,
                column: 1,
                message: format!("translated literal `{s}` parsed to an empty query"),
            })
    };
    match atom {
        Atom::M(m) => {
            if level_split && !in_query {
                let Term::Sym(level) = &m.level else {
                    return Err(MultiLogError::NotBeliefStratified {
                        detail: format!(
                            "reduction requires ground body m-atom levels when the \
                             program consults `<< cau` (offending atom: `{m}`)"
                        ),
                    });
                };
                out.push(lit(&format!(
                    "rel_{level}({}, {}, {}, {}, {})",
                    m.pred,
                    term_text(&m.key),
                    m.attr,
                    term_text(&m.value),
                    term_text(&m.class),
                ))?);
            } else {
                out.push(lit(&matom_text(m))?);
            }
            out.push(lit(&format!("dominate({}, {user})", term_text(&m.level)))?);
            out.push(lit(&format!("dominate({}, {user})", term_text(&m.class)))?);
            Ok(())
        }
        Atom::B(m, mode) => {
            let base = format!(
                "{}, {}, {}, {}, {}",
                m.pred,
                term_text(&m.key),
                m.attr,
                term_text(&m.value),
                term_text(&m.class),
            );
            let translated = match (Mode::parse(mode), in_query) {
                // Rule bodies use the specialized monotone predicates.
                (Some(Mode::Fir), false) => {
                    format!("bel_fir({base}, {})", term_text(&m.level))
                }
                (Some(Mode::Opt), false) => {
                    format!("bel_opt({base}, {})", term_text(&m.level))
                }
                (Some(Mode::Cau), false) => {
                    if level_split {
                        let Term::Sym(level) = &m.level else {
                            return Err(MultiLogError::NotBeliefStratified {
                                detail: format!("`{m} << cau` needs a ground level for reduction"),
                            });
                        };
                        format!("bel_cau_{level}({base})")
                    } else {
                        format!("bel({base}, {}, cau)", term_text(&m.level))
                    }
                }
                // Queries and user modes go through the generic bel/7.
                _ => format!("bel({base}, {}, {mode})", term_text(&m.level)),
            };
            out.push(lit(&translated)?);
            out.push(lit(&format!("dominate({}, {user})", term_text(&m.level)))?);
            out.push(lit(&format!("dominate({}, {user})", term_text(&m.class)))?);
            Ok(())
        }
        Atom::P(p) => {
            out.push(lit(&patom_text(p))?);
            Ok(())
        }
        Atom::L(t) => {
            out.push(lit(&format!("level({})", term_text(t)))?);
            Ok(())
        }
        Atom::H(l, h) => {
            out.push(lit(&format!("order({}, {})", term_text(l), term_text(h)))?);
            Ok(())
        }
        Atom::Leq(l, h) => {
            out.push(lit(&format!(
                "dominate({}, {})",
                term_text(l),
                term_text(h)
            ))?);
            Ok(())
        }
    }
}

fn matom_text(m: &MAtom) -> String {
    format!(
        "rel({}, {}, {}, {}, {}, {})",
        m.pred,
        term_text(&m.key),
        m.attr,
        term_text(&m.value),
        term_text(&m.class),
        term_text(&m.level),
    )
}

fn patom_text(p: &crate::ast::PAtom) -> String {
    if p.args.is_empty() {
        p.pred.to_string()
    } else {
        let args: Vec<String> = p.args.iter().map(term_text).collect();
        format!("{}({})", p.pred, args.join(", "))
    }
}

fn term_text(t: &Term) -> String {
    match t {
        Term::Var(v) => v.to_string(),
        Term::Sym(s) => s.to_string(),
        Term::Int(i) => i.to_string(),
        Term::Null => "null".to_owned(),
    }
}

/// A ground MultiLog term as a Datalog constant, matching the textual
/// translation ([`term_text`]): `⊥` becomes the symbol `null`.
fn term_const(t: &Term) -> dl::Const {
    match t {
        Term::Sym(s) => dl::Const::sym(s.as_ref()),
        Term::Int(i) => dl::Const::int(*i),
        Term::Null => dl::Const::sym("null"),
        Term::Var(v) => unreachable!("update atoms are ground (variable `{v}`)"),
    }
}

fn const_to_term(c: &dl::Const) -> Term {
    match c {
        dl::Const::Sym(s) if s.as_ref() == "null" => Term::Null,
        dl::Const::Sym(s) => Term::sym(s.as_ref()),
        dl::Const::Int(i) => Term::Int(*i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;
    use crate::MultiLogEngine;

    const D1: &str = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[p(k : a -u-> v)].
        c[p(k : a -c-> t)] <- q(j).
        s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.
        q(j).
    "#;

    #[test]
    fn d1_reduces_and_evaluates() {
        let db = parse_database(D1).unwrap();
        let red = ReducedEngine::new(&db, "s").unwrap();
        // The three rel facts (split per level, unioned into rel/6).
        assert_eq!(red.database().relation("rel").unwrap().len(), 3);
        assert!(red.program_text().contains("rel_u(p, k, a, v, u)."));
        assert!(red.program_text().contains("bel_cau_c"));
    }

    #[test]
    fn figure11_query_through_reduction() {
        let db = parse_database(D1).unwrap();
        let red = ReducedEngine::new(&db, "c").unwrap();
        let ans = red.solve_text("c[p(k : a -u-> v)] << opt").unwrap();
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn reduction_agrees_with_operational_on_d1() {
        let db = parse_database(D1).unwrap();
        for user in ["u", "c", "s"] {
            let op = MultiLogEngine::new(&db, user).unwrap();
            let red = ReducedEngine::new(&db, user).unwrap();
            for goal in [
                "L[p(k : a -C-> V)]",
                "L[p(k : a -C-> V)] << fir",
                "L[p(k : a -C-> V)] << opt",
                "L[p(k : a -C-> V)] << cau",
                "q(X)",
                "u leq L",
            ] {
                let a = op.solve_text(goal).unwrap();
                let b = red.solve_text(goal).unwrap();
                assert_eq!(a, b, "goal `{goal}` at user {user}");
            }
        }
    }

    #[test]
    fn demand_answers_match_materialized_on_d1() {
        let db = parse_database(D1).unwrap();
        for user in ["u", "c", "s"] {
            let red = ReducedEngine::new(&db, user).unwrap();
            for goal in [
                "L[p(k : a -C-> V)]",
                "s[p(k : a -C-> V)] << fir",
                "s[p(k : a -C-> V)] << opt",
                "c[p(k : a -C-> V)] << cau",
                "q(X)",
                "u leq L",
            ] {
                assert_eq!(
                    red.solve_text(goal).unwrap(),
                    red.solve_text_demand(goal).unwrap(),
                    "goal `{goal}` at user {user}"
                );
            }
        }
    }

    #[test]
    fn cached_demand_matches_uncached_and_counts_hits() {
        let db = parse_database(D1).unwrap();
        let mut cache = DemandCache::new();
        for user in ["u", "c", "s"] {
            let red = ReducedEngine::new(&db, user).unwrap();
            cache.clear();
            for goal in [
                "L[p(k : a -C-> V)]",
                "s[p(k : a -C-> V)] << fir",
                "s[p(k : a -C-> V)] << opt",
                "c[p(k : a -C-> V)] << cau",
                "q(X)",
                "u leq L",
            ] {
                let parsed = crate::parser::parse_goal(goal).unwrap();
                let expect = red.solve_text_demand(goal).unwrap();
                // Twice: miss then hit, identical answers both times.
                for _ in 0..2 {
                    assert_eq!(
                        red.solve_demand_cached(&parsed, &mut cache).unwrap(),
                        expect,
                        "goal `{goal}` at user {user}"
                    );
                }
            }
        }
        assert!(cache.entries() >= 1);
        assert!(cache.hits() >= 6, "repeats must hit: {}", cache.hits());
    }

    #[test]
    fn cached_demand_shares_one_rewrite_across_constants() {
        // Goals differing only in the key constant share a prepared
        // rewrite: one entry, and from the second goal on, hits.
        let db = parse_database(D1).unwrap();
        let red = ReducedEngine::new(&db, "s").unwrap();
        let mut cache = DemandCache::new();
        for key in ["k", "k2", "k3"] {
            let goal = format!("s[p({key} : a -C-> V)] << opt");
            let parsed = crate::parser::parse_goal(&goal).unwrap();
            assert_eq!(
                red.solve_demand_cached(&parsed, &mut cache).unwrap(),
                red.solve_text_demand(&goal).unwrap(),
                "goal `{goal}`"
            );
        }
        assert_eq!(cache.entries(), 1, "one binding pattern");
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn demand_stats_report_magic_for_point_queries() {
        let db = parse_database(D1).unwrap();
        let red = ReducedEngine::new(&db, "s").unwrap();
        let goal = crate::parser::parse_goal("s[p(k : a -C-> V)] << opt").unwrap();
        let (answers, stats) = red.solve_demand_with_stats(&goal).unwrap();
        assert!(!answers.is_empty());
        let demand = stats.demand.expect("demand stats recorded");
        // τ appends `dominate(level, user)` guards, so every reduced goal
        // has bound arguments and the magic rewrite engages.
        assert_eq!(demand.strategy, "magic");
        assert!(demand.adorned_predicates >= 1);
    }

    #[test]
    fn deferred_engine_answers_point_queries_without_materializing() {
        let db = parse_database(D1).unwrap();
        let red = ReducedEngine::with_options_deferred(&db, "s", EngineOptions::default()).unwrap();
        assert!(red.is_poisoned(), "deferred engines start unmaterialized");
        assert_eq!(red.database().fact_count(), 0);
        let ans = red.solve_text_demand("s[p(k : a -C-> V)] << opt").unwrap();
        let full = ReducedEngine::new(&db, "s").unwrap();
        assert_eq!(ans, full.solve_text("s[p(k : a -C-> V)] << opt").unwrap());
        // The deferred engine still never materialized anything.
        assert_eq!(red.database().fact_count(), 0);
    }

    /// A level-skewed database: everything interesting lives at `s`,
    /// so a `u`-cleared demand run should be able to drop most rules.
    const SKEWED: &str = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[low(k : a -u-> v1)].
        s[hi(k : a -s-> w1)].
        s[hi2(k : a -s-> V)] <- s[hi(k : a -s-> V)].
        L[mix(K : b -C-> V)] <- L[hi(K : a -C-> V)].
        u[low2(K : a -C-> V)] <- u[low(K : a -C-> V)].
    "#;

    fn prune_options() -> EngineOptions {
        EngineOptions {
            flow_prune: true,
            ..EngineOptions::default()
        }
    }

    #[test]
    fn flow_pruned_demand_answers_match_unpruned() {
        for src in [D1, SKEWED] {
            let db = parse_database(src).unwrap();
            for user in ["u", "c", "s"] {
                let plain = ReducedEngine::new(&db, user).unwrap();
                let pruned = ReducedEngine::with_options(&db, user, prune_options()).unwrap();
                for goal in [
                    "L[p(k : a -C-> V)]",
                    "L[p(k : a -C-> V)] << cau",
                    "L[hi2(k : a -C-> V)]",
                    "L[mix(k : b -C-> V)]",
                    "L[low2(k : a -C-> V)] << opt",
                    "q(X)",
                ] {
                    assert_eq!(
                        plain.solve_text_demand(goal).unwrap(),
                        pruned.solve_text_demand(goal).unwrap(),
                        "goal `{goal}` at user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn flow_pruning_shrinks_the_demand_program_at_low_clearance() {
        let db = parse_database(SKEWED).unwrap();
        let pruned = ReducedEngine::with_options(&db, "u", prune_options()).unwrap();
        let goal = crate::parser::parse_goal("u[low2(k : a -C-> V)]").unwrap();
        let (answers, stats) = pruned.solve_demand_with_stats(&goal).unwrap();
        assert_eq!(answers.len(), 1);
        let demand = stats.demand.expect("demand stats recorded");
        // The `s`-headed rule and the hi-consuming generic rule are
        // both statically invisible at `u`.
        assert!(demand.pruned_rules >= 2, "pruned {}", demand.pruned_rules);
        // At the top clearance nothing is prunable in SKEWED.
        let top = ReducedEngine::with_options(&db, "s", prune_options()).unwrap();
        let (_, stats) = top.solve_demand_with_stats(&goal).unwrap();
        assert_eq!(stats.demand.unwrap().pruned_rules, 0);
        // Without the option the count stays 0 even at `u`.
        let plain = ReducedEngine::new(&db, "u").unwrap();
        let (_, stats) = plain.solve_demand_with_stats(&goal).unwrap();
        assert_eq!(stats.demand.unwrap().pruned_rules, 0);
    }

    #[test]
    fn flow_pruning_drops_cau_machinery_above_clearance() {
        // D1 consults `<< cau`, so the reduction splits per level and
        // emits visible_/beaten_/bel_cau_ for every level; at `u` the
        // `c` and `s` machinery is statically unreadable.
        let db = parse_database(D1).unwrap();
        let pruned = ReducedEngine::with_options(&db, "u", prune_options()).unwrap();
        let goal = crate::parser::parse_goal("L[p(k : a -C-> V)] << cau").unwrap();
        let (answers, stats) = pruned.solve_demand_with_stats(&goal).unwrap();
        assert!(stats.demand.unwrap().pruned_rules > 0);
        let plain = ReducedEngine::new(&db, "u").unwrap();
        assert_eq!(answers, plain.solve_demand(&goal).unwrap());
    }

    #[test]
    fn updates_disable_bounds_pruning_but_keep_answers_sound() {
        let src = r#"
            level(u). level(s). order(u, s).
            s[hi(k : a -s-> w)].
            L[q(K : b -C-> V)] <- L[hi(K : a -C-> V)].
        "#;
        let db = parse_database(src).unwrap();
        let mut pruned = ReducedEngine::with_options(&db, "u", prune_options()).unwrap();
        let goal = crate::parser::parse_goal("u[q(k : b -C-> V)]").unwrap();
        // Statically, `hi` only achieves level s: the rule is pruned at
        // clearance u and the (correct) answer is empty.
        let (answers, stats) = pruned.solve_demand_with_stats(&goal).unwrap();
        assert!(answers.is_empty());
        assert!(stats.demand.unwrap().pruned_rules > 0);
        // An update widens `hi` down to u — the static bound no longer
        // covers the data, so bounds-based pruning must switch off and
        // the new derivation must appear.
        let atom = match crate::parser::parse_goal("u[hi(k : a -u-> fresh)]")
            .unwrap()
            .remove(0)
        {
            Atom::M(m) => m,
            other => panic!("unexpected {other:?}"),
        };
        pruned
            .apply_updates(&[EdbUpdate::Assert(atom.clone())])
            .unwrap();
        let (answers, stats) = pruned.solve_demand_with_stats(&goal).unwrap();
        assert_eq!(answers.len(), 1, "update-derived answer must survive");
        assert_eq!(stats.demand.unwrap().pruned_rules, 0);
        // Cross-check against an unpruned engine fed the same update.
        let mut plain = ReducedEngine::new(&db, "u").unwrap();
        plain.apply_updates(&[EdbUpdate::Assert(atom)]).unwrap();
        assert_eq!(
            pruned.solve_demand(&goal).unwrap(),
            plain.solve_demand(&goal).unwrap()
        );
    }

    #[test]
    fn algo_call_answers_through_reduction() {
        // Pure-Π database (Prop 6.1 degeneration) calling the native
        // reachability operator.
        let db =
            parse_database("edge(a, b). edge(b, c). edge(c, d). reach(X, Y) <- @bfs(edge, X, Y).")
                .unwrap();
        let red = ReducedEngine::new(&db, "system").unwrap();
        assert_eq!(red.solve_text("reach(a, Y)").unwrap().len(), 3);
        assert_eq!(red.solve_text("reach(X, Y)").unwrap().len(), 6);
        assert_eq!(
            red.solve_text_demand("reach(a, Y)").unwrap(),
            red.solve_text("reach(a, Y)").unwrap()
        );
    }

    /// The `level_dashboard` shape in miniature: per-clearance counts of
    /// optimistically believed cells, aggregated directly over the
    /// b-atom so polyinstantiated cells count once per classification.
    const DASHBOARD: &str = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[emp(e1 : sal -u-> v1)].
        c[emp(e1 : sal -c-> v2)].
        s[emp(e2 : sal -s-> v3)].
        total(H, count(K)) <- H[emp(K : sal -C-> V)] << opt, level(H).
    "#;

    #[test]
    fn aggregate_dashboard_counts_polyinstantiated_witnesses_per_level() {
        let db = parse_database(DASHBOARD).unwrap();
        let red = ReducedEngine::new(&db, "s").unwrap();
        let ans = red.solve_text("total(H, N)").unwrap();
        let by_level: BTreeMap<String, Term> = ans
            .iter()
            .map(|a| (a["H"].to_string(), a["N"].clone()))
            .collect();
        // u sees e1's u-cell; c additionally the polyinstantiated c-cell
        // (distinct witness, same key); s also e2's cell.
        assert_eq!(by_level["u"], Term::Int(1));
        assert_eq!(by_level["c"], Term::Int(2));
        assert_eq!(by_level["s"], Term::Int(3));
    }

    #[test]
    fn aggregate_goals_answered_demand_driven_and_after_updates() {
        let db = parse_database(DASHBOARD).unwrap();
        let mut red = ReducedEngine::new(&db, "s").unwrap();
        assert_eq!(
            red.solve_text_demand("total(s, N)").unwrap(),
            red.solve_text("total(s, N)").unwrap()
        );
        // An update re-derives the aggregate (whole-commit recompute in
        // the back-end, since no per-fact delta exists for folds).
        red.apply_updates(&[EdbUpdate::Assert(goal_matom("u[emp(e3 : sal -u-> v4)]"))])
            .unwrap();
        let ans = red.solve_text("total(u, N)").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0]["N"], Term::Int(2));
    }

    #[test]
    fn aggregate_clearance_guards_limit_the_dashboard() {
        // At clearance u the c- and s-level cells are never visible, so
        // only the u row survives the no-read-up guards.
        let db = parse_database(DASHBOARD).unwrap();
        let red = ReducedEngine::new(&db, "u").unwrap();
        let ans = red.solve_text("total(H, N)").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0]["H"], Term::sym("u"));
        assert_eq!(ans[0]["N"], Term::Int(1));
    }

    #[test]
    fn paper_axioms_listing_is_complete() {
        let text = paper_axioms();
        for a in [
            "a1:",
            "a5:",
            "a9:",
            "dominate",
            "bel(P, K, A, V, C, H, cau)",
        ] {
            assert!(text.contains(a));
        }
    }

    #[test]
    fn guards_enforce_no_read_up() {
        let db = parse_database(D1).unwrap();
        let red = ReducedEngine::new(&db, "u").unwrap();
        assert!(red.solve_text("c[p(k : a -c-> t)]").unwrap().is_empty());
        assert_eq!(red.solve_text("u[p(k : a -u-> v)]").unwrap().len(), 1);
    }

    #[test]
    fn datalog_degeneration_prop61() {
        // Prop 6.1: a pure Datalog database reduces to itself (modulo the
        // inert axiom set) and yields classical answers.
        let db = parse_database("q(a). q(b). r(X) <- q(X). p(X, Y) <- q(X), q(Y).").unwrap();
        let red = ReducedEngine::new(&db, "system").unwrap();
        assert_eq!(red.solve_text("r(X)").unwrap().len(), 2);
        assert_eq!(red.solve_text("p(X, Y)").unwrap().len(), 4);
        let op = MultiLogEngine::new(&db, "system").unwrap();
        assert_eq!(
            op.solve_text("p(X, Y)").unwrap(),
            red.solve_text("p(X, Y)").unwrap()
        );
    }

    #[test]
    fn monotone_program_uses_generic_axioms() {
        let src = r#"
            level(u). level(s). order(u, s).
            u[p(k : a -u-> v)].
            s[q(k : b -s-> w)] <- u[p(k : a -u-> v)] << opt.
        "#;
        let db = parse_database(src).unwrap();
        let red = ReducedEngine::new(&db, "s").unwrap();
        assert!(
            !red.program_text().contains("rel_u"),
            "no level split needed"
        );
        assert_eq!(red.solve_text("s[q(k : b -s-> w)]").unwrap().len(), 1);
    }

    #[test]
    fn unknown_user_level_rejected() {
        let db = parse_database("level(u). u[p(k : a -u-> v)].").unwrap();
        assert!(ReducedEngine::new(&db, "zz").is_err());
    }

    fn goal_matom(text: &str) -> MAtom {
        match crate::parser::parse_goal(text).unwrap().remove(0) {
            Atom::M(m) => m,
            other => panic!("not an m-atom: {other}"),
        }
    }

    #[test]
    fn updates_maintain_belief_relations_incrementally() {
        let db = parse_database(D1).unwrap();
        let mut red = ReducedEngine::new(&db, "s").unwrap();
        let stats = red
            .apply_updates(&[EdbUpdate::Assert(goal_matom("u[p(k2 : a -u-> w)]"))])
            .unwrap();
        assert_eq!(stats.edb_inserted, 1);
        assert!(stats.derived_added > 0, "belief relations were maintained");
        assert_eq!(
            red.solve_text("s[p(k2 : a -u-> w)] << opt").unwrap().len(),
            1
        );
        red.apply_updates(&[EdbUpdate::Retract(goal_matom("u[p(k2 : a -u-> w)]"))])
            .unwrap();
        assert!(red
            .solve_text("s[p(k2 : a -u-> w)] << opt")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn updates_agree_with_full_rebuild() {
        let db = parse_database(D1).unwrap();
        let mut red = ReducedEngine::new(&db, "s").unwrap();
        red.apply_updates(&[
            EdbUpdate::Assert(goal_matom("u[p(k2 : a -u-> w)]")),
            EdbUpdate::Retract(goal_matom("u[p(k : a -u-> v)]")),
        ])
        .unwrap();
        let src = D1.replace("u[p(k : a -u-> v)].", "u[p(k2 : a -u-> w)].");
        let fresh = ReducedEngine::new(&parse_database(&src).unwrap(), "s").unwrap();
        for goal in [
            "L[p(K : a -C-> V)]",
            "L[p(K : a -C-> V)] << fir",
            "L[p(K : a -C-> V)] << opt",
            "L[p(K : a -C-> V)] << cau",
        ] {
            assert_eq!(
                red.solve_text(goal).unwrap(),
                fresh.solve_text(goal).unwrap(),
                "goal `{goal}`"
            );
        }
    }

    #[test]
    fn retracting_a_derived_cell_is_a_no_op() {
        let db = parse_database(D1).unwrap();
        let mut red = ReducedEngine::new(&db, "c").unwrap();
        // The c-level cell is derived by r7's body, not asserted: it
        // cannot be deleted out from under its justification.
        let stats = red
            .apply_updates(&[EdbUpdate::Retract(goal_matom("c[p(k : a -c-> t)]"))])
            .unwrap();
        assert_eq!(stats.edb_retracted, 0);
        assert_eq!(red.solve_text("c[p(k : a -c-> t)]").unwrap().len(), 1);
    }

    #[test]
    fn bad_updates_are_rejected_without_poisoning() {
        let db = parse_database(D1).unwrap();
        let mut red = ReducedEngine::new(&db, "s").unwrap();
        let e = red.apply_updates(&[EdbUpdate::Assert(goal_matom("u[p(K : a -u-> w)]"))]);
        assert!(matches!(e, Err(MultiLogError::NonGroundUpdate { .. })));
        let e = red.apply_updates(&[EdbUpdate::Assert(goal_matom("zz[p(k : a -u-> w)]"))]);
        assert!(matches!(e, Err(MultiLogError::NotAdmissible { .. })));
        assert!(!red.is_poisoned());
        assert_eq!(red.solve_text("u[p(k : a -u-> v)]").unwrap().len(), 1);
    }

    #[test]
    fn updates_work_without_level_split() {
        let src = r#"
            level(u). level(s). order(u, s).
            u[p(k : a -u-> v)].
        "#;
        let db = parse_database(src).unwrap();
        let mut red = ReducedEngine::new(&db, "s").unwrap();
        red.apply_updates(&[EdbUpdate::Assert(goal_matom("s[p(k : a -s-> w)]"))])
            .unwrap();
        assert_eq!(red.solve_text("L[p(k : a -C-> V)]").unwrap().len(), 2);
        red.apply_updates(&[EdbUpdate::Retract(goal_matom("u[p(k : a -u-> v)]"))])
            .unwrap();
        assert_eq!(red.solve_text("L[p(k : a -C-> V)]").unwrap().len(), 1);
    }

    #[test]
    fn goal_translator_answers_from_pinned_snapshots() {
        let db = parse_database(D1).unwrap();
        let mut red = ReducedEngine::new(&db, "s").unwrap();
        let translator = red.goal_translator();
        let pinned = red.database_snapshot();
        let goal = "L[p(K : a -C-> V)] << opt";
        // On the live database the translator agrees with solve().
        assert_eq!(
            translator.solve_text_on(red.database(), goal).unwrap(),
            red.solve_text(goal).unwrap()
        );
        let before = translator.solve_text_on(&pinned, goal).unwrap();
        // Mutate the engine; the pinned clone still answers the old state.
        red.apply_updates(&[EdbUpdate::Assert(goal_matom("u[p(k2 : a -u-> w)]"))])
            .unwrap();
        assert_eq!(translator.solve_text_on(&pinned, goal).unwrap(), before);
        assert!(
            translator
                .solve_text_on(red.database(), goal)
                .unwrap()
                .len()
                > before.len()
        );
    }

    #[test]
    fn null_roundtrips() {
        let src = r#"
            level(u).
            u[p(k : a -u-> null)].
        "#;
        let db = parse_database(src).unwrap();
        let red = ReducedEngine::new(&db, "u").unwrap();
        let ans = red.solve_text("u[p(k : a -u-> V)]").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0]["V"], Term::Null);
    }
}
