//! A long-lived, concurrent belief service over the τ reduction: one
//! writer, any number of readers at (possibly distinct) clearance
//! levels, with **snapshot isolation** between them.
//!
//! ## Architecture
//!
//! The τ reduction bakes the querying clearance into the generated
//! program (the `dominate(_, user)` no-read-up guards of §6.2), so one
//! materialized fixpoint serves exactly one clearance level. The server
//! therefore keeps one incremental [`ReducedEngine`] per clearance level
//! with an open reader, created lazily at the first `open` for that
//! level and caught up by replaying the committed update history.
//!
//! Each level also owns a [`dl::GenerationStore`]: after every committed
//! batch the writer publishes that level's new materialization as the
//! next *generation* (a copy-on-write [`dl::Database`] clone — an
//! O(#relations) handle, not a copy of the facts). Readers pin a
//! generation when they open (or [`ReaderSession::refresh`]) and answer
//! every goal from that pinned snapshot through a detached
//! [`GoalTranslator`] — they never touch the engines, so a reader never
//! blocks on a writer's delta propagation, and a writer never waits for
//! readers. The only shared lock a reader takes is the generation
//! store's pointer read, held for one `Arc` clone.
//!
//! Epochs are global: every level's store counts the same committed
//! batches, so "epoch *e* at level *l*" names the reduction of exactly
//! the base database plus the first *e* committed batches — the property
//! the snapshot-consistency stress oracle checks.
//!
//! ## Failure semantics
//!
//! A commit applies the batch to every level engine before publishing
//! anything. If any level fails (a guard trip mid-propagation), no
//! generation is published, the epoch does not advance, and every engine
//! the batch already reached is rebuilt from the base database plus the
//! committed history — so all levels converge back to the pre-commit
//! state and the writer sees one typed error. A level whose rebuild also
//! fails is parked and healed on the next commit or open; its readers
//! keep answering from their pinned generations throughout.

// Long-lived service path: invariant violations must surface as typed
// errors to one session, never crash the process (same policy as
// `live.rs` and the incremental back-end).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use multilog_datalog as dl;

use crate::ast::Goal;
use crate::db::MultiLogDb;
use crate::engine::{Answer, EngineOptions};
use crate::reduce::{EdbUpdate, GoalTranslator, ReducedEngine};
use crate::{MultiLogError, Result};

/// Per-level state: the incremental engine producing generations and the
/// store readers pin them from. `engine` is `None` while the level is
/// parked after a failed post-abort rebuild; the store (and thus every
/// pinned snapshot) survives parking.
struct LevelSlot {
    engine: Option<ReducedEngine>,
    store: Arc<dl::GenerationStore>,
}

struct ServerInner {
    db: MultiLogDb,
    options: EngineOptions,
    levels: BTreeMap<String, LevelSlot>,
    /// Every committed update, in commit order; replayed into engines
    /// created (or rebuilt) after the commits happened.
    history: Vec<EdbUpdate>,
    /// Number of committed batches == the epoch of every level store.
    commits: u64,
    writer_open: bool,
}

/// What one committed batch did, per level.
#[derive(Clone, Debug)]
pub struct CommitSummary {
    /// The epoch the batch was published at (same across levels).
    pub epoch: u64,
    /// Per-clearance-level maintenance statistics.
    pub levels: BTreeMap<String, dl::CommitStats>,
}

/// A multi-session belief server: share it (behind an `Arc`) between one
/// writer and any number of reader threads.
pub struct BeliefServer {
    inner: Mutex<ServerInner>,
}

/// Lock the server state even if a panicking holder poisoned the mutex:
/// every mutation either completes or restores a consistent state (see
/// the failure-semantics contract above), so the guarded value is usable
/// after a poison.
fn lock(inner: &Mutex<ServerInner>) -> MutexGuard<'_, ServerInner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl BeliefServer {
    /// Create a server over `db`. Engines are created lazily per
    /// clearance level, each under `options` (fact budget, deadline,
    /// cancellation) — the same guard plumbing the single-session
    /// engines use.
    pub fn new(db: MultiLogDb, options: EngineOptions) -> Self {
        BeliefServer {
            inner: Mutex::new(ServerInner {
                db,
                options,
                levels: BTreeMap::new(),
                history: Vec::new(),
                commits: 0,
                writer_open: false,
            }),
        }
    }

    /// Open a reader session at clearance `user`, pinned to the
    /// generation current *now*: later commits are invisible until
    /// [`ReaderSession::refresh`]. The first open at a level pays for
    /// that level's materialization (plus history replay); subsequent
    /// opens are O(1).
    ///
    /// # Errors
    ///
    /// [`MultiLogError::NotAdmissible`] for an undeclared level, or any
    /// evaluation error from materializing the level.
    pub fn open_reader(&self, user: &str) -> Result<ReaderSession> {
        let mut inner = lock(&self.inner);
        let (translator, store) = inner.level_handles(user)?;
        let snapshot = store.snapshot();
        Ok(ReaderSession {
            translator,
            store,
            snapshot,
        })
    }

    /// Open *the* writer session. The server is single-writer: a second
    /// open fails with [`MultiLogError::WriterBusy`] until the first
    /// session drops.
    pub fn open_writer(&self) -> Result<WriterSession<'_>> {
        let mut inner = lock(&self.inner);
        if inner.writer_open {
            return Err(MultiLogError::WriterBusy);
        }
        inner.writer_open = true;
        Ok(WriterSession { server: self })
    }

    /// The current global epoch (number of committed batches).
    pub fn epoch(&self) -> u64 {
        lock(&self.inner).commits
    }

    /// The clearance levels with instantiated engines, in order.
    pub fn open_levels(&self) -> Vec<String> {
        lock(&self.inner).levels.keys().cloned().collect()
    }

    /// Answer a point goal at clearance `user` by demand-driven
    /// (magic-sets) evaluation over the level engine's current committed
    /// state — unlike reader sessions, which scan a pinned materialized
    /// snapshot. When the server was built with
    /// [`EngineOptions::flow_prune`], session setup hands each level
    /// engine the lattice-flow bounds, so the demand cone here first
    /// drops rules the analysis proves statically invisible at `user`;
    /// answers are identical either way.
    ///
    /// # Errors
    ///
    /// [`MultiLogError::NotAdmissible`] for an undeclared level, parse
    /// errors for a malformed goal, or any evaluation error.
    pub fn point_query(&self, user: &str, goal: &str) -> Result<Vec<Answer>> {
        let mut inner = lock(&self.inner);
        inner.level_handles(user)?;
        let engine = inner
            .levels
            .get(user)
            .and_then(|slot| slot.engine.as_ref())
            .ok_or_else(|| MultiLogError::Internal {
                detail: format!("level `{user}` has no engine after setup"),
            })?;
        engine.solve_text_demand(goal)
    }
}

impl std::fmt::Debug for BeliefServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock(&self.inner);
        f.debug_struct("BeliefServer")
            .field("epoch", &inner.commits)
            .field("levels", &inner.levels.keys().collect::<Vec<_>>())
            .field("writer_open", &inner.writer_open)
            .finish_non_exhaustive()
    }
}

impl ServerInner {
    /// A fresh engine for `user`: the base database materialized under
    /// the server options, with the committed history replayed on top.
    fn fresh_engine(
        db: &MultiLogDb,
        options: &EngineOptions,
        user: &str,
        history: &[EdbUpdate],
    ) -> Result<ReducedEngine> {
        let mut engine = ReducedEngine::with_options(db, user, options.clone())?;
        if !history.is_empty() {
            engine.apply_updates(history)?;
        }
        Ok(engine)
    }

    /// Ensure `user` has a live level slot; return its translator and
    /// store. Creates the engine (and a store aligned to the global
    /// epoch) on first open, and revives a parked engine.
    fn level_handles(&mut self, user: &str) -> Result<(GoalTranslator, Arc<dl::GenerationStore>)> {
        let ServerInner {
            db,
            options,
            levels,
            history,
            commits,
            ..
        } = self;
        if let Some(slot) = levels.get_mut(user) {
            if slot.engine.is_none() {
                // Parked after a failed rebuild: heal, keeping the store
                // (existing readers' refresh must keep working) but
                // aligning its contents with the committed state.
                let engine = Self::fresh_engine(db, options, user, history)?;
                let current = engine.database_snapshot();
                slot.store.publish_at(*commits, current);
                slot.engine = Some(engine);
            }
            let engine = slot
                .engine
                .as_ref()
                .ok_or_else(|| MultiLogError::Internal {
                    detail: format!("level `{user}` has no engine after healing"),
                })?;
            return Ok((engine.goal_translator(), Arc::clone(&slot.store)));
        }
        let engine = Self::fresh_engine(db, options, user, history)?;
        let store = Arc::new(dl::GenerationStore::with_epoch(
            *commits,
            engine.database_snapshot(),
        ));
        let translator = engine.goal_translator();
        levels.insert(
            user.to_owned(),
            LevelSlot {
                engine: Some(engine),
                store: Arc::clone(&store),
            },
        );
        Ok((translator, store))
    }

    /// Apply one batch to every level and publish the next generation
    /// everywhere, or restore the pre-commit state and publish nothing.
    fn commit(&mut self, updates: &[EdbUpdate]) -> Result<CommitSummary> {
        if updates.is_empty() {
            return Ok(CommitSummary {
                epoch: self.commits,
                levels: BTreeMap::new(),
            });
        }
        // Phase 0: heal any parked levels so the batch reaches them too.
        let parked: Vec<String> = self
            .levels
            .iter()
            .filter(|(_, s)| s.engine.is_none())
            .map(|(n, _)| n.clone())
            .collect();
        for name in parked {
            // A level that cannot be healed stays parked; the commit
            // must not proceed half-blind, so surface the error.
            self.level_handles(&name)?;
        }
        // Phase 1: apply to every engine, publishing nothing yet.
        let mut stats: BTreeMap<String, dl::CommitStats> = BTreeMap::new();
        let mut failure: Option<MultiLogError> = None;
        for (name, slot) in &mut self.levels {
            let Some(engine) = slot.engine.as_mut() else {
                failure = Some(MultiLogError::Internal {
                    detail: format!("level `{name}` parked during commit"),
                });
                break;
            };
            match engine.apply_updates(updates) {
                Ok(s) => {
                    stats.insert(name.clone(), s);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(error) = failure {
            // Phase 1 failed somewhere: rebuild every engine the batch
            // may have reached back to the committed state. Stores are
            // untouched — no generation was published.
            let ServerInner {
                db,
                options,
                levels,
                history,
                ..
            } = self;
            for (name, slot) in levels.iter_mut() {
                match Self::fresh_engine(db, options, name, history) {
                    Ok(engine) => slot.engine = Some(engine),
                    // Park the level; readers keep their snapshots and
                    // the next commit/open retries the rebuild.
                    Err(_) => slot.engine = None,
                }
            }
            return Err(error);
        }
        // Phase 2: all levels succeeded — record and publish atomically
        // per level (each publish is one pointer swap).
        self.commits += 1;
        self.history.extend_from_slice(updates);
        for slot in self.levels.values_mut() {
            if let Some(engine) = &slot.engine {
                slot.store
                    .publish_at(self.commits, engine.database_snapshot());
            }
        }
        Ok(CommitSummary {
            epoch: self.commits,
            levels: stats,
        })
    }
}

/// A reader session: a pinned generation plus the goal translator for
/// its clearance. `Send`, cheap to move into a thread, and entirely
/// independent of the server's engines — queries here can never block a
/// commit and vice versa.
#[derive(Clone, Debug)]
pub struct ReaderSession {
    translator: GoalTranslator,
    store: Arc<dl::GenerationStore>,
    snapshot: dl::Snapshot,
}

impl ReaderSession {
    /// The clearance level this session reads at.
    pub fn user(&self) -> &str {
        self.translator.user()
    }

    /// The epoch of the pinned generation.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The newest published epoch (what [`refresh`](Self::refresh) would
    /// pin).
    pub fn latest_epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Re-pin to the newest published generation; returns its epoch.
    pub fn refresh(&mut self) -> u64 {
        self.snapshot = self.store.snapshot();
        self.snapshot.epoch()
    }

    /// The pinned snapshot itself.
    pub fn snapshot(&self) -> &dl::Snapshot {
        &self.snapshot
    }

    /// Answer a goal from the pinned generation, under the session's
    /// guards. Repeating a query between refreshes always returns the
    /// same answers, regardless of concurrent commits.
    pub fn query(&self, goal: &Goal) -> Result<Vec<Answer>> {
        self.translator.solve_on(self.snapshot.database(), goal)
    }

    /// Parse and answer a textual goal from the pinned generation.
    pub fn query_text(&self, goal: &str) -> Result<Vec<Answer>> {
        self.translator
            .solve_text_on(self.snapshot.database(), goal)
    }
}

/// The single writer session. Batches committed here become visible to
/// readers only at their next refresh/open. Dropping the session frees
/// the writer slot.
pub struct WriterSession<'a> {
    server: &'a BeliefServer,
}

impl WriterSession<'_> {
    /// Commit one batch of extensional updates across every open level
    /// and publish the next generation. Atomic server-wide: on error
    /// nothing is published, the epoch does not advance, and all levels
    /// are restored to the committed state.
    pub fn commit(&mut self, updates: &[EdbUpdate]) -> Result<CommitSummary> {
        lock(&self.server.inner).commit(updates)
    }

    /// The current global epoch.
    pub fn epoch(&self) -> u64 {
        self.server.epoch()
    }
}

impl Drop for WriterSession<'_> {
    fn drop(&mut self) {
        lock(&self.server.inner).writer_open = false;
    }
}

impl std::fmt::Debug for WriterSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterSession")
            .field("epoch", &self.server.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Head;
    use crate::parser::{parse_clause, parse_database};

    const SRC: &str = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[p(k : a -u-> v)].
        c[p(k : a -c-> t)] <- q(j).
        q(j).
    "#;

    fn server() -> BeliefServer {
        let db = parse_database(SRC).unwrap();
        BeliefServer::new(db, EngineOptions::default())
    }

    fn assert_fact(text: &str) -> EdbUpdate {
        let clause = parse_clause(text).unwrap().remove(0);
        let Head::M(m) = clause.head else {
            panic!("not an m-fact: {text}");
        };
        EdbUpdate::Assert(m)
    }

    fn retract_fact(text: &str) -> EdbUpdate {
        let EdbUpdate::Assert(m) = assert_fact(text) else {
            unreachable!()
        };
        EdbUpdate::Retract(m)
    }

    #[test]
    fn readers_pin_generations_until_refresh() {
        let server = server();
        let mut reader = server.open_reader("s").unwrap();
        assert_eq!(reader.epoch(), 0);
        let goal = "s[p(k2 : a -C-> V)] << opt";
        assert!(reader.query_text(goal).unwrap().is_empty());

        let mut writer = server.open_writer().unwrap();
        let summary = writer
            .commit(&[assert_fact("u[p(k2 : a -u-> w)].")])
            .unwrap();
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.levels["s"].edb_inserted, 1);

        // Still pinned at epoch 0: the commit is invisible.
        assert_eq!(reader.epoch(), 0);
        assert!(reader.query_text(goal).unwrap().is_empty());
        assert_eq!(reader.latest_epoch(), 1);
        // Refresh moves to the new generation.
        assert_eq!(reader.refresh(), 1);
        assert_eq!(reader.query_text(goal).unwrap().len(), 1);
    }

    #[test]
    fn readers_at_distinct_levels_see_their_own_views() {
        let server = server();
        let low = server.open_reader("u").unwrap();
        let high = server.open_reader("s").unwrap();
        // No read up: the c-level derived cell is invisible at u.
        assert!(low.query_text("c[p(k : a -c-> t)]").unwrap().is_empty());
        assert_eq!(high.query_text("c[p(k : a -c-> t)]").unwrap().len(), 1);
        assert_eq!(server.open_levels(), vec!["s", "u"]);
    }

    #[test]
    fn late_opened_level_replays_history() {
        let server = server();
        {
            let mut writer = server.open_writer().unwrap();
            writer
                .commit(&[assert_fact("u[p(k2 : a -u-> w)].")])
                .unwrap();
            writer
                .commit(&[assert_fact("u[p(k3 : a -u-> x)].")])
                .unwrap();
            writer
                .commit(&[retract_fact("u[p(k3 : a -u-> x)].")])
                .unwrap();
        }
        // First open at c happens after three commits: the engine must
        // replay history and the store must align with the global epoch.
        let reader = server.open_reader("c").unwrap();
        assert_eq!(reader.epoch(), 3);
        assert_eq!(
            reader
                .query_text("c[p(k2 : a -u-> w)] << opt")
                .unwrap()
                .len(),
            1
        );
        assert!(reader
            .query_text("c[p(k3 : a -u-> x)] << opt")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn point_query_matches_readers_with_and_without_flow_pruning() {
        let db = parse_database(SRC).unwrap();
        let plain = BeliefServer::new(db.clone(), EngineOptions::default());
        let pruned = BeliefServer::new(
            db,
            EngineOptions {
                flow_prune: true,
                ..EngineOptions::default()
            },
        );
        for user in ["u", "c", "s"] {
            for goal in ["u[p(k : a -u-> V)]", "q(X)", "c[p(k : a -c-> V)] << opt"] {
                let want = plain.open_reader(user).unwrap().query_text(goal).unwrap();
                assert_eq!(plain.point_query(user, goal).unwrap(), want);
                assert_eq!(
                    pruned.point_query(user, goal).unwrap(),
                    want,
                    "goal `{goal}` at {user}"
                );
            }
        }
        // Pruned point queries stay correct across commits (the flow
        // bounds are disabled once history diverges from the base db).
        let mut writer = pruned.open_writer().unwrap();
        writer
            .commit(&[assert_fact("u[p(k9 : a -u-> v9)].")])
            .unwrap();
        let goal = "u[p(k9 : a -u-> V)]";
        assert_eq!(pruned.point_query("u", goal).unwrap().len(), 1);
        let mut reader = pruned.open_reader("u").unwrap();
        reader.refresh();
        assert_eq!(
            pruned.point_query("u", goal).unwrap(),
            reader.query_text(goal).unwrap()
        );
    }

    #[test]
    fn single_writer_enforced() {
        let server = server();
        let first = server.open_writer().unwrap();
        assert!(matches!(
            server.open_writer().err(),
            Some(MultiLogError::WriterBusy)
        ));
        drop(first);
        assert!(server.open_writer().is_ok());
    }

    #[test]
    fn failed_commit_publishes_nothing_and_recovers() {
        let db = parse_database(SRC).unwrap();
        // A budget that clears the base materialization (which
        // transiently buffers ~54 tuples for SRC at level s) but cannot
        // absorb a 60-fact batch and its derived beliefs.
        let server = BeliefServer::new(
            db,
            EngineOptions {
                fact_limit: 100,
                ..EngineOptions::default()
            },
        );
        let mut reader = server.open_reader("s").unwrap();
        // A point goal: the session's fact budget also guards reader
        // queries, and this budget is deliberately small.
        let goal = "s[p(k2 : a -u-> w)] << opt";
        let before = reader.query_text(goal).unwrap();
        let mut writer = server.open_writer().unwrap();
        let batch: Vec<EdbUpdate> = (0..60)
            .map(|i| assert_fact(&format!("u[p(k{i} : a -u-> w)].")))
            .collect();
        let err = writer.commit(&batch);
        assert!(
            matches!(err, Err(MultiLogError::BudgetExceeded { .. })),
            "{err:?}"
        );
        // Nothing published; the reader's world is unchanged even after
        // refresh.
        assert_eq!(server.epoch(), 0);
        assert_eq!(reader.refresh(), 0);
        assert_eq!(reader.query_text(goal).unwrap(), before);
        // The server still works: a retract (which shrinks the database)
        // commits fine afterwards.
        let summary = writer
            .commit(&[retract_fact("u[p(k : a -u-> v)].")])
            .unwrap();
        assert_eq!(summary.epoch, 1);
        assert_eq!(reader.refresh(), 1);
        assert!(reader
            .query_text("s[p(k : a -u-> v)] << opt")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let server = server();
        let _ = server.open_reader("u").unwrap();
        let mut writer = server.open_writer().unwrap();
        let summary = writer.commit(&[]).unwrap();
        assert_eq!(summary.epoch, 0);
        assert!(summary.levels.is_empty());
        assert_eq!(server.epoch(), 0);
    }

    #[test]
    fn unknown_level_rejected_on_open() {
        let server = server();
        assert!(matches!(
            server.open_reader("zz").err(),
            Some(MultiLogError::NotAdmissible { .. })
        ));
    }

    #[test]
    fn reader_sessions_cross_threads() {
        let server = Arc::new(server());
        let reader = server.open_reader("s").unwrap();
        let handle = std::thread::spawn(move || {
            reader
                .query_text("s[p(k : a -u-> v)] << opt")
                .unwrap()
                .len()
        });
        {
            let mut writer = server.open_writer().unwrap();
            writer
                .commit(&[assert_fact("u[p(k9 : a -u-> z)].")])
                .unwrap();
        }
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn validation_errors_do_not_advance_the_epoch() {
        let server = server();
        let _ = server.open_reader("s").unwrap();
        let mut writer = server.open_writer().unwrap();
        let err = writer.commit(&[assert_fact("u[p(K : a -u-> w)].")]);
        assert!(matches!(err, Err(MultiLogError::NonGroundUpdate { .. })));
        assert_eq!(server.epoch(), 0);
        let EdbUpdate::Assert(mut m) = assert_fact("u[p(k : a -u-> w)].") else {
            unreachable!()
        };
        m.level = crate::ast::Term::sym("zz");
        let err = writer.commit(&[EdbUpdate::Assert(m)]);
        assert!(matches!(err, Err(MultiLogError::NotAdmissible { .. })));
        assert_eq!(server.epoch(), 0);
    }
}
