//! **MultiLog** — belief reasoning in multilevel-secure deductive
//! databases (Jamil, SIGMOD 1999).
//!
//! MultiLog extends Datalog with security-labelled atoms and parametric
//! belief. Its language `L = ⟨P, F, A, V, S, ⪯, μ⟩` has five atom kinds:
//!
//! * **m-atoms** `s[p(k : a -c-> v)]` — one column of an MLS tuple: in
//!   predicate `p`, the entity keyed `k` has value `v` for attribute `a`,
//!   classified `c`, asserted at level `s`;
//! * **b-atoms** `s[p(k : a -c-> v)] << m` — a rational agent at level `s`
//!   believes the m-atom in mode `m ∈ {fir, opt, cau, …}`;
//! * **p-atoms** — ordinary Datalog atoms;
//! * **l-atoms** `level(s)` and **h-atoms** `order(l, h)` — declare the
//!   security lattice.
//!
//! A database `Δ = ⟨Λ, Σ, Π, Q⟩` (Definition 5.1) collects the lattice
//! clauses, the secured data clauses, the plain clauses, and queries. This
//! crate provides:
//!
//! * the full AST and a parser for the concrete syntax ([`ast`],
//!   [`parser`]);
//! * admissibility (Def 5.3) and consistency (Def 5.4) checking ([`db`]);
//! * the **operational semantics**: a fixpoint engine whose derivations
//!   are recorded and replayed as the sequent-style proof trees of
//!   Figure 9/11 ([`MultiLogEngine`], [`proof`]);
//! * the **reduction semantics**: the τ translation to Datalog plus the
//!   inference-engine axiom set **A** of Figure 12, executed on the
//!   `multilog-datalog` engine ([`reduce`]);
//! * user-defined belief modes via `bel`-defining rules (§7) ([`modes`]);
//! * the FILTER/FILTER-NULL downward-inheritance extension of Figure 13
//!   ([`filter`]);
//! * a **static-analysis pass** emitting spanned diagnostics with stable
//!   `ML01xx` codes before any evaluation ([`lint`]);
//! * the worked examples of the paper: database D₁ (Figure 10) and the
//!   MultiLog encoding of the `Mission` relation (Example 5.1)
//!   ([`examples`]).
//!
//! The two semantics are proved equivalent in the paper (Theorem 6.1);
//! here they are *tested* equivalent — see `tests/equivalence.rs` at the
//! workspace root.
//!
//! # Example
//!
//! ```
//! use multilog_core::{parse_database, MultiLogEngine};
//!
//! let db = parse_database(
//!     r#"
//!     level(u). level(c). order(u, c).
//!     u[p(k : a -u-> v)].
//!     "#,
//! )
//! .unwrap();
//! let engine = MultiLogEngine::new(&db, "c").unwrap();
//! // An optimistic believer at c sees the u-level fact.
//! let ans = engine.solve_text("c[p(k : a -u-> V)] << opt").unwrap();
//! assert_eq!(ans.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod belief;
pub mod consistency;
pub mod db;
mod engine;
mod error;
pub mod examples;
pub mod filter;
pub mod flow;
pub mod lint;
pub mod live;
pub mod modes;
pub mod parser;
pub mod proof;
pub mod reduce;
pub mod server;

pub use ast::Span;
pub use db::MultiLogDb;
pub use engine::{Answer, ClauseStats, EngineOptions, MultiLogEngine, OperationalStats, PFact};
pub use error::MultiLogError;
pub use flow::{analyze_db, analyze_source, FlowReport, PredKind, PredicateFlow};
pub use lint::{lint_source, lint_source_at, Diagnostic, LintReport, Severity};
pub use multilog_datalog::CancelToken;
pub use parser::{parse_clause, parse_database, parse_goal, parse_items, ParsedProgram};
pub use server::{BeliefServer, CommitSummary, ReaderSession, WriterSession};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MultiLogError>;
