//! The MultiLog abstract syntax: terms, the five atom kinds, molecules,
//! clauses, and goals, with source spans for diagnostics.

use std::fmt;
use std::sync::Arc;

/// A source position (1-based line and column) recorded by the parser on
/// every clause, so lints and errors can point at the offending source.
///
/// A span is *metadata, not identity*: two clauses differing only in
/// spans are equal, so `Span` compares equal to every other `Span` and
/// hashes to nothing. All clauses desugared from one molecular source
/// item share that item's span — analyses use this to group them back.
#[derive(Clone, Copy, Debug, Default)]
pub struct Span {
    /// 1-based source line (0 when unknown).
    pub line: usize,
    /// 1-based source column (0 when unknown).
    pub column: usize,
}

impl Span {
    /// A span at a known position.
    pub fn new(line: usize, column: usize) -> Self {
        Span { line, column }
    }

    /// The span of a programmatically built clause.
    pub fn unknown() -> Self {
        Span::default()
    }

    /// Whether the span points at real source text.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }
}

impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true // spans are diagnostics metadata, never identity
    }
}

impl Eq for Span {}

impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.column)
        } else {
            f.write_str("?:?")
        }
    }
}

/// A term: a variable, a symbolic constant, an integer, `⊥`, or the
/// don't-care `_` (§7 suggests don't-care variables to hide level
/// bookkeeping from users; the parser desugars `_` to fresh variables, so
/// `Term` itself never carries one).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A logic variable (uppercase-leading in the concrete syntax).
    Var(Arc<str>),
    /// A symbolic constant.
    Sym(Arc<str>),
    /// An integer constant.
    Int(i64),
    /// The distinguished null `⊥` (spelled `null` in the syntax).
    Null,
}

impl Term {
    /// Construct a variable.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// Construct a symbol.
    pub fn sym(name: impl AsRef<str>) -> Self {
        Term::Sym(Arc::from(name.as_ref()))
    }

    /// Whether the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Whether the term is ground.
    pub fn is_ground(&self) -> bool {
        !self.is_var()
    }

    /// The variable name, if a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Sym(s) => f.write_str(s),
            Term::Int(i) => write!(f, "{i}"),
            Term::Null => f.write_str("null"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An m-atom `s[p(k : a -c-> v)]` (one labelled column) — Definition of
/// §5.1. The attribute name `a` is part of the syntax (the functional,
/// position-independent view the paper borrows from F-logic).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MAtom {
    /// The security level `s` of the atom (a term: symbol or variable).
    pub level: Term,
    /// The predicate name `p`.
    pub pred: Arc<str>,
    /// The key term `k`.
    pub key: Term,
    /// The attribute name `a`.
    pub attr: Arc<str>,
    /// The classification `c` of the value (a term: symbol or variable).
    pub class: Term,
    /// The value `v`.
    pub value: Term,
}

impl MAtom {
    /// Whether every component is ground.
    pub fn is_ground(&self) -> bool {
        self.level.is_ground()
            && self.key.is_ground()
            && self.class.is_ground()
            && self.value.is_ground()
    }

    /// The variables of the atom, in component order.
    pub fn variables(&self) -> Vec<&str> {
        [&self.level, &self.key, &self.class, &self.value]
            .into_iter()
            .filter_map(Term::as_var)
            .collect()
    }
}

impl fmt::Display for MAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}({} : {} -{}-> {})]",
            self.level, self.pred, self.key, self.attr, self.class, self.value
        )
    }
}

impl fmt::Debug for MAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An m-molecule `s[p(k : a1 -c1-> v1; …; an -cn-> vn)]` — syntactic sugar
/// for the conjunction of its atomic components (footnote 8 of the paper).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MMolecule {
    /// The security level of the molecule.
    pub level: Term,
    /// The predicate name.
    pub pred: Arc<str>,
    /// The key term.
    pub key: Term,
    /// The `(attribute, class, value)` fields.
    pub fields: Vec<(Arc<str>, Term, Term)>,
}

impl MMolecule {
    /// Desugar into atomic m-atoms.
    pub fn atoms(&self) -> Vec<MAtom> {
        self.fields
            .iter()
            .map(|(attr, class, value)| MAtom {
                level: self.level.clone(),
                pred: self.pred.clone(),
                key: self.key.clone(),
                attr: attr.clone(),
                class: class.clone(),
                value: value.clone(),
            })
            .collect()
    }
}

impl fmt::Display for MMolecule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}({} : ", self.level, self.pred, self.key)?;
        for (i, (a, c, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a} -{c}-> {v}")?;
        }
        write!(f, ")]")
    }
}

/// A p-atom: an ordinary Datalog atom.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PAtom {
    /// The predicate name.
    pub pred: Arc<str>,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl PAtom {
    /// The variables of the atom.
    pub fn variables(&self) -> Vec<&str> {
        self.args.iter().filter_map(Term::as_var).collect()
    }
}

impl fmt::Display for PAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for PAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A body or query atom: any of the five atom kinds, plus the internal
/// dominance constraint `l ⪯ h` used by the proof system.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// An m-atom.
    M(MAtom),
    /// A b-atom: an m-atom believed in a mode.
    B(MAtom, Arc<str>),
    /// A p-atom.
    P(PAtom),
    /// An l-atom `level(s)`.
    L(Term),
    /// An h-atom `order(l, h)`.
    H(Term, Term),
    /// A dominance constraint `l ⪯ h` (internal; also usable in queries
    /// via the concrete syntax `l leq h`).
    Leq(Term, Term),
}

impl Atom {
    /// The variables of the atom, in component order.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            Atom::M(m) => m.variables(),
            Atom::B(m, _) => m.variables(),
            Atom::P(p) => p.variables(),
            Atom::L(t) => t.as_var().into_iter().collect(),
            Atom::H(l, h) | Atom::Leq(l, h) => l.as_var().into_iter().chain(h.as_var()).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::M(m) => write!(f, "{m}"),
            Atom::B(m, mode) => write!(f, "{m} << {mode}"),
            Atom::P(p) => write!(f, "{p}"),
            Atom::L(t) => write!(f, "level({t})"),
            Atom::H(l, h) => write!(f, "order({l}, {h})"),
            Atom::Leq(l, h) => write!(f, "{l} leq {h}"),
        }
    }
}

/// A clause head: m-, p-, l-, or h-atom (b-atoms may not appear in heads —
/// §5.1: "we do not have b-clauses").
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Head {
    /// An m-atom head (the clause is an m-clause). Molecular heads are
    /// desugared into one clause per atom by the parser.
    M(MAtom),
    /// A p-atom head.
    P(PAtom),
    /// An l-atom head.
    L(Term),
    /// An h-atom head.
    H(Term, Term),
}

impl Head {
    /// View the head as a body atom (for dependency analysis).
    pub fn as_atom(&self) -> Atom {
        match self {
            Head::M(m) => Atom::M(m.clone()),
            Head::P(p) => Atom::P(p.clone()),
            Head::L(t) => Atom::L(t.clone()),
            Head::H(l, h) => Atom::H(l.clone(), h.clone()),
        }
    }

    /// The variables of the head.
    pub fn variables(&self) -> Vec<&str> {
        self.as_atom_variables()
    }

    fn as_atom_variables(&self) -> Vec<&str> {
        match self {
            Head::M(m) => m.variables(),
            Head::P(p) => p.variables(),
            Head::L(t) => t.as_var().into_iter().collect(),
            Head::H(l, h) => l.as_var().into_iter().chain(h.as_var()).collect(),
        }
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Head::M(m) => write!(f, "{m}"),
            Head::P(p) => write!(f, "{p}"),
            Head::L(t) => write!(f, "level({t})"),
            Head::H(l, h) => write!(f, "order({l}, {h})"),
        }
    }
}

/// An aggregate function usable in a p-atom head argument.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MAggFunc {
    /// `count(V)` — distinct witness bindings per group.
    Count,
    /// `sum(V)` — integer sum over distinct witnesses.
    Sum,
    /// `min(V)` — minimum over distinct witnesses.
    Min,
    /// `max(V)` — maximum over distinct witnesses.
    Max,
}

impl MAggFunc {
    /// The surface keyword (`count`, `sum`, `min`, `max`).
    pub fn keyword(self) -> &'static str {
        match self {
            MAggFunc::Count => "count",
            MAggFunc::Sum => "sum",
            MAggFunc::Min => "min",
            MAggFunc::Max => "max",
        }
    }

    /// Parse a surface keyword.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "count" => Some(MAggFunc::Count),
            "sum" => Some(MAggFunc::Sum),
            "min" => Some(MAggFunc::Min),
            "max" => Some(MAggFunc::Max),
            _ => None,
        }
    }
}

/// An aggregated head argument: the clause's head p-atom carries the
/// aggregated variable as a plain term at `position`; the remaining head
/// arguments form the group-by key. Semantics follow the Datalog layer:
/// the fold runs over *distinct witness bindings* of the clause body
/// (bag semantics over the deduplicated witness set), so polyinstantiated
/// m-atoms at different levels count separately.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MAggregate {
    /// The aggregate function.
    pub func: MAggFunc,
    /// The head argument position being aggregated.
    pub position: usize,
}

/// A MultiLog clause `Head <- B1, …, Bm.`
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Clause {
    /// The head.
    pub head: Head,
    /// The body atoms.
    pub body: Vec<Atom>,
    /// Aggregate annotation for p-atom heads like
    /// `total(H, count(K)) <- …` (None for ordinary clauses).
    pub agg: Option<MAggregate>,
    /// Where the clause came from (ignored by equality and hashing).
    /// Clauses desugared from one molecular item share one span.
    pub span: Span,
}

impl Clause {
    /// Construct a rule.
    pub fn new(head: Head, body: Vec<Atom>) -> Self {
        Clause {
            head,
            body,
            agg: None,
            span: Span::unknown(),
        }
    }

    /// Construct a fact.
    pub fn fact(head: Head) -> Self {
        Clause::new(head, Vec::new())
    }

    /// Attach a source span (builder-style, used by the parser).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Mark the clause as an aggregate rule (builder-style).
    pub fn with_agg(mut self, agg: MAggregate) -> Self {
        self.agg = Some(agg);
        self
    }

    /// Whether the clause is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Whether the clause body calls a native algorithm operator
    /// (`@name(...)` p-atom).
    pub fn uses_algo(&self) -> bool {
        self.body
            .iter()
            .any(|a| matches!(a, Atom::P(p) if p.pred.starts_with('@')))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.head, self.agg) {
            (Head::P(p), Some(agg)) => {
                write!(f, "{}(", p.pred)?;
                for (i, a) in p.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if i == agg.position {
                        write!(f, "{}({a})", agg.func.keyword())?;
                    } else {
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")?;
            }
            _ => write!(f, "{}", self.head)?,
        }
        if !self.body.is_empty() {
            write!(f, " <- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ".")
    }
}

/// A goal: a conjunction of atoms (the `Q` component of a database holds
/// one clause `<- B1, …, Bm` per query).
pub type Goal = Vec<Atom>;

#[cfg(test)]
mod tests {
    use super::*;

    fn matom() -> MAtom {
        MAtom {
            level: Term::sym("s"),
            pred: Arc::from("mission"),
            key: Term::sym("avenger"),
            attr: Arc::from("objective"),
            class: Term::sym("s"),
            value: Term::sym("shipping"),
        }
    }

    #[test]
    fn matom_display_matches_paper_syntax() {
        assert_eq!(
            matom().to_string(),
            "s[mission(avenger : objective -s-> shipping)]"
        );
    }

    #[test]
    fn batom_display() {
        let b = Atom::B(matom(), Arc::from("cau"));
        assert_eq!(
            b.to_string(),
            "s[mission(avenger : objective -s-> shipping)] << cau"
        );
    }

    #[test]
    fn molecule_desugars_in_order() {
        let m = MMolecule {
            level: Term::sym("s"),
            pred: Arc::from("mission"),
            key: Term::sym("avenger"),
            fields: vec![
                (
                    Arc::from("objective"),
                    Term::sym("s"),
                    Term::sym("shipping"),
                ),
                (Arc::from("destination"), Term::sym("s"), Term::sym("pluto")),
            ],
        };
        let atoms = m.atoms();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].attr.as_ref(), "objective");
        assert_eq!(atoms[1].value, Term::sym("pluto"));
        assert!(m.to_string().contains("; destination -s-> pluto"));
    }

    #[test]
    fn variables_in_component_order() {
        let m = MAtom {
            level: Term::var("L"),
            pred: Arc::from("p"),
            key: Term::var("K"),
            attr: Arc::from("a"),
            class: Term::var("C"),
            value: Term::var("V"),
        };
        assert_eq!(m.variables(), vec!["L", "K", "C", "V"]);
        assert!(!m.is_ground());
        assert!(matom().is_ground());
    }

    #[test]
    fn clause_display() {
        let c = Clause::new(
            Head::M(matom()),
            vec![
                Atom::P(PAtom {
                    pred: Arc::from("q"),
                    args: vec![Term::sym("j")],
                }),
                Atom::Leq(Term::sym("u"), Term::var("H")),
            ],
        );
        assert_eq!(
            c.to_string(),
            "s[mission(avenger : objective -s-> shipping)] <- q(j), u leq H."
        );
    }

    #[test]
    fn zero_arity_patom() {
        let p = PAtom {
            pred: Arc::from("go"),
            args: vec![],
        };
        assert_eq!(p.to_string(), "go");
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::Null.to_string(), "null");
        assert_eq!(Term::Int(5).to_string(), "5");
        assert_eq!(Term::var("X").to_string(), "X");
    }
}
