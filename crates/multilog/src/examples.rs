//! The paper's worked examples: database D₁ (Figure 10), the MultiLog
//! encoding of the `Mission` relation (Example 5.1), and a generic
//! converter from MLS relational instances to MultiLog databases.

use std::fmt::Write as _;

use multilog_mlsrel::{MlsRelation, Value};

use crate::db::MultiLogDb;
use crate::parser::parse_database;
use crate::Result;

/// The source text of database D₁ (Figure 10), rules r₁–r₉, plus the
/// Figure 11 query r₁₀ in `Q`.
pub const D1_SOURCE: &str = r#"
% Database D1 (Figure 10).
level(u).                                            % r1
level(c).                                            % r2
level(s).                                            % r3
order(u, c).                                         % r4
order(c, s).                                         % r5
u[p(k : a -u-> v)].                                  % r6
c[p(k : a -c-> t)] <- q(j).                          % r7
s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.     % r8
q(j).                                                % r9
<- c[p(k : a -u-> v)] << opt.                        % r10 (Figure 11 query)
"#;

/// Parse database D₁.
pub fn d1() -> MultiLogDb {
    parse_database(D1_SOURCE).expect("D1 is well-formed")
}

/// Convert an MLS relational instance into MultiLog source text: one
/// molecule per tuple (Example 5.1's encoding), with `level`/`order`
/// facts for the relation's lattice.
///
/// Symbols are lowercased to fit the MultiLog lexical convention; `⊥`
/// becomes `null`.
pub fn encode_relation(rel: &MlsRelation) -> String {
    let lat = rel.lattice();
    let mut out = String::new();
    for name in lat.names() {
        let _ = writeln!(out, "level({}).", sym(name));
    }
    for &(lo, hi) in lat.covers() {
        let _ = writeln!(out, "order({}, {}).", sym(lat.name(lo)), sym(lat.name(hi)));
    }
    let pred = sym(rel.scheme().name());
    let attrs: Vec<String> = rel.scheme().attr_names().map(sym).collect();
    for t in rel.tuples() {
        let key = value_sym(t.key());
        let fields: Vec<String> = attrs
            .iter()
            .zip(t.values.iter().zip(&t.classes))
            .map(|(attr, (v, &c))| format!("{attr} -{}-> {}", sym(lat.name(c)), value_sym(v)))
            .collect();
        let _ = writeln!(
            out,
            "{}[{pred}({key} : {})].",
            sym(lat.name(t.tc)),
            fields.join("; ")
        );
    }
    out
}

/// The MultiLog encoding of the Figure 1 `Mission` relation as a parsed
/// database (Example 5.1 applied to all ten tuples).
pub fn mission_db() -> Result<MultiLogDb> {
    let (_, rel) = multilog_mlsrel::mission::mission_relation();
    parse_database(&encode_relation(&rel))
}

/// Lower and sanitize a name so it lexes as a bare MultiLog identifier;
/// shared with the live-update bridge so incremental updates and the
/// textual encoding agree on every symbol.
pub(crate) fn sym(s: &str) -> String {
    let lowered: String = s.to_lowercase();
    // Ensure the result lexes as a bare identifier.
    if lowered
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase())
        && lowered
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        lowered
    } else {
        format!(
            "x_{}",
            lowered.replace(|c: char| !c.is_ascii_alphanumeric(), "_")
        )
    }
}

fn value_sym(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Str(s) => sym(s),
        Value::Int(i) => i.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_goal, MultiLogEngine};

    #[test]
    fn d1_matches_figure10_shape() {
        let db = d1();
        assert_eq!(db.lambda().len(), 5); // r1–r5
        assert_eq!(db.sigma().len(), 3); // r6–r8
        assert_eq!(db.pi().len(), 1); // r9
        assert_eq!(db.queries().len(), 1); // r10
    }

    #[test]
    fn d1_figure11_query_succeeds_at_c() {
        let db = d1();
        let e = MultiLogEngine::new(&db, "c").unwrap();
        let q = db.queries()[0].clone();
        let ans = e.solve(&q).unwrap();
        assert_eq!(ans.len(), 1, "the r10 query has exactly one proof");
    }

    #[test]
    fn mission_encoding_roundtrips() {
        let db = mission_db().unwrap();
        // 10 tuples × 3 attributes = 30 m-clauses; 3 levels; 2 orders.
        assert_eq!(db.sigma().len(), 30);
        assert_eq!(db.lambda().len(), 5);
        let e = MultiLogEngine::new(&db, "s").unwrap();
        assert_eq!(e.mfacts().len(), 30);
    }

    #[test]
    fn mission_spying_on_mars_query() {
        // The §3.2 query in MultiLog form: starships believed to be
        // spying on Mars in every mode at level s.
        let db = mission_db().unwrap();
        let e = MultiLogEngine::new(&db, "s").unwrap();
        for mode in ["fir", "opt", "cau"] {
            let goal = parse_goal(&format!(
                "s[mission(K : objective -C1-> spying)] << {mode}, \
                 s[mission(K : destination -C2-> mars)] << {mode}"
            ))
            .unwrap();
            let ans = e.solve(&goal).unwrap();
            let ships: Vec<_> = ans.iter().map(|a| a["K"].clone()).collect();
            assert!(
                ships.contains(&crate::ast::Term::sym("voyager")),
                "mode {mode}: {ships:?}"
            );
        }
    }

    #[test]
    fn mission_u_level_sees_no_spying() {
        let db = mission_db().unwrap();
        let e = MultiLogEngine::new(&db, "u").unwrap();
        let ans = e
            .solve_text("L[mission(K : objective -C-> spying)]")
            .unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn encode_handles_nulls_and_odd_names() {
        use multilog_mlsrel::{MlsRelation, MlsScheme, MlsTuple};
        use std::sync::Arc;
        let lat = Arc::new(multilog_lattice::standard::total_order(&["low", "high"]));
        let scheme = MlsScheme::unconstrained("R 2", lat.clone(), &["K", "A"]);
        let mut rel = MlsRelation::new(scheme);
        let low = lat.label("low").unwrap();
        rel.insert(MlsTuple::new(
            vec![Value::str("Key-1"), Value::Null],
            vec![low, low],
            low,
        ))
        .unwrap();
        let src = encode_relation(&rel);
        assert!(src.contains("null"), "{src}");
        let db = parse_database(&src).unwrap();
        assert_eq!(db.sigma().len(), 2);
    }
}
