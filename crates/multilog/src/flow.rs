//! Lattice-flow abstract interpretation over MultiLog programs: the
//! `ML02xx` interprocedural inference-channel analysis.
//!
//! The lint pass (`ML01xx`, [`crate::lint`]) judges each clause in
//! isolation. This module runs a whole-program *abstract
//! interpretation* over the Σ/Π rule dependency graph: the abstract
//! domain is [`LabelInterval`] — sound bounds on the security labels
//! each predicate can achieve in its level and classification
//! positions (and, for p-predicates, each argument position) — and
//! the transfer functions are monotone joins over that finite domain,
//! so the per-SCC fixpoint terminates without widening.
//!
//! Two consumers sit on top of the fixpoint:
//!
//! * **Diagnostics `ML0201`–`ML0206`** — interprocedural channels the
//!   per-clause lints cannot see: downward flows through rule chains,
//!   cover-story inference channels (Proposition 5.1 lifted from fact
//!   pairs to rule-derived values), level-escalating recursion,
//!   belief-mode instability, rules dead at *every* clearance, and
//!   facts asserted at levels no consumer can reach.
//! * **Demand pruning** — [`FlowReport::rule_prunable`] answers, for a
//!   concrete clearance, whether a rule can be dropped from a demand
//!   cone without changing any answer. The reduced engine
//!   ([`crate::reduce::ReducedEngine`]) consults it when
//!   [`crate::EngineOptions::flow_prune`] is set.
//!
//! # Soundness
//!
//! Interval frontiers only ever contain labels that some derivation
//! actually achieves (see [`LabelInterval`]), so
//! [`LabelInterval::may_flow_below`] is exact, not merely sound. The
//! bounds are computed from the *static* program; runtime updates can
//! widen achieved label sets, so the pruning oracle splits its
//! criteria into update-independent ones (ground labels, which no
//! update can change because the lattice and clearance are fixed) and
//! bounds-based ones, which callers must disable once updates have
//! been applied (`use_bounds = false`).
//!
//! The FILTER/FILTER-NULL environments of Figure 13 are not modelled:
//! they only suppress *presentation* of otherwise-derivable answers,
//! never enable new derivations, so the bounds remain sound for them.

use std::collections::{BTreeMap, HashMap, HashSet};

use multilog_datalog::analyze::shared;
use multilog_datalog::DepGraph;
use multilog_lattice::{Label, LabelInterval, SecurityLattice};

use crate::ast::{Atom, Clause, Goal, Head, Span, Term};
use crate::belief::Mode;
use crate::db::{eval_lambda, MultiLogDb};
use crate::lint::{build_lattice, diagnostics_json, Diagnostic, LintReport, Severity};
use crate::parser::{parse_items, ParsedProgram};
use crate::Result;

/// The two predicate namespaces the flow analysis tracks: m-predicates
/// (Σ relations with level/key/class/value columns) and p-predicates
/// (ordinary Datalog relations, Π).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredKind {
    /// An m-predicate.
    M,
    /// A p-predicate.
    P,
}

impl PredKind {
    /// The one-letter namespace tag used in rendered output: `"m"` or
    /// `"p"`.
    pub fn tag(self) -> &'static str {
        match self {
            PredKind::M => "m",
            PredKind::P => "p",
        }
    }
}

/// One clause's contribution to a predicate's achieved labels: where it
/// is, whether it is a rule or a plain fact, and the level/class
/// intervals its head resolves to under the fixpoint environment.
#[derive(Clone, Debug)]
pub struct FlowSource {
    /// Source position of the contributing clause.
    pub span: Span,
    /// `true` for a rule, `false` for a fact.
    pub is_rule: bool,
    /// The clause, rendered.
    pub text: String,
    /// Levels this clause's head can be asserted at.
    pub level: LabelInterval,
    /// Classifications this clause's head can carry.
    pub class: LabelInterval,
}

/// The fixpoint result for one predicate: sound bounds on every label
/// position, liveness, the belief modes it is consulted under, and the
/// per-clause contributions behind the bounds.
#[derive(Clone, Debug)]
pub struct PredicateFlow {
    /// Which namespace the predicate lives in.
    pub kind: PredKind,
    /// The predicate name.
    pub name: String,
    /// Achieved assertion levels (m-predicates; empty for
    /// p-predicates).
    pub level: LabelInterval,
    /// Achieved value classifications (m-predicates; empty for
    /// p-predicates).
    pub class: LabelInterval,
    /// Achieved labels per argument position (p-predicates; empty for
    /// m-predicates). Positions never fed a declared label stay at the
    /// full interval or empty depending on liveness.
    pub args: Vec<LabelInterval>,
    /// Whether the predicate can possibly hold any tuple (the
    /// `possibly_nonempty` fixpoint; `false` means every clause for it
    /// is transitively blocked on an empty predicate).
    pub nonempty: bool,
    /// Distinct consult modes, sorted: `"m"` for a plain m-atom
    /// occurrence, otherwise the b-atom mode string.
    pub modes: Vec<String>,
    /// Per-clause head contributions, in program order. Facts are
    /// deduplicated by achieved-label signature: one representative
    /// stands for every fact of the predicate with the same labels.
    pub sources: Vec<FlowSource>,
}

/// A body or query site that consults an m-predicate — the consumer
/// side ML0204/ML0206 reason over.
#[derive(Clone, Debug)]
struct Consumer {
    span: Span,
    /// `None` for a plain m-atom, `Some(mode)` for a b-atom.
    mode: Option<String>,
    level: Term,
    class: Term,
    /// Ground labels of the whole consuming clause or query — the
    /// visibility context a clearance must dominate for the site to
    /// fire at all.
    ground: Vec<Label>,
}

impl Consumer {
    /// Whether the site consults through a user-defined (§7) mode,
    /// whose `bel/7` rules can derive beliefs from anything.
    fn is_custom(&self) -> bool {
        self.mode
            .as_deref()
            .is_some_and(|m| Mode::parse(m).is_none())
    }
}

/// The outcome of the lattice-flow analysis: per-predicate bounds plus
/// the `ML02xx` diagnostics, rendered through the same report
/// machinery as the lint pass.
#[derive(Clone, Debug)]
pub struct FlowReport {
    lattice: Option<SecurityLattice>,
    preds: BTreeMap<(PredKind, String), PredicateFlow>,
    report: LintReport,
}

/// Run the flow analysis over MultiLog source text. `Err` only on a
/// syntax error; every finding becomes a diagnostic in the report.
pub fn analyze_source(src: &str) -> Result<FlowReport> {
    let prog = parse_items(src)?;
    Ok(analyze_program(&prog, src))
}

/// Run the flow analysis over an already-parsed program, with the
/// source text kept for rendering.
pub fn analyze_program(prog: &ParsedProgram, src: &str) -> FlowReport {
    let clauses: Vec<&Clause> = prog.clauses.iter().collect();
    let queries: Vec<(&Goal, Span)> = prog
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            (
                q,
                prog.query_spans
                    .get(i)
                    .copied()
                    .unwrap_or_else(Span::unknown),
            )
        })
        .collect();
    analyze_clauses(&clauses, &queries, src.to_owned())
}

/// Run the flow analysis over a validated database (no source text —
/// diagnostics carry unknown spans). This is the entry the reduced
/// engine uses for demand pruning.
pub fn analyze_db(db: &MultiLogDb) -> FlowReport {
    let clauses: Vec<&Clause> = db.clauses().collect();
    let queries: Vec<(&Goal, Span)> = db.queries().iter().map(|q| (q, Span::unknown())).collect();
    analyze_clauses(&clauses, &queries, String::new())
}

fn analyze_clauses(clauses: &[&Clause], queries: &[(&Goal, Span)], source: String) -> FlowReport {
    let mut lambda: Vec<Clause> = Vec::new();
    let mut rules: Vec<&Clause> = Vec::new();
    for c in clauses {
        match &c.head {
            Head::L(_) | Head::H(_, _) => lambda.push((*c).clone()),
            Head::M(_) | Head::P(_) => rules.push(c),
        }
    }
    let (levels, orders) = eval_lambda(&lambda);
    let Some(lat) = build_lattice(&levels, &orders) else {
        // Pure-Π program (Prop 6.1 degenerates to Datalog) or a broken
        // lattice the lint pass reports; there is no flow to analyse.
        return FlowReport {
            lattice: None,
            preds: BTreeMap::new(),
            report: LintReport::from_parts(Vec::new(), source),
        };
    };
    let mut flow = Flow::new(lat, rules, queries);
    flow.run_fixpoint();
    flow.collect_sources();
    flow.collect_consumers();
    flow.check_downward_flow(); //        ML0201
    flow.check_inference_channels(); //   ML0202
    flow.check_escalating_recursion(); // ML0203
    flow.check_mode_instability(); //     ML0204
    flow.check_dead_at_every_clearance(); // ML0205
    flow.check_unreachable_facts(); //    ML0206
    flow.into_report(source)
}

/// A ground m-fact resolved to `(head node, level label, class label)`
/// once at construction — see `Flow::ground_facts`.
type GroundFact = (usize, Option<Label>, Option<Label>);

/// Working state of one analysis run.
struct Flow<'p> {
    lat: SecurityLattice,
    /// Σ ∪ Π clauses (rules and facts), program order.
    rules: Vec<&'p Clause>,
    queries: &'p [(&'p Goal, Span)],
    /// Interned `(kind, name)` nodes.
    nodes: Vec<(PredKind, String)>,
    /// Name → node, one map per namespace so lookups borrow the name.
    index_m: HashMap<String, usize>,
    index_p: HashMap<String, usize>,
    /// *Rule* clause indices grouped by head node (facts are constant
    /// transfers and are applied once, outside the fixpoint).
    by_head: Vec<Vec<usize>>,
    /// Per-clause cache for ground m-facts — `(head node, level label,
    /// class label)` resolved once at construction, so the per-fact
    /// passes (seeding, sources, ML0206) never re-hash predicate or
    /// label names. `None` for rules and for facts that are not ground
    /// m-facts.
    ground_facts: Vec<Option<GroundFact>>,
    /// Clause indices of non-facts, program order — the rule-oriented
    /// passes (ML0201/ML0203/ML0205, consumer collection) iterate these
    /// instead of rescanning the whole database.
    non_facts: Vec<usize>,
    graph: DepGraph,
    nonempty: Vec<bool>,
    level: Vec<LabelInterval>,
    class: Vec<LabelInterval>,
    args: Vec<Vec<LabelInterval>>,
    sources: Vec<Vec<FlowSource>>,
    consumers: Vec<Vec<Consumer>>,
    out: Vec<Diagnostic>,
}

impl<'p> Flow<'p> {
    fn new(lat: SecurityLattice, rules: Vec<&'p Clause>, queries: &'p [(&'p Goal, Span)]) -> Self {
        let mut nodes: Vec<(PredKind, String)> = Vec::new();
        let mut index_m: HashMap<String, usize> = HashMap::new();
        let mut index_p: HashMap<String, usize> = HashMap::new();
        let mut arity: HashMap<usize, usize> = HashMap::new();
        let intern = |index_m: &mut HashMap<String, usize>,
                      index_p: &mut HashMap<String, usize>,
                      nodes: &mut Vec<(PredKind, String)>,
                      kind: PredKind,
                      name: &str| {
            let map = match kind {
                PredKind::M => index_m,
                PredKind::P => index_p,
            };
            match map.get(name) {
                Some(&i) => i,
                None => {
                    nodes.push((kind, name.to_owned()));
                    map.insert(name.to_owned(), nodes.len() - 1);
                    nodes.len() - 1
                }
            }
        };
        let mut abs: Vec<shared::AbstractClause> = Vec::new();
        let mut edges: Vec<(usize, usize, bool)> = Vec::new();
        let mut by_head_pairs: Vec<(usize, usize)> = Vec::new();
        let mut ground_facts: Vec<Option<GroundFact>> = vec![None; rules.len()];
        let mut non_facts: Vec<usize> = Vec::new();
        let mut fact_seed: Vec<bool> = Vec::new();
        // Bulk fact loads repeat the same predicate and a handful of
        // label names thousands of times; a last-head memo and a sorted
        // name table keep this loop free of hashing.
        let label_index: Vec<(&str, Label)> = {
            let mut v: Vec<(&str, Label)> = lat.labels().map(|l| (lat.name(l), l)).collect();
            v.sort_unstable_by(|a, b| a.0.cmp(b.0));
            v
        };
        let find_label = |name: &str| -> Option<Label> {
            label_index
                .binary_search_by(|(n, _)| (*n).cmp(name))
                .ok()
                .map(|i| label_index[i].1)
        };
        let mut last_m: Option<(&'p str, usize)> = None;
        let mut last_p: Option<(&'p str, usize)> = None;
        for (ci, &c) in rules.iter().enumerate() {
            let head = match &c.head {
                Head::M(m) => match last_m {
                    Some((n, i)) if *n == *m.pred => i,
                    _ => {
                        let i =
                            intern(&mut index_m, &mut index_p, &mut nodes, PredKind::M, &m.pred);
                        last_m = Some((&m.pred, i));
                        i
                    }
                },
                Head::P(p) => {
                    let n = match last_p {
                        Some((n, i)) if *n == *p.pred => i,
                        _ => {
                            let i = intern(
                                &mut index_m,
                                &mut index_p,
                                &mut nodes,
                                PredKind::P,
                                &p.pred,
                            );
                            last_p = Some((&p.pred, i));
                            i
                        }
                    };
                    let a = arity.entry(n).or_insert(0);
                    *a = (*a).max(p.args.len());
                    n
                }
                Head::L(_) | Head::H(_, _) => continue,
            };
            if c.is_fact() {
                // Facts fire vacuously: seed the nonempty fixpoint
                // directly instead of carrying one abstract clause per
                // fact, and cache ground m-fact labels for the per-fact
                // passes.
                if head >= fact_seed.len() {
                    fact_seed.resize(head + 1, false);
                }
                fact_seed[head] = true;
                if let Head::M(m) = &c.head {
                    if let (Term::Sym(ls), Term::Sym(cs)) = (&m.level, &m.class) {
                        ground_facts[ci] = Some((head, find_label(ls), find_label(cs)));
                    }
                }
                continue;
            }
            by_head_pairs.push((head, ci));
            non_facts.push(ci);
            let mut deps = Vec::new();
            for a in &c.body {
                if let Some((k, name)) = atom_dep(a) {
                    let d = intern(&mut index_m, &mut index_p, &mut nodes, k, name);
                    if let Atom::P(p) = a {
                        let ar = arity.entry(d).or_insert(0);
                        *ar = (*ar).max(p.args.len());
                    }
                    deps.push(d);
                    edges.push((d, head, false));
                }
            }
            abs.push(shared::AbstractClause {
                head,
                positive_body: deps,
            });
        }
        for (q, _) in queries {
            for a in q.iter() {
                if let Some((k, name)) = atom_dep(a) {
                    let d = intern(&mut index_m, &mut index_p, &mut nodes, k, name);
                    if let Atom::P(p) = a {
                        let ar = arity.entry(d).or_insert(0);
                        *ar = (*ar).max(p.args.len());
                    }
                }
            }
        }
        let n = nodes.len();
        fact_seed.resize(n, false);
        let nonempty = shared::possibly_nonempty_from(fact_seed, &abs);
        let names: Vec<String> = nodes
            .iter()
            .map(|(k, p)| format!("{}:{}", k.tag(), p))
            .collect();
        let graph = DepGraph::from_edges(names, edges);
        let mut by_head: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (head, ci) in by_head_pairs {
            by_head[head].push(ci);
        }
        let args = (0..n)
            .map(|i| vec![LabelInterval::empty(); arity.get(&i).copied().unwrap_or(0)])
            .collect();
        Flow {
            lat,
            rules,
            queries,
            nodes,
            index_m,
            index_p,
            by_head,
            ground_facts,
            non_facts,
            graph,
            nonempty,
            level: vec![LabelInterval::empty(); n],
            class: vec![LabelInterval::empty(); n],
            args,
            sources: vec![Vec::new(); n],
            consumers: vec![Vec::new(); n],
            out: Vec::new(),
        }
    }

    /// A flat `nodes × (labels+1)²` dedup table plus its stride, keyed
    /// by a cached ground fact's `(node, level, class)` — slot 0 in each
    /// label dimension stands for an undeclared name.
    fn fact_table(&self) -> (usize, Vec<bool>) {
        let stride = self.lat.len() + 1;
        (stride, vec![false; self.nodes.len() * stride * stride])
    }

    fn fact_key(stride: usize, i: usize, lf: Option<Label>, cf: Option<Label>) -> usize {
        let slot = |l: Option<Label>| l.map(|l| l.index() + 1).unwrap_or(0);
        (i * stride + slot(lf)) * stride + slot(cf)
    }

    fn node(&self, kind: PredKind, name: &str) -> Option<usize> {
        let map = match kind {
            PredKind::M => &self.index_m,
            PredKind::P => &self.index_p,
        };
        map.get(name).copied()
    }

    /// The achieved level/class intervals of an m-predicate (empty when
    /// the predicate is unknown — nothing ever defines it).
    fn m_intervals(&self, pred: &str) -> (LabelInterval, LabelInterval) {
        match self.node(PredKind::M, pred) {
            Some(i) => (self.level[i].clone(), self.class[i].clone()),
            None => (LabelInterval::empty(), LabelInterval::empty()),
        }
    }

    /// Whether every body atom's predicate can possibly hold tuples —
    /// the firing gate of the transfer function.
    fn body_live(&self, body: &[Atom]) -> bool {
        body.iter().all(|a| match atom_dep(a) {
            Some((k, name)) => self
                .node(k, name)
                .map(|i| self.nonempty[i])
                .unwrap_or(false),
            None => true,
        })
    }

    /// The abstract environment of one clause body: each variable maps
    /// to a sound bound on the labels it can be bound to. A variable
    /// may occur in several positions; any single occurrence's
    /// constraint over-approximates the binding, so the most precise
    /// (lowest-priority-number) position wins: m-atom level (0), m-atom
    /// class (1), p-atom argument (2), anything else (3, the full
    /// interval). Non-label bindings (keys, values, integers) are
    /// harmless here: the `dominate` guards the reduction appends admit
    /// only declared levels into observable label positions.
    fn clause_env<'a>(&self, body: &'a [Atom]) -> HashMap<&'a str, (u8, LabelInterval)> {
        let mut env: HashMap<&'a str, (u8, LabelInterval)> = HashMap::new();
        if body.is_empty() {
            return env; // facts: nothing to bind
        }
        fn bind<'a>(
            env: &mut HashMap<&'a str, (u8, LabelInterval)>,
            t: &'a Term,
            prio: u8,
            iv: LabelInterval,
        ) {
            if let Some(name) = t.as_var() {
                let better = env.get(name).map(|&(p, _)| prio < p).unwrap_or(true);
                if better {
                    env.insert(name, (prio, iv));
                }
            }
        }
        let full = LabelInterval::full(&self.lat);
        for a in body {
            match a {
                Atom::M(m) => {
                    let (lv, cv) = self.m_intervals(&m.pred);
                    bind(&mut env, &m.level, 0, lv);
                    bind(&mut env, &m.class, 1, cv);
                    bind(&mut env, &m.key, 3, full.clone());
                    bind(&mut env, &m.value, 3, full.clone());
                }
                Atom::B(m, mode) => {
                    // A user-defined mode's bel/7 rules may put
                    // anything in the level/class positions.
                    let (lv, cv) = if Mode::parse(mode).is_some() {
                        self.m_intervals(&m.pred)
                    } else {
                        (full.clone(), full.clone())
                    };
                    bind(&mut env, &m.level, 0, lv);
                    bind(&mut env, &m.class, 1, cv);
                    bind(&mut env, &m.key, 3, full.clone());
                    bind(&mut env, &m.value, 3, full.clone());
                }
                Atom::P(p) => {
                    let node = self.node(PredKind::P, &p.pred);
                    for (i, t) in p.args.iter().enumerate() {
                        let iv = node
                            .and_then(|n| self.args[n].get(i).cloned())
                            .unwrap_or_else(|| full.clone());
                        bind(&mut env, t, 2, iv);
                    }
                }
                Atom::L(t) => bind(&mut env, t, 3, full.clone()),
                Atom::H(l, h) | Atom::Leq(l, h) => {
                    bind(&mut env, l, 3, full.clone());
                    bind(&mut env, h, 3, full.clone());
                }
            }
        }
        env
    }

    /// Resolve a label-position term to its achieved interval: a
    /// declared label is a point, an undeclared symbol / integer /
    /// null achieves nothing, and a variable reads the environment
    /// (unconstrained head variables — an ML0101 error — degrade to
    /// the full interval, staying sound).
    fn resolve(&self, env: &HashMap<&str, (u8, LabelInterval)>, t: &Term) -> LabelInterval {
        match t {
            Term::Sym(s) => self
                .lat
                .label(s)
                .map(LabelInterval::point)
                .unwrap_or_default(),
            Term::Int(_) | Term::Null => LabelInterval::empty(),
            Term::Var(v) => env
                .get(v.as_ref())
                .map(|(_, iv)| iv.clone())
                .unwrap_or_else(|| LabelInterval::full(&self.lat)),
        }
    }

    /// One monotone transfer step for a clause; `true` if the head
    /// predicate's intervals grew.
    fn transfer(&mut self, c: &Clause) -> bool {
        if !self.body_live(&c.body) {
            return false;
        }
        let env = self.clause_env(&c.body);
        match &c.head {
            Head::M(m) => {
                let lv = self.resolve(&env, &m.level);
                let cv = self.resolve(&env, &m.class);
                let Some(i) = self.node(PredKind::M, &m.pred) else {
                    return false;
                };
                let a = self.level[i].join(&self.lat, &lv);
                let b = self.class[i].join(&self.lat, &cv);
                a || b
            }
            Head::P(p) => {
                let ivs: Vec<LabelInterval> =
                    p.args.iter().map(|t| self.resolve(&env, t)).collect();
                let Some(i) = self.node(PredKind::P, &p.pred) else {
                    return false;
                };
                let mut changed = false;
                for (pos, iv) in ivs.into_iter().enumerate() {
                    if let Some(slot) = self.args[i].get_mut(pos) {
                        changed |= slot.join(&self.lat, &iv);
                    }
                }
                changed
            }
            Head::L(_) | Head::H(_, _) => false,
        }
    }

    /// The per-SCC fixpoint: process condensation groups in dependency
    /// order; within a group, iterate the member clauses until stable.
    /// The domain (antichain pairs over a finite poset, per predicate)
    /// is finite and the transfer functions only join, so each inner
    /// loop terminates.
    fn run_fixpoint(&mut self) {
        // Facts have no body: their transfer is a constant, so one pass
        // over them seeds the intervals and the fixpoint below only
        // iterates genuine rules (`by_head` holds rules only). Ground
        // m-facts — the bulk of any real database — join their two
        // point labels directly, skipping the environment machinery.
        let (stride, mut seeded) = self.fact_table();
        for ci in 0..self.rules.len() {
            let c = self.rules[ci];
            if !c.is_fact() {
                continue;
            }
            if let Some((i, lf, cf)) = self.ground_facts[ci] {
                let key = Self::fact_key(stride, i, lf, cf);
                if seeded[key] {
                    continue; // same labels already joined
                }
                seeded[key] = true;
                if let Some(l) = lf {
                    self.level[i].join_label(&self.lat, l);
                }
                if let Some(cl) = cf {
                    self.class[i].join_label(&self.lat, cl);
                }
                continue;
            }
            self.transfer(c);
        }
        for group in self.graph.condensation() {
            let clause_ids: Vec<usize> = group
                .iter()
                .flat_map(|&node| self.by_head[node].iter().copied())
                .collect();
            if clause_ids.is_empty() {
                continue;
            }
            loop {
                let mut changed = false;
                for &ci in &clause_ids {
                    let c = self.rules[ci];
                    changed |= self.transfer(c);
                }
                if !changed {
                    break;
                }
            }
        }
    }

    /// Post-fixpoint pass: record each live clause's head contribution
    /// (the evidence `--explain` and ML0202 present).
    ///
    /// Rules are recorded one by one, but *facts* are deduplicated per
    /// achieved-label signature: every downstream consumer of a source
    /// (the bounds themselves, ML0202's frontier pairing, `--explain`)
    /// reasons over achieved labels, never over fact multiplicity, so
    /// a predicate with thousands of same-labelled facts contributes
    /// one representative. This keeps the preflight linear in distinct
    /// label combinations (≤ |lattice|²) rather than in data volume.
    fn collect_sources(&mut self) {
        // Ground m-facts (the bulk of real data) dedup on their cached
        // point labels through a flat table — no hashing, no
        // environment machinery; everything else goes through the
        // generic signature.
        let (stride, mut seen_m) = self.fact_table();
        let mut seen_sig: HashSet<(usize, Vec<Option<Label>>)> = HashSet::new();
        for ci in 0..self.rules.len() {
            let c = self.rules[ci];
            if !self.body_live(&c.body) {
                continue;
            }
            if c.is_fact() {
                if let Some((i, lf, cf)) = self.ground_facts[ci] {
                    let key = Self::fact_key(stride, i, lf, cf);
                    if seen_m[key] {
                        continue; // same labels as an earlier fact
                    }
                    seen_m[key] = true;
                    let point = |l: Option<Label>| l.map(LabelInterval::point).unwrap_or_default();
                    self.sources[i].push(FlowSource {
                        span: c.span,
                        is_rule: false,
                        text: c.to_string(),
                        level: point(lf),
                        class: point(cf),
                    });
                    continue;
                }
            }
            let env = self.clause_env(&c.body);
            let mut sig: Vec<Option<Label>> = Vec::new();
            let push_iv = |sig: &mut Vec<Option<Label>>, iv: &LabelInterval| {
                sig.extend(iv.lo().iter().copied().map(Some));
                sig.push(None);
                sig.extend(iv.hi().iter().copied().map(Some));
                sig.push(None);
            };
            let (node, lv, cv) = match &c.head {
                Head::M(m) => {
                    let Some(i) = self.node(PredKind::M, &m.pred) else {
                        continue;
                    };
                    let lv = self.resolve(&env, &m.level);
                    let cv = self.resolve(&env, &m.class);
                    push_iv(&mut sig, &lv);
                    push_iv(&mut sig, &cv);
                    (i, lv, cv)
                }
                Head::P(p) => {
                    let Some(i) = self.node(PredKind::P, &p.pred) else {
                        continue;
                    };
                    for t in &p.args {
                        push_iv(&mut sig, &self.resolve(&env, t));
                    }
                    (i, LabelInterval::empty(), LabelInterval::empty())
                }
                Head::L(_) | Head::H(_, _) => continue,
            };
            if c.is_fact() && !seen_sig.insert((node, sig)) {
                continue; // same labels as an earlier fact of this predicate
            }
            self.sources[node].push(FlowSource {
                span: c.span,
                is_rule: !c.is_fact(),
                text: c.to_string(),
                level: lv,
                class: cv,
            });
        }
    }

    /// Record every site (rule body or query) that consults an
    /// m-predicate, with its mode and visibility context.
    fn collect_consumers(&mut self) {
        let mut found: Vec<(usize, Consumer)> = Vec::new();
        let scan = |this: &Flow<'p>,
                    atoms: &[Atom],
                    head: Option<&Head>,
                    span: Span,
                    found: &mut Vec<(usize, Consumer)>| {
            if !atoms
                .iter()
                .any(|a| matches!(a, Atom::M(_) | Atom::B(_, _)))
            {
                return; // facts and pure-Π bodies consult nothing
            }
            let ground = this.ground_labels(head, atoms);
            for a in atoms {
                let (m, mode) = match a {
                    Atom::M(m) => (m, None),
                    Atom::B(m, mode) => (m, Some(mode.to_string())),
                    _ => continue,
                };
                if let Some(i) = this.node(PredKind::M, &m.pred) {
                    found.push((
                        i,
                        Consumer {
                            span,
                            mode,
                            level: m.level.clone(),
                            class: m.class.clone(),
                            ground: ground.clone(),
                        },
                    ));
                }
            }
        };
        for &ci in &self.non_facts {
            let c = self.rules[ci];
            scan(self, &c.body, Some(&c.head), c.span, &mut found);
        }
        for (q, span) in self.queries {
            scan(self, q, None, *span, &mut found);
        }
        for (i, consumer) in found {
            self.consumers[i].push(consumer);
        }
    }

    /// All ground declared labels of a clause or query — the set whose
    /// common dominators are the clearances that can see every atom at
    /// once (ML0107's criterion, reused by ML0205/ML0206).
    fn ground_labels(&self, head: Option<&Head>, atoms: &[Atom]) -> Vec<Label> {
        let mut out = Vec::new();
        let mut push = |t: &Term| {
            if let Term::Sym(s) = t {
                if let Some(l) = self.lat.label(s) {
                    out.push(l);
                }
            }
        };
        if let Some(Head::M(m)) = head {
            push(&m.level);
            push(&m.class);
        }
        for a in atoms {
            if let Atom::M(m) | Atom::B(m, _) = a {
                push(&m.level);
                push(&m.class);
            }
        }
        out
    }

    fn push(&mut self, code: &'static str, name: &'static str, span: Span, message: String) {
        self.out.push(Diagnostic {
            code,
            name,
            severity: Severity::Warning,
            span,
            message,
        });
    }

    // ML0201 — a rule can assert its head at a level `h` while every
    // achieved level of some body atom is *not* dominated by `h`: data
    // observed only above (or incomparable to) `h` determines a fact
    // readable at `h` — a downward signalling channel through the rule.
    fn check_downward_flow(&mut self) {
        let mut found: Vec<(Span, String)> = Vec::new();
        for &ci in &self.non_facts {
            let c = self.rules[ci];
            if !self.body_live(&c.body) {
                continue;
            }
            let Head::M(h) = &c.head else { continue };
            let env = self.clause_env(&c.body);
            let head_iv = self.resolve(&env, &h.level);
            if head_iv.is_empty() {
                continue;
            }
            // A body-level variable guarded by an explicit `V leq …`
            // constraint is a deliberate dominance check, not a leak.
            let guarded: HashSet<&str> = c
                .body
                .iter()
                .filter_map(|a| match a {
                    Atom::Leq(l, _) => l.as_var(),
                    _ => None,
                })
                .collect();
            for a in &c.body {
                let m = match a {
                    Atom::M(m) => m,
                    Atom::B(m, mode) if Mode::parse(mode).is_some() => m,
                    _ => continue, // custom modes: no static body level
                };
                // Same variable in both level positions: the body is
                // read exactly at the head's level.
                if let (Some(hv), Some(bv)) = (h.level.as_var(), m.level.as_var()) {
                    if hv == bv {
                        continue;
                    }
                }
                if let Some(bv) = m.level.as_var() {
                    if guarded.contains(bv) {
                        continue;
                    }
                }
                let body_iv = match &m.level {
                    Term::Sym(s) => match self.lat.label(s) {
                        Some(l) => LabelInterval::point(l),
                        None => continue, // undeclared: ML0103's error
                    },
                    Term::Var(_) => self.m_intervals(&m.pred).0,
                    Term::Int(_) | Term::Null => continue,
                };
                if body_iv.is_empty() {
                    continue;
                }
                let leak = head_iv
                    .lo()
                    .iter()
                    .find(|&&hl| !body_iv.may_flow_below(&self.lat, hl));
                if let Some(&hl) = leak {
                    found.push((
                        c.span,
                        format!(
                            "`{c}` can assert `{}` at level `{}` from `{}` whose achieved \
                             levels are all outside that level's view: readers at `{}` \
                             learn about data they are not cleared for",
                            h.pred,
                            self.lat.name(hl),
                            m.pred,
                            self.lat.name(hl),
                        ),
                    ));
                    break; // one finding per clause
                }
            }
        }
        for (span, msg) in found {
            self.push("ML0201", "downward-flow-channel", span, msg);
        }
    }

    // ML0202 — Proposition 5.1 lifted interprocedurally: when a
    // rule-derived value joins a predicate that also achieves a
    // *comparable but different* classification from another source,
    // the lower classification acts as a cover story the higher one
    // betrays — an inference channel across levels. Two plain facts at
    // comparable classes are ordinary polyinstantiation (the runtime
    // consistency check, ML0110, owns that case), so at least one of
    // the pair must be a rule.
    fn check_inference_channels(&mut self) {
        let mut found: Vec<(Span, String)> = Vec::new();
        for i in 0..self.nodes.len() {
            let (kind, name) = &self.nodes[i];
            if *kind != PredKind::M
                || self.sources[i].len() < 2
                || !self.sources[i].iter().any(|s| s.is_rule)
            {
                // Fact-only predicates cannot open this channel (two
                // plain facts at comparable classes are ML0110's
                // polyinstantiation case), so skip them outright.
                continue;
            }
            let frontiers: Vec<Vec<Label>> = self.sources[i]
                .iter()
                .map(|s| {
                    let mut v: Vec<Label> =
                        s.class.lo().iter().chain(s.class.hi()).copied().collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            'pred: for a in 0..self.sources[i].len() {
                for b in (a + 1)..self.sources[i].len() {
                    let (sa, sb) = (&self.sources[i][a], &self.sources[i][b]);
                    if !sa.is_rule && !sb.is_rule {
                        continue;
                    }
                    let rule = if sa.is_rule { sa } else { sb };
                    for &c1 in &frontiers[a] {
                        for &c2 in &frontiers[b] {
                            if c1 != c2 && (self.lat.leq(c1, c2) || self.lat.leq(c2, c1)) {
                                found.push((
                                    rule.span,
                                    format!(
                                        "`{name}` is derived with comparable distinct \
                                         classifications `{}` and `{}` (sources `{}` and \
                                         `{}`): the lower value is a cover story the \
                                         higher one betrays across levels",
                                        self.lat.name(c1),
                                        self.lat.name(c2),
                                        sa.text,
                                        sb.text,
                                    ),
                                ));
                                break 'pred; // one finding per predicate
                            }
                        }
                    }
                }
            }
        }
        for (span, msg) in found {
            self.push("ML0202", "inference-channel", span, msg);
        }
    }

    // ML0203 — a rule in a recursive component that re-derives its own
    // predicate at a strictly higher ground level: every unfolding
    // climbs the lattice, so the recursion replicates data upward
    // level by level (and can never close back down).
    fn check_escalating_recursion(&mut self) {
        let mut found: Vec<(Span, String)> = Vec::new();
        for &ci in &self.non_facts {
            let c = self.rules[ci];
            let Head::M(h) = &c.head else { continue };
            let Term::Sym(hs) = &h.level else { continue };
            let Some(hl) = self.lat.label(hs) else {
                continue;
            };
            let head_name = format!("m:{}", h.pred);
            for a in &c.body {
                let m = match a {
                    Atom::M(m) | Atom::B(m, _) => m,
                    _ => continue,
                };
                let Term::Sym(bs) = &m.level else { continue };
                let Some(bl) = self.lat.label(bs) else {
                    continue;
                };
                if self.lat.leq(bl, hl)
                    && bl != hl
                    && self.graph.same_scc(&head_name, &format!("m:{}", m.pred))
                {
                    found.push((
                        c.span,
                        format!(
                            "`{c}` recursively re-asserts `{}` at level `{hs}` from level \
                             `{bs}`: each unfolding escalates the data one level up the \
                             lattice",
                            h.pred,
                        ),
                    ));
                    break;
                }
            }
        }
        for (span, msg) in found {
            self.push("ML0203", "level-escalating-recursion", span, msg);
        }
    }

    // ML0204 — an m-predicate consulted under two or more different
    // belief modes while its achieved levels or classifications are
    // not a single point: the modes resolve the ambiguity differently
    // (fir/opt/cau disagree exactly when several levels or classes are
    // in play), so the program's meaning silently depends on which
    // site asks.
    fn check_mode_instability(&mut self) {
        let mut found: Vec<(Span, String)> = Vec::new();
        for i in 0..self.nodes.len() {
            let (kind, name) = &self.nodes[i];
            if *kind != PredKind::M || self.level[i].is_empty() {
                continue;
            }
            if self.level[i].is_point() && self.class[i].is_point() {
                continue;
            }
            let mut modes: Vec<String> = self.consumers[i]
                .iter()
                .map(|c| c.mode.clone().unwrap_or_else(|| "m".to_owned()))
                .collect();
            modes.sort();
            modes.dedup();
            if modes.len() < 2 {
                continue;
            }
            let span = self.consumers[i]
                .iter()
                .map(|c| c.span)
                .find(|s| s.is_known())
                .unwrap_or_else(Span::unknown);
            found.push((
                span,
                format!(
                    "`{name}` achieves several levels or classifications but is \
                     consulted under {} different modes ({}): belief answers differ \
                     by consulting site",
                    modes.len(),
                    modes.join(", "),
                ),
            ));
        }
        for (span, msg) in found {
            self.push("ML0204", "belief-mode-instability", span, msg);
        }
    }

    // ML0205 — generalizing ML0114 from a fixed clearance to all of
    // them: a rule with some body atom invisible at *every* maximal
    // label can never fire for any user. Interprocedural: a body
    // atom's achieved level interval (not just its ground label) can
    // prove invisibility. Clauses ML0107 already flags (no common
    // dominator among their own ground labels) are skipped.
    fn check_dead_at_every_clearance(&mut self) {
        let maximal = self.lat.maximal();
        let mut found: Vec<(Span, String)> = Vec::new();
        for &ci in &self.non_facts {
            let c = self.rules[ci];
            if !c
                .body
                .iter()
                .any(|a| matches!(a, Atom::M(_) | Atom::B(_, _)))
            {
                continue;
            }
            let g = self.ground_labels(Some(&c.head), &c.body);
            if !g.is_empty() && self.lat.common_dominators(g).is_empty() {
                continue; // ML0107's finding
            }
            let dead_everywhere = maximal
                .iter()
                .all(|&u| c.body.iter().any(|a| self.atom_invisible_at(a, u)));
            if dead_everywhere {
                found.push((
                    c.span,
                    format!(
                        "`{c}` has a body atom invisible at every maximal clearance: \
                         the rule is dead for every user of this lattice"
                    ),
                ));
            }
        }
        for (span, msg) in found {
            self.push("ML0205", "dead-at-every-clearance", span, msg);
        }
    }

    /// Whether a body atom provably cannot be satisfied by any tuple
    /// visible at clearance `u`. Ground labels are decisive on their
    /// own; variable label positions consult the achieved intervals
    /// (only when nonempty — emptiness is liveness territory, not
    /// visibility evidence). Custom-mode b-atoms are never evidence:
    /// their `bel/7` rules may derive beliefs from p-facts alone.
    fn atom_invisible_at(&self, a: &Atom, u: Label) -> bool {
        let (m, custom) = match a {
            Atom::M(m) => (m, false),
            Atom::B(m, mode) => (m, Mode::parse(mode).is_none()),
            _ => return false,
        };
        for t in [&m.level, &m.class] {
            if let Term::Sym(s) = t {
                if let Some(l) = self.lat.label(s) {
                    if !self.lat.leq(l, u) {
                        return true;
                    }
                }
            }
        }
        if custom {
            return false;
        }
        let (lv, cv) = self.m_intervals(&m.pred);
        if m.level.is_var() && !lv.is_empty() && !lv.may_flow_below(&self.lat, u) {
            return true;
        }
        if m.class.is_var() && !cv.is_empty() && !cv.may_flow_below(&self.lat, u) {
            return true;
        }
        false
    }

    // ML0206 — a ground fact no consulting site can ever observe:
    // every consumer either pins a different level/class, believes in
    // a mode that cannot reach the fact's level, or carries ground
    // context no clearance can combine with the fact's labels. Facts
    // with no consumers at all are ML0111's finding, and facts whose
    // own labels have no common dominator are ML0107's.
    fn check_unreachable_facts(&mut self) {
        let mut found: Vec<(Span, String)> = Vec::new();
        // Reachability depends only on (predicate, level, class), so a
        // bulk load of same-labelled facts costs one computation, not
        // one consumer scan per fact. Flat tables keyed by the cached
        // ground-fact labels: 0 = not yet computed.
        let n = self.lat.len();
        let mut dominated = vec![0u8; n * n];
        let mut reach = vec![0u8; self.nodes.len() * n * n];
        for ci in 0..self.rules.len() {
            let c = self.rules[ci];
            if !c.is_fact() {
                continue;
            }
            let Some((i, Some(lf), Some(cf))) = self.ground_facts[ci] else {
                continue; // non-ground or undeclared: other lints' turf
            };
            let dkey = lf.index() * n + cf.index();
            if dominated[dkey] == 0 {
                dominated[dkey] = if self.lat.common_dominators([lf, cf]).is_empty() {
                    1
                } else {
                    2
                };
            }
            if dominated[dkey] == 1 {
                continue; // ML0107's finding
            }
            if self.consumers[i].is_empty() {
                continue; // ML0111's finding
            }
            let rkey = i * n * n + dkey;
            if reach[rkey] == 0 {
                reach[rkey] = if self.consumers[i]
                    .iter()
                    .any(|site| self.site_reaches(site, lf, cf))
                {
                    2
                } else {
                    1
                };
            }
            if reach[rkey] == 1 {
                let Head::M(m) = &c.head else { continue };
                found.push((
                    c.span,
                    format!(
                        "fact `{c}` is asserted at level `{}` with classification \
                         `{}`, but no site consulting `{}` can ever observe it",
                        self.lat.name(lf),
                        self.lat.name(cf),
                        m.pred,
                    ),
                ));
            }
        }
        for (span, msg) in found {
            self.push("ML0206", "unreachable-level-fact", span, msg);
        }
    }

    /// Whether a consumer site can observe a fact asserted at level
    /// `lf` with classification `cf`. Plain m-atoms and `fir` beliefs
    /// read exactly their level; `opt`/`cau` believe anything from
    /// below; custom modes are assumed to reach everything.
    fn site_reaches(&self, site: &Consumer, lf: Label, cf: Label) -> bool {
        if site.is_custom() {
            return true;
        }
        let level_ok = match &site.level {
            Term::Sym(g) => match self.lat.label(g) {
                None => false,
                Some(gl) => match site.mode.as_deref().and_then(Mode::parse) {
                    None | Some(Mode::Fir) => lf == gl,
                    Some(Mode::Opt) | Some(Mode::Cau) => self.lat.leq(lf, gl),
                },
            },
            _ => true,
        };
        if !level_ok {
            return false;
        }
        let class_ok = match &site.class {
            Term::Sym(g) => self.lat.label(g) == Some(cf),
            _ => true,
        };
        if !class_ok {
            return false;
        }
        // Some clearance must see the site's ground context *and* the
        // fact's own labels at once.
        let mut labels = site.ground.clone();
        labels.push(lf);
        labels.push(cf);
        !self.lat.common_dominators(labels).is_empty()
    }

    fn into_report(self, source: String) -> FlowReport {
        let mut preds = BTreeMap::new();
        for (i, (kind, name)) in self.nodes.iter().enumerate() {
            let mut modes: Vec<String> = self.consumers[i]
                .iter()
                .map(|c| c.mode.clone().unwrap_or_else(|| "m".to_owned()))
                .collect();
            modes.sort();
            modes.dedup();
            preds.insert(
                (*kind, name.clone()),
                PredicateFlow {
                    kind: *kind,
                    name: name.clone(),
                    level: self.level[i].clone(),
                    class: self.class[i].clone(),
                    args: self.args[i].clone(),
                    nonempty: self.nonempty[i],
                    modes,
                    sources: self.sources[i].clone(),
                },
            );
        }
        FlowReport {
            lattice: Some(self.lat),
            preds,
            report: LintReport::from_parts(self.out, source),
        }
    }
}

/// The predicate a body atom depends on for liveness and label flow:
/// m-atoms and built-in-mode b-atoms read the m-predicate; a b-atom in
/// a user-defined mode (§7) is proved from `bel/7` derivations instead.
fn atom_dep(a: &Atom) -> Option<(PredKind, &str)> {
    match a {
        Atom::M(m) => Some((PredKind::M, &m.pred)),
        Atom::B(m, mode) => {
            if Mode::parse(mode).is_some() {
                Some((PredKind::M, &m.pred))
            } else {
                Some((PredKind::P, crate::modes::BEL))
            }
        }
        Atom::P(p) => Some((PredKind::P, &p.pred)),
        Atom::L(_) | Atom::H(_, _) | Atom::Leq(_, _) => None,
    }
}

/// Render an interval with label names: `⊥`, a single name, or
/// `[{lo…}, {hi…}]`.
fn fmt_interval(lat: &SecurityLattice, iv: &LabelInterval) -> String {
    if iv.is_empty() {
        return "⊥".to_owned();
    }
    let (lo, hi) = iv.names(lat);
    if iv.is_point() {
        return lo[0].to_owned();
    }
    format!("[{{{}}}, {{{}}}]", lo.join(","), hi.join(","))
}

/// Render an interval as JSON: `{"lo":[…],"hi":[…]}`.
fn interval_json(lat: &SecurityLattice, iv: &LabelInterval) -> String {
    let (lo, hi) = iv.names(lat);
    let list = |v: Vec<&str>| {
        v.iter()
            .map(|n| format!("\"{}\"", crate::lint::json_escape(n)))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("{{\"lo\":[{}],\"hi\":[{}]}}", list(lo), list(hi))
}

impl FlowReport {
    /// The security lattice the analysis ran over (`None` when the
    /// program has no lattice — pure Π, empty or cyclic Λ — and the
    /// analysis was skipped).
    pub fn lattice(&self) -> Option<&SecurityLattice> {
        self.lattice.as_ref()
    }

    /// The fixpoint result for one predicate, if it occurs in the
    /// program.
    pub fn predicate(&self, kind: PredKind, name: &str) -> Option<&PredicateFlow> {
        self.preds.get(&(kind, name.to_owned()))
    }

    /// All analysed predicates, ordered by kind then name.
    pub fn predicates(&self) -> impl Iterator<Item = &PredicateFlow> {
        self.preds.values()
    }

    /// The `ML02xx` findings, errors first then source order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.report.diagnostics
    }

    /// Number of error-severity findings (currently always zero — the
    /// ML02xx codes are warnings — but `--deny flow` treats any
    /// finding as fatal).
    pub fn errors(&self) -> usize {
        self.report.errors()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.report.warnings()
    }

    /// The findings wrapped as a lint report (for uniform rendering).
    pub fn lint_report(&self) -> &LintReport {
        &self.report
    }

    /// One summary line for a predicate's bounds.
    fn describe(&self, lat: &SecurityLattice, pf: &PredicateFlow) -> String {
        let live = if pf.nonempty { "" } else { ", possibly empty" };
        match pf.kind {
            PredKind::M => {
                let modes = if pf.modes.is_empty() {
                    String::new()
                } else {
                    format!(", modes: {}", pf.modes.join(" "))
                };
                format!(
                    "m {}: level ∈ {}, class ∈ {}{live}{modes}",
                    pf.name,
                    fmt_interval(lat, &pf.level),
                    fmt_interval(lat, &pf.class),
                )
            }
            PredKind::P => {
                let args: Vec<String> = pf.args.iter().map(|iv| fmt_interval(lat, iv)).collect();
                format!("p {}({}){live}", pf.name, args.join(", "))
            }
        }
    }

    /// Render the per-predicate bounds followed by the findings,
    /// rustc-style (mirrors [`LintReport::render_human`]).
    pub fn render_human(&self, source_name: &str) -> String {
        let mut out = String::new();
        match &self.lattice {
            None => out.push_str(
                "flow: no security lattice (pure-Π program, or Λ is empty/cyclic); \
                 nothing to analyse\n",
            ),
            Some(lat) => {
                out.push_str(&format!(
                    "flow: {} predicate(s) over a lattice of {} level(s)\n",
                    self.preds.len(),
                    lat.len()
                ));
                for pf in self.preds.values() {
                    out.push_str(&format!("  {}\n", self.describe(lat, pf)));
                }
            }
        }
        out.push('\n');
        out.push_str(&self.report.render_human(source_name));
        out
    }

    /// Render the whole report as a JSON object (hand-rolled; the
    /// workspace has no serde):
    /// `{"predicates":[…],"diagnostics":[…],"errors":N,"warnings":N}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"predicates\":[");
        if let Some(lat) = &self.lattice {
            for (i, pf) in self.preds.values().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&predicate_json(lat, pf, false));
            }
        }
        out.push_str("],\"diagnostics\":");
        out.push_str(&diagnostics_json(&self.report.diagnostics));
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{}}}",
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Explain one predicate's bounds for humans: the intervals, the
    /// consult modes, and every clause contributing to them. `None`
    /// when the predicate does not occur (in either namespace).
    pub fn explain(&self, pred: &str) -> Option<String> {
        let lat = self.lattice.as_ref()?;
        let matches: Vec<&PredicateFlow> = self.preds.values().filter(|p| p.name == pred).collect();
        if matches.is_empty() {
            return None;
        }
        let mut out = String::new();
        for pf in matches {
            out.push_str(&format!("{}\n", self.describe(lat, pf)));
            if pf.sources.is_empty() {
                out.push_str("  (no defining clauses: empty unless updated at runtime)\n");
            }
            for s in &pf.sources {
                let what = if s.is_rule { "rule" } else { "fact" };
                let contrib = if pf.kind == PredKind::M {
                    format!(
                        " → level ∈ {}, class ∈ {}",
                        fmt_interval(lat, &s.level),
                        fmt_interval(lat, &s.class)
                    )
                } else {
                    String::new()
                };
                out.push_str(&format!("  {} {} `{}`{}\n", s.span, what, s.text, contrib));
            }
        }
        Some(out)
    }

    /// [`FlowReport::explain`] as a JSON array of per-namespace
    /// objects, each with its sources.
    pub fn explain_json(&self, pred: &str) -> Option<String> {
        let lat = self.lattice.as_ref()?;
        let matches: Vec<&PredicateFlow> = self.preds.values().filter(|p| p.name == pred).collect();
        if matches.is_empty() {
            return None;
        }
        let mut out = String::from("[");
        for (i, pf) in matches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&predicate_json(lat, pf, true));
        }
        out.push(']');
        Some(out)
    }

    /// Whether `clause` provably contributes nothing observable at
    /// `clearance`, so a demand evaluation for that user may drop it
    /// without changing any answer.
    ///
    /// Criteria split by update sensitivity:
    ///
    /// * **Always sound** (ground labels only — the lattice and the
    ///   clearance are fixed for the engine's lifetime, so no
    ///   `apply_updates` can invalidate them): a ground head level not
    ///   dominated by the clearance (facts at such levels are invisible
    ///   through every proof rule at or below it); a ground body level
    ///   or classification not dominated by the clearance (the
    ///   reduction's `dominate` guards can never pass); a ground
    ///   `l leq h` body constraint false in the lattice.
    /// * **Bounds-based, `use_bounds`-gated** (computed from the static
    ///   program; updates can widen achieved label sets, so callers
    ///   must pass `use_bounds = false` once any update has been
    ///   applied): a body m-predicate that is statically empty, or
    ///   whose achieved levels/classifications can never flow below the
    ///   clearance; a statically empty body p-predicate. B-atoms in
    ///   user-defined modes only use the `bel/7` liveness check, never
    ///   the m-predicate bounds.
    ///
    /// Facts are never prunable (they are the data), and unknown
    /// predicates or clearances conservatively keep the clause.
    pub fn rule_prunable(&self, clause: &Clause, clearance: &str, use_bounds: bool) -> bool {
        let Some(lat) = self.lattice.as_ref() else {
            return false;
        };
        let Some(u) = lat.label(clearance) else {
            return false;
        };
        if clause.is_fact() {
            return false;
        }
        // Ground head level: the derived fact sits where `clearance`
        // can never look. (Classification must NOT be used this way: a
        // low-level fact with a high classification still participates
        // in `beaten` competition below.)
        if let Head::M(m) = &clause.head {
            if let Term::Sym(s) = &m.level {
                if let Some(l) = lat.label(s) {
                    if !lat.leq(l, u) {
                        return true;
                    }
                }
            }
        }
        for a in &clause.body {
            match a {
                Atom::Leq(Term::Sym(lo), Term::Sym(hi)) => {
                    if let (Some(l), Some(h)) = (lat.label(lo), lat.label(hi)) {
                        if !lat.leq(l, h) {
                            return true;
                        }
                    }
                }
                Atom::M(m) | Atom::B(m, _) => {
                    let custom = matches!(a, Atom::B(_, mode) if Mode::parse(mode).is_none());
                    for t in [&m.level, &m.class] {
                        if let Term::Sym(s) = t {
                            if let Some(l) = lat.label(s) {
                                if !lat.leq(l, u) {
                                    return true;
                                }
                            }
                        }
                    }
                    if !use_bounds {
                        continue;
                    }
                    if custom {
                        // Only the liveness of the user-mode machinery
                        // itself can prune the atom.
                        if let Some(pf) = self.predicate(PredKind::P, crate::modes::BEL) {
                            if !pf.nonempty {
                                return true;
                            }
                        }
                        continue;
                    }
                    if let Some(pf) = self.predicate(PredKind::M, &m.pred) {
                        if !pf.nonempty {
                            return true;
                        }
                        if m.level.is_var()
                            && !pf.level.is_empty()
                            && !pf.level.may_flow_below(lat, u)
                        {
                            return true;
                        }
                        if m.class.is_var()
                            && !pf.class.is_empty()
                            && !pf.class.may_flow_below(lat, u)
                        {
                            return true;
                        }
                    }
                }
                Atom::P(p) if use_bounds => {
                    if let Some(pf) = self.predicate(PredKind::P, &p.pred) {
                        if !pf.nonempty {
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
        false
    }
}

/// One predicate as a JSON object; with `sources`, includes the
/// per-clause contributions (`--explain` format).
fn predicate_json(lat: &SecurityLattice, pf: &PredicateFlow, sources: bool) -> String {
    let esc = crate::lint::json_escape;
    let mut out = format!(
        "{{\"kind\":\"{}\",\"name\":\"{}\",\"nonempty\":{},\"level\":{},\"class\":{}",
        pf.kind.tag(),
        esc(&pf.name),
        pf.nonempty,
        interval_json(lat, &pf.level),
        interval_json(lat, &pf.class),
    );
    out.push_str(",\"args\":[");
    for (i, iv) in pf.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&interval_json(lat, iv));
    }
    out.push_str("],\"modes\":[");
    for (i, m) in pf.modes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", esc(m)));
    }
    out.push(']');
    if sources {
        out.push_str(",\"sources\":[");
        for (i, s) in pf.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"line\":{},\"column\":{},\"rule\":{},\"text\":\"{}\",\"level\":{},\"class\":{}}}",
                s.span.line,
                s.span.column,
                s.is_rule,
                esc(&s.text),
                interval_json(lat, &s.level),
                interval_json(lat, &s.class),
            ));
        }
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;

    fn report(src: &str) -> FlowReport {
        analyze_source(src).unwrap()
    }

    fn codes(r: &FlowReport) -> Vec<&'static str> {
        r.diagnostics().iter().map(|d| d.code).collect()
    }

    const LAT: &str = "level(u). level(c). level(s). order(u, c). order(c, s).\n";

    #[test]
    fn pure_pi_program_has_no_lattice_and_no_findings() {
        let r = report("p(a). q(X) <- p(X). <- q(X).");
        assert!(r.lattice().is_none());
        assert_eq!(r.predicates().count(), 0);
        assert!(r.diagnostics().is_empty());
        assert!(r.render_human("t").contains("no security lattice"));
    }

    #[test]
    fn fact_levels_become_interval_frontiers() {
        let r = report(&format!("{LAT} u[p(k : a -u-> v)]. c[p(k : a -c-> w)]."));
        let lat = r.lattice().unwrap();
        let p = r.predicate(PredKind::M, "p").unwrap();
        assert!(p.nonempty);
        let (lo, hi) = p.level.names(lat);
        assert_eq!(lo, vec!["u"]);
        assert_eq!(hi, vec!["c"]);
        let u = lat.label("u").unwrap();
        let s = lat.label("s").unwrap();
        assert!(p.level.may_flow_below(lat, u));
        assert!(!p.class.contains(lat, s));
        assert_eq!(p.sources.len(), 2);
        assert!(p.sources.iter().all(|src| !src.is_rule));
    }

    #[test]
    fn bounds_propagate_through_rules_interprocedurally() {
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)]. c[p(k : a -c-> w)].
             c[q(K : b -C-> V)] <- c[p(K : a -C-> V)].
             r(u)."
        ));
        let lat = r.lattice().unwrap();
        let q = r.predicate(PredKind::M, "q").unwrap();
        // q's class variable is fed from p's class interval.
        let (lo, hi) = q.class.names(lat);
        assert_eq!(lo, vec!["u"]);
        assert_eq!(hi, vec!["c"]);
        // q is asserted only at the ground level c.
        assert!(q.level.is_point());
        let rp = r.predicate(PredKind::P, "r").unwrap();
        assert!(rp.args[0].is_point());
        assert_eq!(rp.args[0].names(lat).0, vec!["u"]);
    }

    #[test]
    fn statically_empty_predicate_is_not_nonempty() {
        let r = report(&format!(
            "{LAT}
             u[q(K : b -C-> V)] <- u[ghost(K : a -C-> V)]."
        ));
        assert!(!r.predicate(PredKind::M, "q").unwrap().nonempty);
        assert!(!r.predicate(PredKind::M, "ghost").unwrap().nonempty);
        // An empty body predicate contributes no source and no interval.
        assert!(r.predicate(PredKind::M, "q").unwrap().level.is_empty());
    }

    #[test]
    fn ml0201_fires_on_downward_rule_flow() {
        let r = report(&format!(
            "{LAT}
             s[p(k : a -u-> v)].
             u[q(k : a -u-> V)] <- s[p(k : a -u-> V)]."
        ));
        assert!(codes(&r).contains(&"ML0201"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0201_quiet_on_level_preserving_and_guarded_rules() {
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)]. s[p(k : a -s-> w)].
             L[q(K : b -C-> V)] <- L[p(K : a -C-> V)].
             u[r(k : b -u-> V)] <- L[p(k : a -u-> V)], L leq u."
        ));
        assert!(!codes(&r).contains(&"ML0201"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0202_fires_on_rule_derived_comparable_cover_story() {
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)].
             c[r(k : b -c-> x)].
             c[p(K : a -c-> W)] <- c[r(K : b -c-> W)]."
        ));
        assert!(codes(&r).contains(&"ML0202"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0202_quiet_on_plain_polyinstantiated_facts() {
        // Two facts at comparable classes are ordinary
        // polyinstantiation, the runtime consistency check's business.
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)]. c[p(k : a -c-> w)]."
        ));
        assert!(!codes(&r).contains(&"ML0202"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0203_fires_on_level_escalating_recursion() {
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)].
             s[p(k : a -u-> V)] <- u[p(k : a -u-> V)]."
        ));
        assert!(codes(&r).contains(&"ML0203"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0203_quiet_without_recursion() {
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)].
             s[q(k : a -u-> V)] <- u[p(k : a -u-> V)]."
        ));
        assert!(!codes(&r).contains(&"ML0203"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0204_fires_on_mixed_modes_over_unstable_predicate() {
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)]. c[p(k : a -c-> w)].
             c[q(K : b -C-> V)] <- c[p(K : a -C-> V)] << fir.
             c[r(K : b -C-> V)] <- c[p(K : a -C-> V)] << opt."
        ));
        assert!(codes(&r).contains(&"ML0204"), "got {:?}", codes(&r));
        let p = r.predicate(PredKind::M, "p").unwrap();
        assert_eq!(p.modes, vec!["fir".to_owned(), "opt".to_owned()]);
    }

    #[test]
    fn ml0204_quiet_on_single_mode_or_point_interval() {
        // Two modes but a single achieved level/class point: stable.
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)].
             c[q(K : b -C-> V)] <- c[p(K : a -C-> V)] << fir.
             c[r(K : b -C-> V)] <- c[p(K : a -C-> V)] << opt."
        ));
        assert!(!codes(&r).contains(&"ML0204"), "got {:?}", codes(&r));
        // Several levels but one mode: stable by construction.
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)]. c[p(k : a -c-> w)].
             c[q(K : b -C-> V)] <- c[p(K : a -C-> V)] << opt."
        ));
        assert!(!codes(&r).contains(&"ML0204"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0205_fires_on_rule_dead_at_every_clearance() {
        // Lattice with two maximal labels a and b; the body needs
        // p-data classified b, but p is only ever achieved at level a,
        // so no maximal clearance sees the body.
        let r = report(
            "level(u). level(a). level(b). order(u, a). order(u, b).
             a[p(k : x -a-> v)].
             u[r(k : y -u-> V)] <- L[p(k : x -b-> V)].",
        );
        assert!(codes(&r).contains(&"ML0205"), "got {:?}", codes(&r));
        // ML0107 must stay silent here (b dominates {u, b}).
        let lint = crate::lint::lint_source(
            "level(u). level(a). level(b). order(u, a). order(u, b).
             a[p(k : x -a-> v)].
             u[r(k : y -u-> V)] <- L[p(k : x -b-> V)].",
        )
        .unwrap();
        assert!(lint.diagnostics.iter().all(|d| d.code != "ML0107"));
    }

    #[test]
    fn ml0205_quiet_on_rules_visible_at_some_clearance() {
        let r = report(&format!(
            "{LAT}
             s[p(k : a -s-> v)].
             u[r(k : b -u-> V)] <- s[p(k : a -s-> V)]."
        ));
        assert!(!codes(&r).contains(&"ML0205"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0206_fires_on_fact_no_consumer_reaches() {
        let r = report(&format!(
            "{LAT}
             s[p(k : a -s-> v)].
             u[q(K : b -C-> V)] <- u[p(K : a -C-> V)]."
        ));
        assert!(codes(&r).contains(&"ML0206"), "got {:?}", codes(&r));
    }

    #[test]
    fn ml0206_quiet_when_a_consumer_can_observe() {
        // A variable-level consumer reaches every assertion level.
        let r = report(&format!(
            "{LAT}
             s[p(k : a -s-> v)].
             L[q(K : b -C-> V)] <- L[p(K : a -C-> V)]."
        ));
        assert!(!codes(&r).contains(&"ML0206"), "got {:?}", codes(&r));
        // An opt-mode believer above the fact's level reaches it too.
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)].
             s[q(K : b -C-> V)] <- s[p(K : a -C-> V)] << opt."
        ));
        assert!(!codes(&r).contains(&"ML0206"), "got {:?}", codes(&r));
    }

    #[test]
    fn custom_mode_consumers_are_conservative() {
        // A user-defined mode could reach anything: no ML0206, and the
        // b-atom's dependency is bel/7, not the m-predicate.
        let r = report(&format!(
            "{LAT}
             s[p(k : a -s-> v)].
             bel(p, K, a, V, C, L, myway) <- level(L).
             u[q(K : b -C-> V)] <- u[p(K : a -C-> V)] << myway."
        ));
        assert!(!codes(&r).contains(&"ML0206"), "got {:?}", codes(&r));
        assert!(r.predicate(PredKind::P, crate::modes::BEL).is_some());
    }

    #[test]
    fn explain_renders_bounds_and_sources() {
        let r = report(&format!(
            "{LAT}
             u[p(k : a -u-> v)]. c[p(k : a -c-> w)]."
        ));
        let text = r.explain("p").unwrap();
        assert!(text.contains("level ∈"), "{text}");
        assert!(text.contains("fact"), "{text}");
        assert!(r.explain("nosuch").is_none());
        let json = r.explain_json("p").unwrap();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"sources\""), "{json}");
    }

    #[test]
    fn render_json_has_predicates_and_diagnostics() {
        let r = report(&format!(
            "{LAT}
             s[p(k : a -u-> v)].
             u[q(k : a -u-> V)] <- s[p(k : a -u-> V)]."
        ));
        let json = r.render_json();
        assert!(json.contains("\"predicates\""), "{json}");
        assert!(json.contains("\"ML0201\""), "{json}");
        assert!(json.contains("\"warnings\""), "{json}");
    }

    #[test]
    fn rule_prunable_ground_criteria_are_update_independent() {
        let db = parse_database(&format!(
            "{LAT}
             u[p(k : a -u-> v)]. s[p(k : a -s-> w)].
             s[q(K : b -C-> V)] <- s[p(K : a -C-> V)].
             L[r(K : b -C-> V)] <- L[p(K : a -C-> V)]."
        ))
        .unwrap();
        let r = analyze_db(&db);
        let high_rule = db
            .sigma()
            .iter()
            .find(|c| matches!(&c.head, Head::M(m) if m.pred.as_ref() == "q"))
            .unwrap();
        let generic_rule = db
            .sigma()
            .iter()
            .find(|c| matches!(&c.head, Head::M(m) if m.pred.as_ref() == "r"))
            .unwrap();
        let fact = db.sigma().iter().find(|c| c.is_fact()).unwrap();
        // Ground head/body level s is invisible at u — prunable with
        // and without bounds (update-independent).
        assert!(r.rule_prunable(high_rule, "u", true));
        assert!(r.rule_prunable(high_rule, "u", false));
        // …but not at s itself.
        assert!(!r.rule_prunable(high_rule, "s", true));
        // The level-generic rule must survive everywhere.
        assert!(!r.rule_prunable(generic_rule, "u", true));
        // Facts are never prunable.
        assert!(!r.rule_prunable(fact, "u", true));
        // Unknown clearances keep everything.
        assert!(!r.rule_prunable(high_rule, "zz", true));
    }

    #[test]
    fn rule_prunable_bounds_criteria_respect_the_gate() {
        let db = parse_database(&format!(
            "{LAT}
             s[p(k : a -s-> v)].
             L[q(K : b -C-> V)] <- L[p(K : a -C-> V)].
             L[r(K : b -C-> V)] <- L[ghost(K : a -C-> V)]."
        ))
        .unwrap();
        let r = analyze_db(&db);
        let q_rule = db
            .sigma()
            .iter()
            .find(|c| matches!(&c.head, Head::M(m) if m.pred.as_ref() == "q"))
            .unwrap();
        let ghost_rule = db
            .sigma()
            .iter()
            .find(|c| matches!(&c.head, Head::M(m) if m.pred.as_ref() == "r"))
            .unwrap();
        // p only achieves level s: at clearance u the variable-level
        // body can never be visible — but only the static bounds know,
        // so the criterion is gated.
        assert!(r.rule_prunable(q_rule, "u", true));
        assert!(!r.rule_prunable(q_rule, "u", false));
        assert!(!r.rule_prunable(q_rule, "s", true));
        // ghost is statically empty: prunable at every clearance, but
        // again only while no update could have populated it.
        assert!(r.rule_prunable(ghost_rule, "s", true));
        assert!(!r.rule_prunable(ghost_rule, "s", false));
    }

    #[test]
    fn leq_false_constraint_prunes_everywhere() {
        let db = parse_database(&format!(
            "{LAT}
             u[p(k : a -u-> v)].
             u[q(K : b -C-> V)] <- u[p(K : a -C-> V)], s leq u."
        ))
        .unwrap();
        let r = analyze_db(&db);
        let rule = db.sigma().iter().find(|c| !c.is_fact()).unwrap();
        assert!(r.rule_prunable(rule, "s", false));
    }
}
