//! User-defined belief modes (§7, rule USER-BELIEF of Figure 13).
//!
//! A user tailors belief by defining rules for the distinguished
//! predicate `bel/7` with the argument convention
//! `bel(Pred, Key, Attr, Value, Class, Level, mode)`. A b-atom
//! `l[p(k : a -c-> v)] << mode` in a user mode is then proved by copying a
//! `bel` derivation — exactly the USER-BELIEF proof rule. The paper notes
//! this is *robust*: provability of m-atoms is untouched, so user modes
//! cannot breach the Bell–LaPadula protocol.
//!
//! This module provides helpers for building such rules and documents the
//! convention; the engine itself recognises `bel/7` heads automatically
//! (see [`crate::MultiLogEngine`]).

use std::sync::Arc;

use crate::ast::{Atom, Clause, Head, PAtom, Term};

/// The distinguished predicate name.
pub const BEL: &str = "bel";

/// Build a `bel/7` head for a user-defined mode rule.
///
/// `bel(pred, Key, attr, Value, Class, Level, mode)` — pass variables for
/// the positions the rule body constrains.
pub fn bel_head(
    pred: &str,
    key: Term,
    attr: &str,
    value: Term,
    class: Term,
    level: Term,
    mode: &str,
) -> Head {
    Head::P(PAtom {
        pred: Arc::from(BEL),
        args: vec![
            Term::sym(pred),
            key,
            Term::sym(attr),
            value,
            class,
            level,
            Term::sym(mode),
        ],
    })
}

/// A ready-made user mode: *paranoid* — believe only values classified at
/// exactly the believer's level **and** asserted at that level. (Stricter
/// than `fir`, which accepts any visible classification.)
///
/// Generates one rule:
/// `bel(p, K, a, V, L, L, paranoid) <- L[p(K : a -L-> V)].`
pub fn paranoid_mode(pred: &str, attr: &str) -> Clause {
    let body_atom = crate::ast::MAtom {
        level: Term::var("L"),
        pred: Arc::from(pred),
        key: Term::var("K"),
        attr: Arc::from(attr),
        class: Term::var("L"),
        value: Term::var("V"),
    };
    Clause::new(
        bel_head(
            pred,
            Term::var("K"),
            attr,
            Term::var("V"),
            Term::var("L"),
            Term::var("L"),
            "paranoid",
        ),
        vec![Atom::M(body_atom)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;
    use crate::MultiLogEngine;

    #[test]
    fn bel_head_shape() {
        let h = bel_head(
            "mission",
            Term::var("K"),
            "objective",
            Term::var("V"),
            Term::var("C"),
            Term::var("L"),
            "myway",
        );
        match h {
            Head::P(p) => {
                assert_eq!(p.pred.as_ref(), BEL);
                assert_eq!(p.args.len(), 7);
                assert_eq!(p.args[6], Term::sym("myway"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paranoid_mode_end_to_end() {
        // Inject the paranoid rule programmatically.
        let rule = paranoid_mode("p", "a");
        let rendered = rule.to_string();
        let db = parse_database(&format!(
            r#"
            level(u). level(s). order(u, s).
            u[p(k : a -u-> v)].
            s[p(k : a -u-> w)].
            {rendered}
            "#
        ))
        .unwrap();
        let e = MultiLogEngine::new(&db, "s").unwrap();
        // paranoid at u: the u fact (classified u, asserted at u).
        assert_eq!(
            e.solve_text("u[p(k : a -u-> V)] << paranoid")
                .unwrap()
                .len(),
            1
        );
        // paranoid at s: the s fact is classified u ≠ s → not believed.
        assert!(e
            .solve_text("s[p(k : a -C-> V)] << paranoid")
            .unwrap()
            .is_empty());
        // fir at s would believe it (any visible classification).
        assert_eq!(e.solve_text("s[p(k : a -C-> V)] << fir").unwrap().len(), 1);
    }

    #[test]
    fn user_mode_cannot_leak_invisible_data() {
        // §7: user modes are robust — m-atom provability is unchanged, so
        // even a `bel` rule claiming belief in a high fact cannot make the
        // fact itself visible below.
        let db = parse_database(
            r#"
            level(u). level(s). order(u, s).
            s[p(k : a -s-> secret)].
            bel(p, k, a, secret, s, u, leaky) <- level(u).
            "#,
        )
        .unwrap();
        let e = MultiLogEngine::new(&db, "u").unwrap();
        // The b-atom "succeeds" as a belief assertion only if its guard
        // c ⪯ u holds; here the class is s, so nothing is provable at u.
        assert!(e.solve_text("u[p(k : a -s-> secret)]").unwrap().is_empty());
        assert!(e
            .solve_text("u[p(k : a -s-> secret)] << leaky")
            .unwrap()
            .is_empty());
    }
}
