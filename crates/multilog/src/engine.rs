//! The operational semantics of MultiLog: a level-stratified fixpoint
//! engine over m- and p-facts whose derivations are recorded and can be
//! replayed as the sequent proof trees of Figure 9 (see [`crate::proof`]).
//!
//! Goals are proved *in the context of a user clearance* `u` (the
//! database level of Definition 5.5): body and query m-/b-atoms are
//! guarded by the Bell–LaPadula *no read up* conditions `l ⪯ u` and
//! `c ⪯ u`, exactly as the λ encoding of §6.1 adds them during reduction.
//!
//! ## Cautious recursion and level stratification
//!
//! The cautious mode is non-monotone: a new higher-classified fact can
//! retract a cautious belief. The paper's Figure 12 axioms are claimed
//! stratified but the stratification is never spelled out; we adopt the
//! natural reading that makes the paper's own example (D₁) work: a clause
//! may consult `<< cau` at level `l` only if its head level *strictly
//! dominates* `l` — then levels can be evaluated bottom-up and every
//! cautious judgment is made against a finalized lower database. Programs
//! violating this are rejected with
//! [`MultiLogError::NotBeliefStratified`].

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use multilog_datalog::CancelToken;
use multilog_lattice::{Label, SecurityLattice};

use crate::ast::{Atom, Clause, Goal, Head, MAtom, Term};
use crate::belief::{believed, MFact, Mode};
use crate::db::MultiLogDb;
use crate::parser::parse_goal;
use crate::{MultiLogError, Result};

/// A ground p-fact.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PFact {
    /// The predicate name.
    pub pred: Arc<str>,
    /// The ground arguments.
    pub args: Vec<Term>,
}

/// One answer to a goal: variable → ground term, sorted by name.
pub type Answer = BTreeMap<String, Term>;

/// How a stored fact was derived; used to rebuild proof trees.
#[derive(Clone, Debug)]
pub(crate) struct Justification {
    /// Rendering of the clause applied (facts justify themselves).
    pub clause: String,
    /// The ground body atoms, with fact indices for well-foundedness.
    pub body: Vec<JustAtom>,
}

/// A ground body atom inside a justification.
#[derive(Clone, Debug)]
pub(crate) enum JustAtom {
    /// A matched m-fact (index into `mfacts`).
    M(usize),
    /// A matched p-fact (index into `pfacts`).
    P(usize),
    /// A belief: the supporting m-fact, the belief level, and the mode.
    Bel {
        /// Index of the supporting m-fact.
        fact: usize,
        /// The level the belief is held at.
        at: Label,
        /// The mode name.
        mode: Arc<str>,
    },
    /// A satisfied dominance constraint.
    Leq(Label, Label),
    /// A level membership.
    L(Label),
    /// An order (cover) edge.
    H(Label, Label),
}

/// Evaluation options.
#[derive(Clone, Debug, Default)]
pub struct EngineOptions {
    /// Enable the FILTER rule of Figure 13: an m-atom at level `l` is also
    /// provable from a *higher* asserted fact whose column classification
    /// is dominated by `l` (downward inheritance — the σ filter).
    pub enable_filter: bool,
    /// Enable FILTER-NULL: additionally prove `l[p(k : a -c-> null)]`
    /// when the higher fact's column classification is *not* dominated.
    pub enable_filter_null: bool,
    /// Guard budget on derived facts (`0` = the 1 M default). Trips as
    /// [`MultiLogError::BudgetExceeded`], checked both between clause
    /// applications and inside the backtracking match loop.
    pub fact_limit: usize,
    /// Wall-clock deadline for evaluation and for each subsequent goal,
    /// checked at tick granularity during matching. Trips as
    /// [`MultiLogError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token; cancelling it makes the current
    /// operation return [`MultiLogError::Cancelled`] at the next check.
    pub cancel: Option<CancelToken>,
    /// Enable lattice-flow demand pruning ([`crate::flow`]): the reduced
    /// engine drops rules (and per-level machinery) a static analysis
    /// proves invisible at the session's clearance before running a
    /// demand query. Answers are unchanged; only the evaluated rule set
    /// shrinks. Off by default. The incremental (materialized) path is
    /// never pruned, and bounds-based criteria are disabled after the
    /// first update (see [`crate::FlowReport::rule_prunable`]).
    pub flow_prune: bool,
}

impl EngineOptions {
    pub(crate) fn limit(&self) -> usize {
        if self.fact_limit == 0 {
            1_000_000
        } else {
            self.fact_limit
        }
    }
}

/// How many matching steps elapse between two guard checks.
const OP_CHECK_INTERVAL: u32 = 4096;

/// Per-operation guard: wall-clock deadline, cooperative cancellation,
/// and the fact budget, consulted every [`OP_CHECK_INTERVAL`] steps of
/// the backtracking search so even a single clause application over a
/// huge cross product trips promptly.
struct OpGuard {
    deadline: Option<Instant>,
    limit_ms: u64,
    cancel: Option<CancelToken>,
    budget: usize,
    /// Facts materialized when the current clause application started.
    base: Cell<usize>,
    /// Tuples buffered by the current clause application.
    emitted: Cell<usize>,
    ticks: Cell<u32>,
}

impl OpGuard {
    fn new(options: &EngineOptions) -> Self {
        OpGuard {
            deadline: options.deadline.map(|d| Instant::now() + d),
            limit_ms: options.deadline.map_or(0, |d| d.as_millis() as u64),
            cancel: options.cancel.clone(),
            budget: options.limit(),
            base: Cell::new(0),
            emitted: Cell::new(0),
            ticks: Cell::new(0),
        }
    }

    /// Reset the emission counter against the current database size.
    fn begin_clause(&self, db_facts: usize) {
        self.base.set(db_facts);
        self.emitted.set(0);
    }

    /// Record one buffered derivation (counts toward the budget).
    fn note_emit(&self) {
        self.emitted.set(self.emitted.get() + 1);
    }

    #[inline]
    fn tick(&self) -> Result<()> {
        let t = self.ticks.get() + 1;
        if t >= OP_CHECK_INTERVAL {
            self.ticks.set(0);
            self.check()
        } else {
            self.ticks.set(t);
            Ok(())
        }
    }

    fn check(&self) -> Result<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(MultiLogError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(MultiLogError::DeadlineExceeded {
                    limit_ms: self.limit_ms,
                });
            }
        }
        let used = self.base.get() + self.emitted.get();
        if used > self.budget {
            return Err(MultiLogError::BudgetExceeded {
                budget: self.budget,
                used,
            });
        }
        Ok(())
    }
}

/// Per-clause counters for the operational engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClauseStats {
    /// Rendering of the Σ/Π clause.
    pub clause: String,
    /// Applications attempted (fixpoint passes in which the clause ran).
    pub applications: usize,
    /// Derivations produced, including duplicates.
    pub facts_derived: usize,
    /// Facts genuinely new to the database.
    pub facts_added: usize,
    /// Wall time spent applying this clause, in nanoseconds.
    pub wall_ns: u64,
}

/// Counters describing one operational evaluation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OperationalStats {
    /// Fixpoint passes over the clause set, summed over all stages.
    pub rounds: usize,
    /// Counters per Σ/Π clause, in database order.
    pub per_clause: Vec<ClauseStats>,
}

impl OperationalStats {
    /// Render the counters as a human-readable table (used by the CLI's
    /// `--stats` flag).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "operational evaluation: {} rounds", self.rounds);
        for c in &self.per_clause {
            let _ = writeln!(
                out,
                "clause: {}\n  apps={} derived={} added={} wall_ms={:.3}",
                c.clause,
                c.applications,
                c.facts_derived,
                c.facts_added,
                c.wall_ns as f64 / 1e6,
            );
        }
        out
    }
}

/// The MultiLog operational engine: an evaluated database at a user level.
pub struct MultiLogEngine {
    lattice: Arc<SecurityLattice>,
    user: Label,
    mfacts: Vec<MFact>,
    m_index: HashMap<MFact, usize>,
    /// `(pred, attr)` → indices into `mfacts`, for sub-linear matching.
    m_by_col: HashMap<(Arc<str>, Arc<str>), Vec<usize>>,
    pfacts: Vec<PFact>,
    p_index: HashMap<PFact, usize>,
    /// `pred` → indices into `pfacts`.
    p_by_pred: HashMap<Arc<str>, Vec<usize>>,
    m_just: Vec<Justification>,
    p_just: Vec<Justification>,
    user_modes: Vec<Arc<str>>,
    options: EngineOptions,
    stats: OperationalStats,
}

impl MultiLogEngine {
    /// Evaluate `db` at the clearance level named `user`.
    pub fn new(db: &MultiLogDb, user: &str) -> Result<Self> {
        Self::with_options(db, user, EngineOptions::default())
    }

    /// Evaluate with explicit options.
    pub fn with_options(db: &MultiLogDb, user: &str, options: EngineOptions) -> Result<Self> {
        // Prop 6.1: with Λ and Σ empty the database degenerates to Datalog
        // and "u is any user level (perhaps system)" — synthesize one.
        let lattice = if db.lambda().is_empty() && db.sigma().is_empty() {
            Arc::new(
                multilog_lattice::LatticeBuilder::new()
                    .level(user)
                    .build()
                    .map_err(MultiLogError::Lattice)?,
            )
        } else {
            db.lattice()?
        };
        let user_label = lattice
            .label(user)
            .ok_or_else(|| MultiLogError::NotAdmissible {
                detail: format!("user level `{user}` is not a declared level"),
            })?;
        let user_modes = collect_user_modes(db);
        check_modes_known(db, &user_modes)?;
        check_belief_stratification(db, &lattice)?;
        check_reduction_only(db)?;

        let mut eng = MultiLogEngine {
            lattice,
            user: user_label,
            mfacts: Vec::new(),
            m_index: HashMap::new(),
            m_by_col: HashMap::new(),
            pfacts: Vec::new(),
            p_index: HashMap::new(),
            p_by_pred: HashMap::new(),
            m_just: Vec::new(),
            p_just: Vec::new(),
            user_modes,
            options,
            stats: OperationalStats::default(),
        };
        eng.evaluate(db)?;
        Ok(eng)
    }

    /// Per-clause counters collected while evaluating the database.
    pub fn stats(&self) -> &OperationalStats {
        &self.stats
    }

    /// The security lattice.
    pub fn lattice(&self) -> &Arc<SecurityLattice> {
        &self.lattice
    }

    /// The database (user) level.
    pub fn user_level(&self) -> Label {
        self.user
    }

    /// The derived m-facts.
    pub fn mfacts(&self) -> &[MFact] {
        &self.mfacts
    }

    /// The derived p-facts.
    pub fn pfacts(&self) -> &[PFact] {
        &self.pfacts
    }

    pub(crate) fn m_justification(&self, idx: usize) -> &Justification {
        &self.m_just[idx]
    }

    pub(crate) fn p_justification(&self, idx: usize) -> &Justification {
        &self.p_just[idx]
    }

    pub(crate) fn p_fact_index(&self, f: &PFact) -> Option<usize> {
        self.p_index.get(f).copied()
    }

    pub(crate) fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Solve a goal (conjunction of atoms) under the user context,
    /// returning the distinct answers sorted for determinism.
    pub fn solve(&self, goal: &Goal) -> Result<Vec<Answer>> {
        let guard = OpGuard::new(&self.options);
        guard.begin_clause(self.mfacts.len() + self.pfacts.len());
        guard.check()?;
        let mut answers = Vec::new();
        let mut env: Env = HashMap::new();
        self.match_body(goal, 0, &mut env, &guard, &mut |env| {
            guard.note_emit();
            let mut a = Answer::new();
            for atom in goal {
                for v in atom.variables() {
                    if let Some(t) = env.get(v) {
                        a.insert(v.to_owned(), t.clone());
                    }
                }
            }
            answers.push(a);
        })?;
        answers.sort();
        answers.dedup();
        Ok(answers)
    }

    /// Parse and solve a textual goal.
    pub fn solve_text(&self, goal: &str) -> Result<Vec<Answer>> {
        self.solve(&parse_goal(goal)?)
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    fn evaluate(&mut self, db: &MultiLogDb) -> Result<()> {
        // Seed l-/h-derived info is held by the lattice itself.
        let uses_cau = db_uses_cau(db);
        let stages: Vec<Vec<Label>> = if uses_cau {
            // One stage per level, bottom-up (topological by dominance).
            let mut order: Vec<Label> = self.lattice.labels().collect();
            order.sort_by_key(|&l| (self.lattice.down_set(l).len(), l.index()));
            order.into_iter().map(|l| vec![l]).collect()
        } else {
            vec![self.lattice.labels().collect()]
        };

        let staged = uses_cau;
        let sigma: Vec<&Clause> = db.sigma().iter().collect();
        let pi: Vec<&Clause> = db.pi().iter().collect();
        let guard = OpGuard::new(&self.options);
        self.stats.per_clause = sigma
            .iter()
            .chain(&pi)
            .map(|c| ClauseStats {
                clause: c.to_string(),
                ..ClauseStats::default()
            })
            .collect();

        // Outer loop: p-clauses may carry information between levels in
        // either direction, so repeat the stage pipeline until globally
        // stable. Soundness of cautious judgments made along the way is
        // re-verified against the final database below.
        loop {
            let mut any = false;
            for stage in &stages {
                loop {
                    let mut changed = false;
                    self.stats.rounds += 1;
                    for (ci, c) in sigma.iter().chain(&pi).enumerate() {
                        // In staged mode, only m-clauses whose (ground)
                        // head level belongs to the stage fire; p-clauses
                        // always do.
                        if staged {
                            if let Head::M(m) = &c.head {
                                if let Term::Sym(s) = &m.level {
                                    let hl = self.lattice.label(s).ok_or_else(|| {
                                        MultiLogError::NotAdmissible {
                                            detail: format!("unknown head level `{s}`"),
                                        }
                                    })?;
                                    if !stage.contains(&hl) {
                                        continue;
                                    }
                                }
                            }
                        }
                        let started = Instant::now();
                        let (derived, added) = self.apply_clause(c, &guard)?;
                        let wall_ns =
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        let cs = &mut self.stats.per_clause[ci];
                        cs.applications += 1;
                        cs.facts_derived += derived;
                        cs.facts_added += added;
                        cs.wall_ns += wall_ns;
                        changed |= added > 0;
                        // Between-clause check: budget against the
                        // materialized database, plus deadline and
                        // cancellation even when matching never reached
                        // a tick boundary.
                        guard.begin_clause(self.mfacts.len() + self.pfacts.len());
                        guard.check()?;
                    }
                    any |= changed;
                    if !changed {
                        break;
                    }
                }
            }
            if !any {
                break;
            }
        }
        self.verify_cautious_justifications()
    }

    /// A cautious judgment made mid-evaluation could in principle be
    /// invalidated by a fact derived later (the mode is non-monotone).
    /// The level-stratification check prevents this for well-behaved
    /// programs; this post-pass re-verifies every recorded cautious
    /// support against the *final* database and rejects the program if
    /// any was retracted.
    fn verify_cautious_justifications(&self) -> Result<()> {
        for just in self.m_just.iter().chain(&self.p_just) {
            for atom in &just.body {
                if let JustAtom::Bel { fact, at, mode } = atom {
                    if mode.as_ref() == "cau"
                        && !believed(
                            &self.lattice,
                            &self.mfacts,
                            &self.mfacts[*fact],
                            *at,
                            Mode::Cau,
                        )
                    {
                        return Err(MultiLogError::NotBeliefStratified {
                            detail: format!(
                                "a cautious belief used by `{}` was invalidated by a later \
                                 derivation",
                                just.clause
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply one clause, returning `(derivations buffered, facts added)`.
    fn apply_clause(&mut self, c: &Clause, guard: &OpGuard) -> Result<(usize, usize)> {
        guard.begin_clause(self.mfacts.len() + self.pfacts.len());
        let mut derived: Vec<(Head, Env, Vec<JustAtom>)> = Vec::new();
        let mut env: Env = HashMap::new();
        let mut trace: Vec<JustAtom> = Vec::new();
        self.match_body_traced(
            &c.body,
            0,
            &mut env,
            &mut trace,
            guard,
            &mut |env, trace| {
                guard.note_emit();
                derived.push((c.head.clone(), env.clone(), trace.clone()));
            },
        )?;
        let mut added = 0;
        let n_derived = derived.len();
        let rendered = if derived.is_empty() {
            String::new()
        } else {
            c.to_string()
        };
        for (head, env, trace) in derived {
            if self.assert_head(&head, &env, trace, &rendered)? {
                added += 1;
            }
        }
        Ok((n_derived, added))
    }

    fn assert_head(
        &mut self,
        head: &Head,
        env: &Env,
        body: Vec<JustAtom>,
        clause: &str,
    ) -> Result<bool> {
        // Range restriction (checked at database construction) should
        // guarantee every head variable is bound by the body match; a
        // violation — e.g. a programmatically built clause that bypassed
        // validation — surfaces as a typed error, never a panic.
        let resolve = |t: &Term| -> Result<Term> {
            resolve_term(t, env).ok_or_else(|| MultiLogError::UnsafeVariable {
                variable: t.to_string(),
                clause: clause.to_owned(),
            })
        };
        match head {
            Head::M(m) => {
                let level = self.resolve_label(&m.level, env, clause)?;
                let class = self.resolve_label(&m.class, env, clause)?;
                let key = resolve(&m.key)?;
                let value = resolve(&m.value)?;
                let fact = MFact {
                    pred: m.pred.clone(),
                    key,
                    attr: m.attr.clone(),
                    class,
                    value,
                    level,
                };
                if self.m_index.contains_key(&fact) {
                    return Ok(false);
                }
                self.m_index.insert(fact.clone(), self.mfacts.len());
                self.m_by_col
                    .entry((fact.pred.clone(), fact.attr.clone()))
                    .or_default()
                    .push(self.mfacts.len());
                self.mfacts.push(fact);
                self.m_just.push(Justification {
                    clause: clause.to_owned(),
                    body,
                });
                Ok(true)
            }
            Head::P(p) => {
                let fact = PFact {
                    pred: p.pred.clone(),
                    args: p.args.iter().map(resolve).collect::<Result<Vec<_>>>()?,
                };
                if self.p_index.contains_key(&fact) {
                    return Ok(false);
                }
                self.p_index.insert(fact.clone(), self.pfacts.len());
                self.p_by_pred
                    .entry(fact.pred.clone())
                    .or_default()
                    .push(self.pfacts.len());
                self.pfacts.push(fact);
                self.p_just.push(Justification {
                    clause: clause.to_owned(),
                    body,
                });
                Ok(true)
            }
            Head::L(_) | Head::H(_, _) => Ok(false), // lattice already built
        }
    }

    fn resolve_label(&self, t: &Term, env: &Env, clause: &str) -> Result<Label> {
        let resolved = resolve_term(t, env).ok_or_else(|| MultiLogError::UnsafeVariable {
            variable: t.to_string(),
            clause: clause.to_owned(),
        })?;
        match &resolved {
            Term::Sym(s) => self
                .lattice
                .label(s)
                .ok_or_else(|| MultiLogError::NotAdmissible {
                    detail: format!("`{s}` is not a declared security level"),
                }),
            other => Err(MultiLogError::NotAdmissible {
                detail: format!("security label position holds non-label `{other}`"),
            }),
        }
    }

    /// Indexed version of [`crate::belief::believed`] for the cautious
    /// mode: the maximality scan only visits facts sharing `(pred, attr)`.
    fn believed_indexed(&self, fact: &MFact, at: Label, mode: Mode) -> bool {
        match mode {
            Mode::Fir => fact.level == at,
            Mode::Opt => self.lattice.leq(fact.level, at),
            Mode::Cau => {
                if !self.lattice.leq(fact.level, at) {
                    return false;
                }
                let Some(peers) = self.m_by_col.get(&(fact.pred.clone(), fact.attr.clone())) else {
                    return true;
                };
                !peers.iter().any(|&i| {
                    let w = &self.mfacts[i];
                    w.key == fact.key
                        && self.lattice.leq(w.level, at)
                        && self.lattice.lt(fact.class, w.class)
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Matching
    // ------------------------------------------------------------------

    fn match_body(
        &self,
        body: &[Atom],
        pos: usize,
        env: &mut Env,
        guard: &OpGuard,
        emit: &mut dyn FnMut(&Env),
    ) -> Result<()> {
        let mut trace = Vec::new();
        self.match_body_traced(body, pos, env, &mut trace, guard, &mut |env, _| emit(env))
    }

    #[allow(clippy::too_many_arguments)]
    fn match_body_traced(
        &self,
        body: &[Atom],
        pos: usize,
        env: &mut Env,
        trace: &mut Vec<JustAtom>,
        guard: &OpGuard,
        emit: &mut dyn FnMut(&Env, &Vec<JustAtom>),
    ) -> Result<()> {
        guard.tick()?;
        if pos == body.len() {
            emit(env, trace);
            return Ok(());
        }
        match &body[pos] {
            Atom::M(m) => {
                static EMPTY: Vec<usize> = Vec::new();
                let candidates = self
                    .m_by_col
                    .get(&(m.pred.clone(), m.attr.clone()))
                    .unwrap_or(&EMPTY);
                for &idx in candidates {
                    let fact = &self.mfacts[idx];
                    // Direct match (DEDUCTION-G'): levels equal; guards.
                    if self.lattice.leq(fact.level, self.user)
                        && self.lattice.leq(fact.class, self.user)
                    {
                        self.try_match_mfact(
                            m, fact, idx, body, pos, env, trace, guard, emit, false,
                        )?;
                    }
                    // FILTER (Figure 13): goal level l strictly below the
                    // fact's level, column class c ⪯ l.
                    if self.options.enable_filter {
                        self.try_filter_match(m, fact, idx, body, pos, env, trace, guard, emit)?;
                    }
                }
                Ok(())
            }
            Atom::B(m, mode) => self.match_batom(m, mode, body, pos, env, trace, guard, emit),
            Atom::P(p) => {
                static EMPTY: Vec<usize> = Vec::new();
                let candidates = self.p_by_pred.get(&p.pred).unwrap_or(&EMPTY);
                for &idx in candidates {
                    let fact = &self.pfacts[idx];
                    if fact.args.len() != p.args.len() {
                        continue;
                    }
                    let mut bound = Vec::new();
                    let ok = p
                        .args
                        .iter()
                        .zip(&fact.args)
                        .all(|(t, v)| unify(t, v, env, &mut bound));
                    if ok {
                        trace.push(JustAtom::P(idx));
                        self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
                        trace.pop();
                    }
                    for v in bound {
                        env.remove(&v);
                    }
                }
                Ok(())
            }
            Atom::L(t) => {
                for l in self.lattice.labels() {
                    let name = Term::sym(self.lattice.name(l));
                    let mut bound = Vec::new();
                    if unify(t, &name, env, &mut bound) {
                        trace.push(JustAtom::L(l));
                        self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
                        trace.pop();
                    }
                    for v in bound {
                        env.remove(&v);
                    }
                }
                Ok(())
            }
            Atom::H(lo, hi) => {
                for &(a, b) in self.lattice.covers() {
                    let (an, bn) = (
                        Term::sym(self.lattice.name(a)),
                        Term::sym(self.lattice.name(b)),
                    );
                    let mut bound = Vec::new();
                    if unify(lo, &an, env, &mut bound) && unify(hi, &bn, env, &mut bound) {
                        trace.push(JustAtom::H(a, b));
                        self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
                        trace.pop();
                    }
                    for v in bound {
                        env.remove(&v);
                    }
                }
                Ok(())
            }
            Atom::Leq(lo, hi) => {
                for a in self.lattice.labels() {
                    for b in self.lattice.up_set(a) {
                        let (an, bn) = (
                            Term::sym(self.lattice.name(a)),
                            Term::sym(self.lattice.name(b)),
                        );
                        let mut bound = Vec::new();
                        if unify(lo, &an, env, &mut bound) && unify(hi, &bn, env, &mut bound) {
                            trace.push(JustAtom::Leq(a, b));
                            self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
                            trace.pop();
                        }
                        for v in bound {
                            env.remove(&v);
                        }
                    }
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn try_match_mfact(
        &self,
        m: &MAtom,
        fact: &MFact,
        idx: usize,
        body: &[Atom],
        pos: usize,
        env: &mut Env,
        trace: &mut Vec<JustAtom>,
        guard: &OpGuard,
        emit: &mut dyn FnMut(&Env, &Vec<JustAtom>),
        _via_filter: bool,
    ) -> Result<()> {
        let level_term = Term::sym(self.lattice.name(fact.level));
        let class_term = Term::sym(self.lattice.name(fact.class));
        let mut bound = Vec::new();
        let ok = unify(&m.level, &level_term, env, &mut bound)
            && unify(&m.key, &fact.key, env, &mut bound)
            && unify(&m.class, &class_term, env, &mut bound)
            && unify(&m.value, &fact.value, env, &mut bound);
        if ok {
            trace.push(JustAtom::M(idx));
            self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
            trace.pop();
        }
        for v in bound {
            env.remove(&v);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn try_filter_match(
        &self,
        m: &MAtom,
        fact: &MFact,
        idx: usize,
        body: &[Atom],
        pos: usize,
        env: &mut Env,
        trace: &mut Vec<JustAtom>,
        guard: &OpGuard,
        emit: &mut dyn FnMut(&Env, &Vec<JustAtom>),
    ) -> Result<()> {
        // Candidate goal levels l with l ≺ fact.level and l ⪯ user.
        for l in self.lattice.down_set(fact.level) {
            if l == fact.level || !self.lattice.leq(l, self.user) {
                continue;
            }
            let goal_level = Term::sym(self.lattice.name(l));
            if self.lattice.leq(fact.class, l) {
                // FILTER: the column is visible at l.
                let class_term = Term::sym(self.lattice.name(fact.class));
                let mut bound = Vec::new();
                let ok = unify(&m.level, &goal_level, env, &mut bound)
                    && unify(&m.key, &fact.key, env, &mut bound)
                    && unify(&m.class, &class_term, env, &mut bound)
                    && unify(&m.value, &fact.value, env, &mut bound);
                if ok {
                    trace.push(JustAtom::M(idx));
                    self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
                    trace.pop();
                }
                for v in bound {
                    env.remove(&v);
                }
            } else if self.options.enable_filter_null {
                // FILTER-NULL: the column is hidden; inherit ⊥ classified
                // at the goal level.
                let class_term = Term::sym(self.lattice.name(l));
                let mut bound = Vec::new();
                let ok = unify(&m.level, &goal_level, env, &mut bound)
                    && unify(&m.key, &fact.key, env, &mut bound)
                    && unify(&m.class, &class_term, env, &mut bound)
                    && unify(&m.value, &Term::Null, env, &mut bound);
                if ok {
                    trace.push(JustAtom::M(idx));
                    self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
                    trace.pop();
                }
                for v in bound {
                    env.remove(&v);
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn match_batom(
        &self,
        m: &MAtom,
        mode: &Arc<str>,
        body: &[Atom],
        pos: usize,
        env: &mut Env,
        trace: &mut Vec<JustAtom>,
        guard: &OpGuard,
        emit: &mut dyn FnMut(&Env, &Vec<JustAtom>),
    ) -> Result<()> {
        let builtin = Mode::parse(mode);
        if builtin.is_none() && !self.user_modes.iter().any(|um| um == mode) {
            return Err(MultiLogError::UnknownMode(mode.to_string()));
        }
        // Enumerate belief levels `at` compatible with the atom's level
        // term, guarded by `at ⪯ u`.
        for at in self.lattice.labels() {
            if !self.lattice.leq(at, self.user) {
                continue;
            }
            let at_term = Term::sym(self.lattice.name(at));
            let mut bound_at = Vec::new();
            if !unify(&m.level, &at_term, env, &mut bound_at) {
                continue;
            }
            match builtin {
                Some(mode_b) => {
                    static EMPTY: Vec<usize> = Vec::new();
                    let candidates = self
                        .m_by_col
                        .get(&(m.pred.clone(), m.attr.clone()))
                        .unwrap_or(&EMPTY);
                    for &idx in candidates {
                        let fact = &self.mfacts[idx];
                        // Guard: the believed column must be readable.
                        if !self.lattice.leq(fact.class, self.user) {
                            continue;
                        }
                        if !self.believed_indexed(fact, at, mode_b) {
                            continue;
                        }
                        let class_term = Term::sym(self.lattice.name(fact.class));
                        let mut bound = Vec::new();
                        let ok = unify(&m.key, &fact.key, env, &mut bound)
                            && unify(&m.class, &class_term, env, &mut bound)
                            && unify(&m.value, &fact.value, env, &mut bound);
                        if ok {
                            trace.push(JustAtom::Bel {
                                fact: idx,
                                at,
                                mode: mode.clone(),
                            });
                            self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
                            trace.pop();
                        }
                        for v in bound {
                            env.remove(&v);
                        }
                    }
                }
                None => {
                    // USER-BELIEF (Figure 13): a b-atom in a user mode is
                    // proved by a `bel/7` p-fact.
                    static EMPTY: Vec<usize> = Vec::new();
                    let candidates = self.p_by_pred.get("bel").unwrap_or(&EMPTY);
                    for &idx in candidates {
                        let fact = &self.pfacts[idx];
                        if fact.args.len() != 7 {
                            continue;
                        }
                        if fact.args[6] != Term::sym(mode.as_ref()) {
                            continue;
                        }
                        if fact.args[5] != at_term {
                            continue;
                        }
                        if fact.args[0] != Term::sym(m.pred.as_ref())
                            || fact.args[2] != Term::sym(m.attr.as_ref())
                        {
                            continue;
                        }
                        // Guard: the believed column must be readable
                        // (`c ⪯ u`), exactly as for built-in modes.
                        if let Term::Sym(cl) = &fact.args[4] {
                            match self.lattice.label(cl) {
                                Some(cl) if self.lattice.leq(cl, self.user) => {}
                                _ => continue,
                            }
                        }
                        let mut bound = Vec::new();
                        let ok = unify(&m.key, &fact.args[1], env, &mut bound)
                            && unify(&m.value, &fact.args[3], env, &mut bound)
                            && unify(&m.class, &fact.args[4], env, &mut bound);
                        if ok {
                            trace.push(JustAtom::P(idx));
                            self.match_body_traced(body, pos + 1, env, trace, guard, emit)?;
                            trace.pop();
                        }
                        for v in bound {
                            env.remove(&v);
                        }
                    }
                }
            }
            for v in bound_at {
                env.remove(&v);
            }
        }
        Ok(())
    }
}

impl fmt::Debug for MultiLogEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MultiLogEngine {{ user: {}, m-facts: {}, p-facts: {} }}",
            self.lattice.name(self.user),
            self.mfacts.len(),
            self.pfacts.len()
        )
    }
}

type Env = HashMap<String, Term>;

/// Unify a pattern term against a ground term, recording fresh bindings
/// in `bound` for backtracking.
fn unify(pattern: &Term, ground: &Term, env: &mut Env, bound: &mut Vec<String>) -> bool {
    match pattern {
        Term::Var(v) => match env.get(v.as_ref()) {
            Some(existing) => existing == ground,
            None => {
                env.insert(v.to_string(), ground.clone());
                bound.push(v.to_string());
                true
            }
        },
        other => other == ground,
    }
}

/// Resolve a head term against the match environment; `None` when the
/// term is a variable the body never bound (callers turn this into
/// [`MultiLogError::UnsafeVariable`]).
fn resolve_term(t: &Term, env: &Env) -> Option<Term> {
    match t {
        Term::Var(v) => env.get(v.as_ref()).cloned(),
        other => Some(other.clone()),
    }
}

/// Whether any Σ/Π clause body uses a cautious b-atom.
fn db_uses_cau(db: &MultiLogDb) -> bool {
    db.sigma()
        .iter()
        .chain(db.pi())
        .flat_map(|c| &c.body)
        .any(|a| matches!(a, Atom::B(_, m) if m.as_ref() == "cau"))
}

/// Collect user-defined mode names: the 7th argument of `bel/7` heads in Π.
fn collect_user_modes(db: &MultiLogDb) -> Vec<Arc<str>> {
    let mut out: Vec<Arc<str>> = Vec::new();
    for c in db.pi() {
        if let Head::P(p) = &c.head {
            if p.pred.as_ref() == "bel" && p.args.len() == 7 {
                if let Term::Sym(mode) = &p.args[6] {
                    if !out.iter().any(|m| m == mode) {
                        out.push(mode.clone());
                    }
                }
            }
        }
    }
    out
}

/// Every referenced mode must be built-in or user-defined.
fn check_modes_known(db: &MultiLogDb, user_modes: &[Arc<str>]) -> Result<()> {
    for c in db.sigma().iter().chain(db.pi()) {
        for a in &c.body {
            if let Atom::B(_, mode) = a {
                if Mode::parse(mode).is_none() && !user_modes.iter().any(|m| m == mode) {
                    return Err(MultiLogError::UnknownMode(mode.to_string()));
                }
            }
        }
    }
    Ok(())
}

/// The level-stratification condition for cautious belief (see module
/// docs): an m-clause consulting `<< cau` at level `l` must have a ground
/// head level strictly dominating `l`; p-clauses may not consult `cau`;
/// when `cau` occurs anywhere, all m-clause head levels must be ground.
fn check_belief_stratification(db: &MultiLogDb, lat: &SecurityLattice) -> Result<()> {
    if !db_uses_cau(db) {
        return Ok(());
    }
    for c in db.sigma() {
        let Head::M(hm) = &c.head else {
            // Σ is partitioned by head shape at construction; a non-m
            // head here means the database bypassed validation.
            return Err(MultiLogError::NotAdmissible {
                detail: format!("Σ clause `{c}` does not have an m-atom head"),
            });
        };
        let head_level = match &hm.level {
            Term::Sym(s) => lat.label(s),
            _ => None,
        };
        let Some(head_level) = head_level else {
            return Err(MultiLogError::NotBeliefStratified {
                detail: format!(
                    "clause `{c}` has a non-ground head level while the program uses `<< cau`"
                ),
            });
        };
        for a in &c.body {
            if let Atom::B(bm, mode) = a {
                if mode.as_ref() != "cau" {
                    continue;
                }
                let b_level = match &bm.level {
                    Term::Sym(s) => lat.label(s),
                    _ => None,
                };
                let ok = b_level.is_some_and(|bl| lat.lt(bl, head_level));
                if !ok {
                    return Err(MultiLogError::NotBeliefStratified {
                        detail: format!(
                            "clause `{c}`: the `<< cau` level must be a ground level \
                             strictly dominated by the head level"
                        ),
                    });
                }
            }
        }
    }
    for c in db.pi() {
        for a in &c.body {
            if matches!(a, Atom::B(_, m) if m.as_ref() == "cau") {
                return Err(MultiLogError::NotBeliefStratified {
                    detail: format!("p-clause `{c}` may not consult `<< cau`"),
                });
            }
        }
    }
    Ok(())
}

/// Aggregate heads and `@algo(...)` operator calls are executed by the
/// Datalog back-end via the reduction; the operational engine's
/// backtracking fixpoint has no fold or operator machinery, so it
/// rejects such databases with a typed error instead of silently
/// deriving nothing.
fn check_reduction_only(db: &MultiLogDb) -> Result<()> {
    for c in db.clauses() {
        if c.agg.is_some() {
            return Err(MultiLogError::ReductionOnly {
                detail: format!("aggregate clause `{c}`"),
            });
        }
        if c.uses_algo() {
            return Err(MultiLogError::ReductionOnly {
                detail: format!("algorithm operator call in `{c}`"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;

    fn engine(src: &str, user: &str) -> MultiLogEngine {
        let db = parse_database(src).unwrap();
        MultiLogEngine::new(&db, user).unwrap()
    }

    const D1: &str = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[p(k : a -u-> v)].
        c[p(k : a -c-> t)] <- q(j).
        s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.
        q(j).
    "#;

    #[test]
    fn reduction_only_constructs_rejected() {
        // The operational engine has no fold or operator machinery; a
        // silent empty derivation would be wrong, so construction fails
        // with a typed error pointing at `ReducedEngine`.
        let agg = parse_database("part(a, b). total(P, count(S)) <- part(P, S).").unwrap();
        assert!(matches!(
            MultiLogEngine::new(&agg, "s"),
            Err(crate::MultiLogError::ReductionOnly { .. })
        ));
        let algo = parse_database("edge(a, b). r(X, Y) <- @bfs(edge, X, Y).").unwrap();
        assert!(matches!(
            MultiLogEngine::new(&algo, "s"),
            Err(crate::MultiLogError::ReductionOnly { .. })
        ));
    }

    #[test]
    fn d1_derives_all_facts() {
        let e = engine(D1, "s");
        // u fact, c fact (q(j) holds), s fact (cau at c believes t).
        assert_eq!(e.mfacts().len(), 3);
        assert_eq!(e.pfacts().len(), 1);
    }

    #[test]
    fn figure11_query_succeeds() {
        // ⟨D1, c⟩ ⊢ c[p(k : a -u-> v)] << opt with binding R/u.
        let e = engine(D1, "c");
        let ans = e.solve_text("c[p(k : a -u-> v)] << opt").unwrap();
        assert_eq!(ans.len(), 1);
        // And with a variable for the level inside the belief:
        let ans = e.solve_text("c[p(k : a -C-> V)] << opt").unwrap();
        assert_eq!(
            ans.len(),
            2,
            "both the u and c columns are visible: {ans:?}"
        );
    }

    #[test]
    fn no_read_up_enforced() {
        let e = engine(D1, "u");
        // The c-level fact is not visible to a u user in any mode.
        assert!(e.solve_text("c[p(k : a -c-> t)]").unwrap().is_empty());
        assert!(e
            .solve_text("c[p(k : a -c-> t)] << fir")
            .unwrap()
            .is_empty());
        // The u fact is.
        assert_eq!(e.solve_text("u[p(k : a -u-> v)]").unwrap().len(), 1);
    }

    #[test]
    fn s_level_rule_fires_only_with_cau_support() {
        let e = engine(D1, "s");
        assert_eq!(e.solve_text("s[p(k : a -u-> v)]").unwrap().len(), 1);
        // Remove the q(j) fact: the c rule cannot fire, so cau at c
        // believes the u fact instead, and the s rule still needs t —
        // which fails.
        let without_q = r#"
            level(u). level(c). level(s).
            order(u, c). order(c, s).
            u[p(k : a -u-> v)].
            c[p(k : a -c-> t)] <- q(j).
            s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.
        "#;
        let e = engine(without_q, "s");
        assert!(e.solve_text("s[p(k : a -u-> v)]").unwrap().is_empty());
        // But cau at c now believes v (nothing overrides it).
        assert_eq!(e.solve_text("c[p(k : a -u-> v)] << cau").unwrap().len(), 1);
    }

    #[test]
    fn cautious_override_in_queries() {
        let e = engine(D1, "s");
        // At c: t (class c) overrides v (class u).
        assert!(e
            .solve_text("c[p(k : a -u-> v)] << cau")
            .unwrap()
            .is_empty());
        assert_eq!(e.solve_text("c[p(k : a -c-> t)] << cau").unwrap().len(), 1);
        // At u: only v visible; believed.
        assert_eq!(e.solve_text("u[p(k : a -u-> v)] << cau").unwrap().len(), 1);
    }

    #[test]
    fn belief_stratification_rejects_same_level_cau() {
        let src = r#"
            level(u). level(c). order(u, c).
            u[p(k : a -u-> v)].
            c[p(k : a -c-> w)] <- c[p(k : a -u-> v)] << cau.
        "#;
        let db = parse_database(src).unwrap();
        let err = MultiLogEngine::new(&db, "c");
        assert!(matches!(
            err,
            Err(MultiLogError::NotBeliefStratified { .. })
        ));
    }

    #[test]
    fn unknown_mode_rejected() {
        let src = r#"
            level(u). level(c). order(u, c).
            u[p(k : a -u-> v)].
            c[p(k : a -c-> w)] <- u[p(k : a -u-> v)] << zeal.
        "#;
        let db = parse_database(src).unwrap();
        assert!(matches!(
            MultiLogEngine::new(&db, "c"),
            Err(MultiLogError::UnknownMode(_))
        ));
    }

    #[test]
    fn user_defined_mode_via_bel_facts() {
        let src = r#"
            level(u). level(c). order(u, c).
            u[p(k : a -u-> v)].
            bel(p, k, a, v, u, c, myway) <- level(c).
            c[q(k : b -c-> w)] <- c[p(k : a -u-> v)] << myway.
        "#;
        let e = engine(src, "c");
        assert_eq!(e.solve_text("c[q(k : b -c-> w)]").unwrap().len(), 1);
        assert_eq!(
            e.solve_text("c[p(k : a -u-> V)] << myway").unwrap().len(),
            1
        );
    }

    #[test]
    fn datalog_degeneration_runs() {
        // Prop 6.1: pure Datalog programs evaluate unchanged.
        let src = "q(a). q(b). r(X) <- q(X).";
        let db = parse_database(src).unwrap();
        let e = MultiLogEngine::new(&db, "system").unwrap();
        assert_eq!(e.solve_text("r(X)").unwrap().len(), 2);
        assert_eq!(e.pfacts().len(), 4);
    }

    #[test]
    fn recursive_p_clauses() {
        let src = r#"
            level(u).
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) <- edge(X, Y).
            path(X, Y) <- edge(X, Z), path(Z, Y).
        "#;
        let e = engine(src, "u");
        assert_eq!(e.solve_text("path(a, X)").unwrap().len(), 3);
    }

    #[test]
    fn filter_disabled_by_default() {
        // §7: without σ, a u query cannot see the low-classified part of a
        // higher tuple.
        let src = r#"
            level(u). level(s). order(u, s).
            s[m(k : ship -u-> phantom)].
        "#;
        let e = engine(src, "s");
        assert!(e
            .solve_text("u[m(k : ship -u-> phantom)]")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn filter_enables_downward_visibility() {
        let src = r#"
            level(u). level(s). order(u, s).
            s[m(k : ship -u-> phantom)].
            s[m(k : obj -s-> spying)].
        "#;
        let db = parse_database(src).unwrap();
        let e = MultiLogEngine::with_options(
            &db,
            "s",
            EngineOptions {
                enable_filter: true,
                enable_filter_null: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        // FILTER: the u-classified ship column is visible at u.
        assert_eq!(
            e.solve_text("u[m(k : ship -u-> phantom)]").unwrap().len(),
            1
        );
        // FILTER-NULL: the s-classified objective surfaces as ⊥ at u.
        assert_eq!(e.solve_text("u[m(k : obj -u-> null)]").unwrap().len(), 1);
        // The actual secret does not leak.
        assert!(e
            .solve_text("u[m(k : obj -s-> spying)]")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn leq_goals() {
        let e = engine(D1, "s");
        assert_eq!(e.solve_text("u leq s").unwrap().len(), 1);
        assert!(e.solve_text("s leq u").unwrap().is_empty());
        let ans = e.solve_text("X leq c").unwrap();
        assert_eq!(ans.len(), 2); // u ⪯ c and c ⪯ c
    }

    #[test]
    fn level_and_order_goals() {
        let e = engine(D1, "s");
        assert_eq!(e.solve_text("level(X)").unwrap().len(), 3);
        assert_eq!(e.solve_text("order(u, X)").unwrap().len(), 1);
    }

    #[test]
    fn molecular_query() {
        let src = r#"
            level(u).
            u[m(k1 : a -u-> x; b -u-> y)].
            u[m(k2 : a -u-> x; b -u-> z)].
        "#;
        let e = engine(src, "u");
        let ans = e.solve_text("u[m(K : a -u-> x; b -u-> y)]").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0]["K"], Term::sym("k1"));
    }

    #[test]
    fn unknown_user_level_rejected() {
        let db = parse_database("level(u). u[p(k : a -u-> v)].").unwrap();
        assert!(matches!(
            MultiLogEngine::new(&db, "zz"),
            Err(MultiLogError::NotAdmissible { .. })
        ));
    }
}
