//! Threaded stress test for the multi-session belief server: reader
//! threads at distinct clearance levels query concurrently with a
//! writer committing a deterministic update stream, and every recorded
//! `(epoch, answers)` observation is checked against a **snapshot
//! oracle** — a from-scratch (non-incremental) reduction of the base
//! database plus exactly the first `epoch` committed batches.
//!
//! The oracle is the snapshot-isolation contract: a reader never sees a
//! torn state, only some *published generation*, and "epoch e" names the
//! same committed prefix at every level.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use multilog_core::ast::Head;
use multilog_core::reduce::{EdbUpdate, ReducedEngine};
use multilog_core::{parse_clause, parse_database, Answer, BeliefServer, EngineOptions};

const BASE: &str = r#"
    level(u). level(c). level(s).
    order(u, c). order(c, s).
    u[p(k0 : a -u-> v0)].
    c[p(kc : a -c-> t)] <- q(j).
    q(j).
"#;

/// The deterministic commit schedule: commit `i` either asserts a
/// persistent fact, asserts a transient fact, or retracts the transient
/// fact of the previous commit — so consecutive epochs always differ and
/// the visible state both grows and shrinks over the run.
fn schedule(commits: usize) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for i in 0..commits {
        match i % 3 {
            0 => out.push((format!("u[p(k{i} : a -u-> v{i})]."), true)),
            1 => out.push((format!("u[p(tmp : a -u-> w{i})]."), true)),
            _ => out.push((format!("u[p(tmp : a -u-> w{})].", i - 1), false)),
        }
    }
    out
}

fn update(text: &str, assert: bool) -> EdbUpdate {
    let clause = parse_clause(text).unwrap().remove(0);
    let Head::M(m) = clause.head else {
        panic!("schedule entries are m-facts: {text}");
    };
    if assert {
        EdbUpdate::Assert(m)
    } else {
        EdbUpdate::Retract(m)
    }
}

/// The database source after the first `epoch` commits: base text plus
/// the surviving asserted fact lines (a retract removes one occurrence).
fn source_at(epoch: usize, schedule: &[(String, bool)]) -> String {
    let mut facts: Vec<&str> = Vec::new();
    for (text, assert) in &schedule[..epoch] {
        if *assert {
            facts.push(text);
        } else if let Some(pos) = facts.iter().position(|f| *f == text) {
            facts.remove(pos);
        } else {
            panic!("schedule retracts a fact it never asserted: {text}");
        }
    }
    let mut src = String::from(BASE);
    for f in facts {
        src.push_str(f);
        src.push('\n');
    }
    src
}

/// The broad per-level goal readers issue: everything visible about `p`.
fn goal_for(level: &str) -> String {
    format!("{level}[p(K : a -C-> V)] << opt")
}

/// Normalize an answer set for comparison across evaluation paths.
fn norm(answers: &[Answer]) -> Vec<String> {
    let mut out: Vec<String> = answers.iter().map(|a| format!("{a:?}")).collect();
    out.sort();
    out.dedup();
    out
}

#[test]
fn concurrent_readers_always_see_some_published_generation() {
    let commits = 24usize;
    let plan = schedule(commits);
    let server = Arc::new(BeliefServer::new(
        parse_database(BASE).unwrap(),
        EngineOptions::default(),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    // (level, epoch, normalized answers) triples observed by readers.
    type Observation = (String, u64, Vec<String>);
    let mut threads = Vec::new();
    for level in ["u", "c", "s"] {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        threads.push(thread::spawn(move || -> Vec<Observation> {
            let mut session = server.open_reader(level).unwrap();
            let goal = goal_for(level);
            let mut seen = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                session.refresh();
                // The pinned snapshot fixes (epoch, answers) as a unit:
                // commits between these two calls must not tear it.
                let epoch = session.epoch();
                let answers = session.query_text(&goal).unwrap();
                seen.push((level.to_owned(), epoch, norm(&answers)));
            }
            seen
        }));
    }

    // Writer on the main thread, pacing commits so readers interleave
    // across many distinct epochs.
    let mut writer = server.open_writer().unwrap();
    let mut late: Option<thread::JoinHandle<Vec<Observation>>> = None;
    for (i, (text, assert)) in plan.iter().enumerate() {
        let summary = writer.commit(&[update(text, *assert)]).unwrap();
        assert_eq!(summary.epoch, (i + 1) as u64, "epochs count commits");
        if i == commits / 2 {
            // A reader opened mid-stream pins the generation current
            // now; its observations face the same oracle.
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            late = Some(thread::spawn(move || -> Vec<Observation> {
                let mut session = server.open_reader("s").unwrap();
                let mut seen = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    session.refresh();
                    let epoch = session.epoch();
                    let answers = session.query_text(&goal_for("s")).unwrap();
                    seen.push(("s".to_owned(), epoch, norm(&answers)));
                }
                seen
            }));
        }
        thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);

    let mut observations: Vec<Observation> = Vec::new();
    for t in threads {
        observations.extend(t.join().unwrap());
    }
    if let Some(t) = late {
        observations.extend(t.join().unwrap());
    }
    assert_eq!(server.epoch(), commits as u64);

    // Readers must actually have raced the writer across generations.
    let distinct_epochs: std::collections::BTreeSet<u64> =
        observations.iter().map(|(_, e, _)| *e).collect();
    assert!(
        distinct_epochs.len() >= 4,
        "expected interleaving across generations, saw epochs {distinct_epochs:?}"
    );

    // Collapse observations: every reader that saw (level, epoch) must
    // have seen the *same* answers (no torn reads), so each key maps to
    // exactly one answer set...
    let mut by_generation: std::collections::BTreeMap<(String, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    for (level, epoch, answers) in observations {
        match by_generation.entry((level.clone(), epoch)) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(answers);
            }
            std::collections::btree_map::Entry::Occupied(o) => assert_eq!(
                o.get(),
                &answers,
                "level {level} at epoch {epoch}: two readers disagree about \
                 the same published generation"
            ),
        }
    }

    // ...and the oracle: that answer set equals a from-scratch
    // (non-incremental) reduction of base + the first `epoch` batches.
    for ((level, epoch), answers) in &by_generation {
        let db = parse_database(&source_at(*epoch as usize, &plan)).unwrap();
        let scratch = ReducedEngine::new(&db, level).unwrap();
        let oracle = norm(&scratch.solve_text(&goal_for(level)).unwrap());
        assert_eq!(
            answers, &oracle,
            "level {level} at epoch {epoch}: reader answers diverge from \
             the scratch evaluation of that published generation"
        );
    }
}
