//! Property-based tests for the MultiLog core: Bell–LaPadula invariants,
//! proof-tree soundness, parser round-trips, and mode relationships over
//! randomly generated databases.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_core::proof::{prove, RuleName};
use multilog_core::{parse_database, parse_goal, MultiLogDb, MultiLogEngine};

/// A random admissible MultiLog database over a chain lattice.
fn arb_db() -> impl Strategy<Value = (String, usize)> {
    let fact = (0usize..3, 0usize..5, 0usize..3, 0usize..5);
    let rule = (0usize..5, any::<bool>());
    (
        2usize..4,
        proptest::collection::vec(fact, 1..20),
        proptest::collection::vec(rule, 0..5),
    )
        .prop_map(|(depth, facts, rules)| {
            let mut src = String::new();
            for i in 0..depth {
                src.push_str(&format!("level(l{i}).\n"));
            }
            for i in 1..depth {
                src.push_str(&format!("order(l{}, l{i}).\n", i - 1));
            }
            for (lvl, key, cls, val) in facts {
                let lvl = lvl.min(depth - 1);
                let cls = cls.min(lvl);
                src.push_str(&format!("l{lvl}[data(k{key} : a -l{cls}-> v{val})].\n"));
            }
            let top = depth - 1;
            for (key, cau) in rules {
                let mode = if cau { "cau" } else { "opt" };
                src.push_str(&format!(
                    "l{top}[derived(k{key} : b -l{top}-> out{key})] <- \
                     l{}[data(k{key} : a -C-> V)] << {mode}.\n",
                    top - 1
                ));
            }
            (src, depth)
        })
}

fn engine(src: &str, user: &str) -> MultiLogEngine {
    let db: MultiLogDb = parse_database(src).expect("generated db parses");
    MultiLogEngine::new(&db, user).expect("generated db evaluates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No read up: every m-fact answer has level and class dominated by
    /// the querying user, in every mode.
    #[test]
    fn answers_respect_bell_lapadula((src, depth) in arb_db()) {
        for lvl in 0..depth {
            let user = format!("l{lvl}");
            let e = engine(&src, &user);
            let lat = e.lattice().clone();
            for goal in [
                "L[data(K : a -C-> V)]",
                "L[data(K : a -C-> V)] << fir",
                "L[data(K : a -C-> V)] << opt",
                "L[data(K : a -C-> V)] << cau",
            ] {
                for ans in e.solve_text(goal).expect("solve") {
                    prop_assert!(lat
                        .dominates_by_name(&user, &ans["L"].to_string())
                        .unwrap());
                    prop_assert!(lat
                        .dominates_by_name(&user, &ans["C"].to_string())
                        .unwrap());
                }
            }
        }
    }

    /// Every answer has a proof tree, every proof tree ends in EMPTY
    /// leaves, and the root sequent mentions the user level.
    #[test]
    fn every_answer_has_a_proof((src, depth) in arb_db()) {
        let user = format!("l{}", depth - 1);
        let e = engine(&src, &user);
        for goal_text in [
            "L[data(K : a -C-> V)] << opt",
            "L[derived(K : b -C-> V)]",
        ] {
            let goal = parse_goal(goal_text).unwrap();
            let answers = e.solve(&goal).expect("solve");
            if answers.is_empty() {
                prop_assert!(prove(&e, &goal).expect("prove").is_none());
            } else {
                let tree = prove(&e, &goal).expect("prove").expect("tree for answer");
                // Leaves are EMPTY.
                fn leaves_ok(n: &multilog_core::proof::ProofNode) -> bool {
                    if n.children.is_empty() {
                        n.rule == RuleName::Empty
                    } else {
                        n.children.iter().all(leaves_ok)
                    }
                }
                prop_assert!(leaves_ok(&tree), "non-EMPTY leaf in:\n{}", tree.render());
                prop_assert!(tree.sequent.contains(&user));
                prop_assert!(tree.height() >= 1 && tree.size() >= tree.height());
            }
        }
    }

    /// Firm answers ⊆ optimistic answers ⊆ plain visibility; cautious ⊆
    /// optimistic.
    #[test]
    fn mode_inclusions((src, depth) in arb_db()) {
        for lvl in 0..depth {
            let user = format!("l{lvl}");
            let e = engine(&src, &user);
            // Fix the belief level to the user's own level so the answer
            // sets are directly comparable.
            let fir = e.solve_text(&format!("{user}[data(K : a -C-> V)] << fir")).unwrap();
            let opt = e.solve_text(&format!("{user}[data(K : a -C-> V)] << opt")).unwrap();
            let cau = e.solve_text(&format!("{user}[data(K : a -C-> V)] << cau")).unwrap();
            for a in &fir {
                prop_assert!(opt.contains(a), "fir ⊄ opt");
            }
            for a in &cau {
                prop_assert!(opt.contains(a), "cau ⊄ opt");
            }
        }
    }

    /// Solving is deterministic and answers are sorted + deduplicated.
    #[test]
    fn solving_is_deterministic((src, depth) in arb_db()) {
        let user = format!("l{}", depth - 1);
        let e = engine(&src, &user);
        let a = e.solve_text("L[data(K : a -C-> V)] << opt").unwrap();
        let b = e.solve_text("L[data(K : a -C-> V)] << opt").unwrap();
        prop_assert_eq!(&a, &b);
        let mut sorted = a.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(a, sorted);
    }

    /// Printing every clause and re-parsing yields a database with the
    /// same evaluation.
    #[test]
    fn print_parse_roundtrip((src, depth) in arb_db()) {
        let db = parse_database(&src).unwrap();
        let mut printed = String::new();
        for c in db.clauses() {
            printed.push_str(&c.to_string());
            printed.push('\n');
        }
        let db2 = parse_database(&printed).unwrap();
        let user = format!("l{}", depth - 1);
        let e1 = MultiLogEngine::new(&db, &user).unwrap();
        let e2 = MultiLogEngine::new(&db2, &user).unwrap();
        prop_assert_eq!(
            e1.solve_text("L[data(K : a -C-> V)]").unwrap(),
            e2.solve_text("L[data(K : a -C-> V)]").unwrap()
        );
        prop_assert_eq!(e1.mfacts().len(), e2.mfacts().len());
    }

    /// Raising the user level never removes answers for a fixed goal
    /// (visibility is monotone in clearance).
    #[test]
    fn clearance_monotonicity((src, depth) in arb_db()) {
        let mut prev: Option<Vec<multilog_core::Answer>> = None;
        for lvl in 0..depth {
            let user = format!("l{lvl}");
            let e = engine(&src, &user);
            let ans = e.solve_text("L[data(K : a -C-> V)]").unwrap();
            if let Some(prev) = &prev {
                for a in prev {
                    prop_assert!(ans.contains(a), "answer lost when clearance raised");
                }
            }
            prev = Some(ans);
        }
    }
}
