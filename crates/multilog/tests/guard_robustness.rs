//! Guard behaviour and crash-robustness of the public entry points:
//!
//! * malformed or truncated goal/database text never panics
//!   `solve_text`, `prove_text`, or `parse_database` — every failure is
//!   a typed [`MultiLogError`];
//! * each evaluation guard (budget, deadline, cancellation) trips as its
//!   own error variant on both the operational and the reduced engine,
//!   with the process alive afterwards.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use proptest::prelude::*;

use multilog_core::proof::prove_text;
use multilog_core::reduce::ReducedEngine;
use multilog_core::{parse_database, CancelToken, EngineOptions, MultiLogEngine, MultiLogError};

const DB: &str = r#"
    level(u). level(c). level(s).
    order(u, c). order(c, s).
    u[p(k : a -u-> v)].
    c[p(k : a -c-> t)] <- q(j).
    s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.
    q(j).
"#;

fn engine() -> MultiLogEngine {
    let db = parse_database(DB).unwrap();
    MultiLogEngine::new(&db, "s").unwrap()
}

/// A database whose cross-product rule derives ~n³ facts.
fn explosive_db(n: usize) -> String {
    let mut src = String::from("level(u).\n");
    for i in 0..n {
        src.push_str(&format!("n(x{i}).\n"));
    }
    src.push_str("pair(X, Y, Z) <- n(X), n(Y), n(Z).\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary goal text: solve and prove must return, never panic.
    #[test]
    fn arbitrary_goals_never_panic(goal in "\\PC*") {
        let e = engine();
        let _ = e.solve_text(&goal);
        let _ = prove_text(&e, &goal);
    }

    /// Goal-shaped token soup reaches deeper grammar paths.
    #[test]
    fn goal_token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("s"), Just("c"), Just("u"), Just("p"), Just("q"),
            Just("k"), Just("a"), Just("v"), Just("X"), Just("V"),
            Just("_"), Just("["), Just("]"), Just("("), Just(")"),
            Just(":"), Just(";"), Just(","), Just("-u->"), Just("<<"),
            Just("fir"), Just("opt"), Just("cau"), Just("leq"),
        ],
        0..24,
    )) {
        let goal = tokens.join(" ");
        let e = engine();
        let _ = e.solve_text(&goal);
        let _ = prove_text(&e, &goal);
    }

    /// Truncating a valid database at an arbitrary byte offset parses or
    /// errors, never panics — and neither does evaluating the result.
    #[test]
    fn truncated_databases_never_panic(cut in 0usize..600) {
        let cut = cut.min(DB.len());
        if DB.is_char_boundary(cut) {
            if let Ok(db) = parse_database(&DB[..cut]) {
                let _ = MultiLogEngine::new(&db, "s");
                let _ = ReducedEngine::new(&db, "s");
            }
        }
    }
}

#[test]
fn budget_trips_operational_engine() {
    let db = parse_database(&explosive_db(30)).unwrap();
    let err = MultiLogEngine::with_options(
        &db,
        "u",
        EngineOptions {
            fact_limit: 200,
            ..EngineOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        MultiLogError::BudgetExceeded { budget: 200, .. }
    ));
}

#[test]
fn budget_trips_reduced_engine() {
    let db = parse_database(&explosive_db(30)).unwrap();
    let err = ReducedEngine::with_options(
        &db,
        "u",
        EngineOptions {
            fact_limit: 200,
            ..EngineOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        MultiLogError::BudgetExceeded { budget: 200, .. }
    ));
}

#[test]
fn deadline_trips_operational_engine() {
    let db = parse_database(DB).unwrap();
    let err = MultiLogEngine::with_options(
        &db,
        "s",
        EngineOptions {
            deadline: Some(Duration::ZERO),
            ..EngineOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        MultiLogError::DeadlineExceeded { limit_ms: 0 }
    ));
}

#[test]
fn deadline_trips_reduced_engine() {
    let db = parse_database(DB).unwrap();
    let err = ReducedEngine::with_options(
        &db,
        "s",
        EngineOptions {
            deadline: Some(Duration::ZERO),
            ..EngineOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        MultiLogError::DeadlineExceeded { limit_ms: 0 }
    ));
}

#[test]
fn cancellation_trips_both_engines() {
    let token = CancelToken::new();
    token.cancel();
    let db = parse_database(DB).unwrap();
    let opts = EngineOptions {
        cancel: Some(token),
        ..EngineOptions::default()
    };
    let err = MultiLogEngine::with_options(&db, "s", opts.clone()).unwrap_err();
    assert!(matches!(err, MultiLogError::Cancelled));
    let err = ReducedEngine::with_options(&db, "s", opts).unwrap_err();
    assert!(matches!(err, MultiLogError::Cancelled));
}

#[test]
fn deadline_guards_individual_goals() {
    // A valid engine whose *queries* run under a zero deadline.
    let db = parse_database(DB).unwrap();
    let fast = MultiLogEngine::new(&db, "s").unwrap();
    assert!(!fast.solve_text("q(j)").unwrap().is_empty());
    let guarded = MultiLogEngine::with_options(
        &db,
        "s",
        EngineOptions {
            deadline: Some(Duration::from_secs(3600)),
            ..EngineOptions::default()
        },
    )
    .unwrap();
    // A generous deadline leaves answers unchanged.
    assert_eq!(
        guarded.solve_text("q(j)").unwrap(),
        fast.solve_text("q(j)").unwrap()
    );
}

#[test]
fn operational_stats_populate_per_clause() {
    let db = parse_database(DB).unwrap();
    let e = MultiLogEngine::new(&db, "s").unwrap();
    let stats = e.stats();
    assert!(stats.rounds > 0);
    // One entry per Σ/Π clause, with the deriving clauses credited.
    assert_eq!(stats.per_clause.len(), db.sigma().len() + db.pi().len());
    let total_added: usize = stats.per_clause.iter().map(|c| c.facts_added).sum();
    assert!(total_added > 0, "{}", stats.summary());
    assert!(stats.summary().contains("clause:"));
}
