//! Soundness oracle for the lattice-flow abstract interpretation
//! (`multilog_core::flow`): over randomly generated MultiLog databases,
//! every labelled fact actually *observed* through a reduced fixpoint at
//! any clearance must lie within the static per-predicate bounds — the
//! abstract domain over-approximates, never under-approximates, the
//! concrete semantics. The check runs sequentially and from concurrent
//! reader threads sharing one flow report, and the flow-pruned demand
//! path must answer every goal exactly like the unpruned one.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use proptest::prelude::*;

use multilog_core::ast::Term;
use multilog_core::reduce::ReducedEngine;
use multilog_core::{analyze_db, parse_database, EngineOptions, MultiLogDb, PredKind};

/// A random admissible MultiLog database mirroring the
/// `demand_properties.rs` generator: a chain lattice `l0 ⪯ l1 ⪯ …`,
/// classified `data` facts, and `derived` rules consuming them
/// optimistically or cautiously.
fn arb_db() -> impl Strategy<Value = (String, usize)> {
    let fact = (0usize..3, 0usize..5, 0usize..3, 0usize..5);
    let rule = (0usize..5, any::<bool>());
    (
        2usize..4,
        proptest::collection::vec(fact, 1..16),
        proptest::collection::vec(rule, 0..4),
    )
        .prop_map(|(depth, facts, rules)| {
            let mut src = String::new();
            for i in 0..depth {
                src.push_str(&format!("level(l{i}).\n"));
            }
            for i in 1..depth {
                src.push_str(&format!("order(l{}, l{i}).\n", i - 1));
            }
            for (lvl, key, cls, val) in facts {
                let lvl = lvl.min(depth - 1);
                let cls = cls.min(lvl);
                src.push_str(&format!("l{lvl}[data(k{key} : a -l{cls}-> v{val})].\n"));
            }
            let top = depth - 1;
            for (key, cau) in rules {
                let mode = if cau { "cau" } else { "opt" };
                src.push_str(&format!(
                    "l{top}[derived(k{key} : b -l{top}-> out{key})] <- \
                     l{}[data(k{key} : a -C-> V)] << {mode}.\n",
                    top - 1
                ));
            }
            (src, depth)
        })
}

/// Every `pred` fact reachable through `engine` (its level and class
/// exposed as goal variables) lies within the static flow bounds.
fn assert_observed_within_bounds(
    report: &multilog_core::FlowReport,
    engine: &ReducedEngine,
    pred: &str,
    user: &str,
    src: &str,
) {
    let lat = report.lattice().expect("generated db has a lattice");
    let goal = format!("L[{pred}(K : a -C-> V)]");
    let answers = engine.solve_text(&goal).unwrap();
    if answers.is_empty() {
        return;
    }
    let bounds = report
        .predicate(PredKind::M, pred)
        .unwrap_or_else(|| panic!("observed `{pred}` facts but no flow entry over:\n{src}"));
    assert!(
        bounds.nonempty,
        "observed `{pred}` facts but flow says empty over:\n{src}"
    );
    for answer in &answers {
        for (var, bound) in [("L", &bounds.level), ("C", &bounds.class)] {
            let Some(Term::Sym(name)) = answer.get(var) else {
                panic!("goal `{goal}` answered without a ground `{var}`");
            };
            let label = lat.label(name).expect("answer label is declared");
            assert!(
                bound.contains(lat, label),
                "`{pred}` observed {var}={name} at clearance {user}, outside the \
                 static bound, over:\n{src}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential oracle: at every clearance, every observed labelled
    /// fact is inside the static bounds computed once for the database.
    #[test]
    fn observed_facts_lie_within_static_bounds((src, depth) in arb_db()) {
        let db: MultiLogDb = parse_database(&src).expect("generated db parses");
        let report = analyze_db(&db);
        for user_lvl in 0..depth {
            let user = format!("l{user_lvl}");
            let engine = ReducedEngine::new(&db, &user).expect("generated db reduces");
            for pred in ["data", "derived"] {
                assert_observed_within_bounds(&report, &engine, pred, &user, &src);
            }
        }
    }

    /// Threaded oracle: concurrent readers at different clearances share
    /// one flow report; the bounds hold from every thread.
    #[test]
    fn observed_facts_lie_within_static_bounds_threaded((src, depth) in arb_db()) {
        let db: MultiLogDb = parse_database(&src).expect("generated db parses");
        let report = Arc::new(analyze_db(&db));
        let src = Arc::new(src);
        let mut handles = Vec::new();
        for user_lvl in 0..depth {
            let report = Arc::clone(&report);
            let src = Arc::clone(&src);
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let user = format!("l{user_lvl}");
                let engine = ReducedEngine::new(&db, &user).expect("generated db reduces");
                for pred in ["data", "derived"] {
                    assert_observed_within_bounds(&report, &engine, pred, &user, &src);
                }
            }));
        }
        for h in handles {
            h.join().expect("reader thread");
        }
    }

    /// Pruning never changes answers: the flow-pruned demand path agrees
    /// with the unpruned demand path on every goal at every clearance.
    #[test]
    fn pruned_demand_equals_unpruned(
        (src, depth) in arb_db(),
        key in 0usize..5,
        lvl in 0usize..4,
    ) {
        let db: MultiLogDb = parse_database(&src).expect("generated db parses");
        let lvl = lvl.min(depth - 1);
        let goals = [
            format!("l{lvl}[data(k{key} : a -C-> V)]"),
            format!("l{lvl}[data(k{key} : a -C-> V)] << cau"),
            format!("l{lvl}[derived(k{key} : b -C-> V)] << opt"),
            "L[data(K : a -C-> V)]".to_owned(),
        ];
        let pruned_opts = EngineOptions { flow_prune: true, ..EngineOptions::default() };
        for user_lvl in [0, depth - 1] {
            let user = format!("l{user_lvl}");
            let plain = ReducedEngine::new(&db, &user).expect("generated db reduces");
            let pruned = ReducedEngine::with_options(&db, &user, pruned_opts.clone())
                .expect("generated db reduces");
            for goal in &goals {
                prop_assert_eq!(
                    plain.solve_text_demand(goal).unwrap(),
                    pruned.solve_text_demand(goal).unwrap(),
                    "goal `{}` at user {} over:\n{}",
                    goal, user, src
                );
            }
        }
    }
}
