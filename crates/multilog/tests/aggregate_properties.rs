//! Property tests for stratified aggregation through the τ reduction:
//! over randomly generated MultiLog databases — deliberately
//! polyinstantiation-heavy, the same key classified at several levels
//! and classifications — an aggregate head must equal a naive Rust fold
//! over the *distinct witness bindings* of its body (the Bertossi–
//! Gottlob bag-of-distinct-bindings reading), computed from the already
//! pinned non-aggregate belief query path.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use multilog_core::ast::Term;
use multilog_core::parse_database;
use multilog_core::reduce::ReducedEngine;

/// Random cells over a 3-level chain `l0 ⪯ l1 ⪯ l2`. Small key/value
/// universes make polyinstantiation (one key, many classifications and
/// levels) the common case, not the corner case.
fn arb_cells() -> impl Strategy<Value = Vec<(usize, usize, usize, usize)>> {
    let cell = (0usize..3, 0usize..3, 0usize..3, 0usize..3);
    proptest::collection::vec(cell, 1..20)
}

fn database(cells: &[(usize, usize, usize, usize)]) -> String {
    let mut src = String::new();
    src.push_str("level(l0). level(l1). level(l2).\n");
    src.push_str("order(l0, l1). order(l1, l2).\n");
    for (lvl, key, cls, val) in cells {
        let cls = cls.min(lvl);
        src.push_str(&format!("l{lvl}[emp(k{key} : sal -l{cls}-> v{val})].\n"));
    }
    src.push_str("total(H, count(K)) <- H[emp(K : sal -C-> V)] << opt, level(H).\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn count_equals_distinct_witness_oracle(cells in arb_cells()) {
        let src = database(&cells);
        let db = parse_database(&src).unwrap();
        for user in ["l0", "l1", "l2"] {
            let red = ReducedEngine::new(&db, user).unwrap();
            // Oracle: the aggregate body as a plain belief query — its
            // answers are the witness bindings (H, K, C, V); count the
            // distinct ones per dashboard row H. Polyinstantiated cells
            // (same key, different C or V) are distinct witnesses.
            let witnesses = red
                .solve_text("H[emp(K : sal -C-> V)] << opt, level(H)")
                .unwrap();
            let mut distinct: BTreeMap<Term, BTreeSet<(Term, Term, Term)>> =
                BTreeMap::new();
            for w in &witnesses {
                distinct
                    .entry(w["H"].clone())
                    .or_default()
                    .insert((w["K"].clone(), w["C"].clone(), w["V"].clone()));
            }
            let mut got: BTreeMap<Term, Term> = BTreeMap::new();
            for a in red.solve_text("total(H, N)").unwrap() {
                let prev = got.insert(a["H"].clone(), a["N"].clone());
                prop_assert!(prev.is_none(), "one row per group at {user}");
            }
            let expect: BTreeMap<Term, Term> = distinct
                .iter()
                .map(|(h, ws)| (h.clone(), Term::Int(ws.len() as i64)))
                .collect();
            prop_assert_eq!(got, expect, "user {}\n{}", user, src);
        }
    }

    #[test]
    fn count_demand_path_matches_materialized(cells in arb_cells()) {
        let src = database(&cells);
        let db = parse_database(&src).unwrap();
        let red = ReducedEngine::new(&db, "l2").unwrap();
        // Aggregate goals bail out of the magic rewrite (the fold needs
        // complete inputs); the cone fallback must still agree with the
        // materialized fixpoint, bound or unbound.
        for goal in ["total(H, N)", "total(l1, N)", "total(l2, N)"] {
            prop_assert_eq!(
                red.solve_text_demand(goal).unwrap(),
                red.solve_text(goal).unwrap(),
                "goal {}", goal
            );
        }
    }
}
