//! The lint pass: one firing and one non-firing case per `ML01xx` code,
//! paper-corpus cleanliness, and robustness (lint never panics on
//! anything the parser accepts).

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_core::lint::{lint_source, lint_source_at, Severity};
use multilog_core::parse_items;

/// A small sound lattice prefix shared by most cases.
const LAT: &str = "level(u). level(s). order(u, s).\n";

fn codes(src: &str) -> Vec<&'static str> {
    lint_source(src)
        .expect("lint input parses")
        .diagnostics
        .iter()
        .map(|d| d.code)
        .collect()
}

fn codes_at(src: &str, user: &str) -> Vec<&'static str> {
    lint_source_at(src, Some(user))
        .expect("lint input parses")
        .diagnostics
        .iter()
        .map(|d| d.code)
        .collect()
}

#[track_caller]
fn fires(src: &str, code: &str) {
    let found = codes(src);
    assert!(found.contains(&code), "expected {code}, got {found:?}");
}

#[track_caller]
fn clean_of(src: &str, code: &str) {
    let found = codes(src);
    assert!(!found.contains(&code), "unexpected {code} in {found:?}");
}

// ── ML0101 unsafe-variable ──────────────────────────────────────────

#[test]
fn ml0101_unsafe_variable() {
    fires("q(X).", "ML0101");
    fires(&format!("{LAT}s[p(K : a -u-> v)]."), "ML0101");
    clean_of("q(a). r(X) <- q(X).", "ML0101");
}

// ── ML0102 lambda-impure ────────────────────────────────────────────

#[test]
fn ml0102_lambda_impure() {
    fires("level(u) <- q(a). q(a).", "ML0102");
    clean_of(
        &format!("{LAT}order(u, s) <- level(u), level(s)."),
        "ML0102",
    );
}

// ── ML0103 undeclared-label ─────────────────────────────────────────

#[test]
fn ml0103_undeclared_label() {
    fires("level(u).\nu[p(k : a -s-> v)].", "ML0103");
    fires("level(u). order(u, s).", "ML0103");
    clean_of(&format!("{LAT}s[p(k : a -u-> v)]."), "ML0103");
    // The clearance itself must be declared…
    assert!(codes_at(&format!("{LAT}s[p(k : a -u-> v)]."), "zzz").contains(&"ML0103"));
    // …and pure-Π programs (Prop 6.1 degeneration) skip lattice lints.
    assert!(codes_at("q(a). <- q(X).", "anything").is_empty());
}

// ── ML0104 lattice-cycle ────────────────────────────────────────────

#[test]
fn ml0104_lattice_cycle() {
    let report = lint_source("level(u). level(s). order(u, s). order(s, u).").unwrap();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "ML0104")
        .expect("cycle reported");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("->"), "witness path in {}", d.message);
    clean_of(LAT, "ML0104");
}

// ── ML0105 belief-unstratified ──────────────────────────────────────

#[test]
fn ml0105_belief_unstratified() {
    // p-clauses may not consult `<< cau`.
    fires(
        &format!("{LAT}s[p(k : a -u-> v)]. q(X) <- s[p(k : a -u-> X)] << cau."),
        "ML0105",
    );
    // The consulted cau level must be strictly below the head level.
    fires(
        &format!("{LAT}s[p(k : a -u-> v)]. s[q(k : b -u-> w)] <- s[p(k : a -u-> V)] << cau."),
        "ML0105",
    );
    // Non-ground m-head level while cau is in use.
    fires(
        &format!(
            "{LAT}L[p(k : a -u-> v)] <- level(L).\n\
             s[q(k : b -u-> w)] <- u[p(k : a -u-> V)] << cau."
        ),
        "ML0105",
    );
    // Properly stratified: cau one level down.
    clean_of(
        &format!("{LAT}u[p(k : a -u-> v)]. s[q(k : b -u-> w)] <- u[p(k : a -u-> V)] << cau."),
        "ML0105",
    );
    // Without cau anywhere, nothing is checked.
    clean_of(&format!("{LAT}L[p(k : a -u-> v)] <- level(L)."), "ML0105");
}

// ── ML0106 unknown-mode ─────────────────────────────────────────────

#[test]
fn ml0106_unknown_mode() {
    fires(
        &format!("{LAT}s[p(k : a -u-> v)]. q(X) <- s[p(k : a -u-> X)] << wild."),
        "ML0106",
    );
    // A bel/7 rule defines the mode (§7) — no finding.
    clean_of(
        &format!(
            "{LAT}s[p(k : a -u-> v)].\n\
             bel(p, K, a, V, C, L, wild) <- L[p(K : a -C-> V)].\n\
             q(X) <- s[p(k : a -u-> X)] << wild."
        ),
        "ML0106",
    );
    clean_of(
        &format!("{LAT}s[p(k : a -u-> v)]. q(X) <- s[p(k : a -u-> X)] << fir."),
        "ML0106",
    );
}

// ── ML0107 statically-empty-rule ────────────────────────────────────

#[test]
fn ml0107_statically_empty() {
    // a and b are incomparable: no common dominator sees both labels.
    let diamondless = "level(u). level(a). level(b). order(u, a). order(u, b).\n";
    fires(&format!("{diamondless}a[p(k : x -b-> v)]."), "ML0107");
    fires(
        &format!("{diamondless}a[p(k : x -a-> v)]. <- a[p(k : x -a-> V)], b[q(k : y -b-> W)]."),
        "ML0107",
    );
    // With a top element the same labels are jointly visible.
    clean_of(
        "level(u). level(a). level(b). level(t).\n\
         order(u, a). order(u, b). order(a, t). order(b, t).\n\
         a[p(k : x -b-> v)].",
        "ML0107",
    );
}

// ── ML0108 unsatisfiable-dominance ──────────────────────────────────

#[test]
fn ml0108_unsatisfiable_dominance() {
    fires(&format!("{LAT}q(X) <- level(X), s leq u."), "ML0108");
    fires(&format!("{LAT}<- s leq u."), "ML0108");
    clean_of(&format!("{LAT}q(X) <- level(X), u leq s."), "ML0108");
    // Variable constraints are runtime joins, not static facts.
    clean_of(&format!("{LAT}q(X) <- level(X), X leq s."), "ML0108");
}

// ── ML0109 belief-mode-degenerate ───────────────────────────────────

#[test]
fn ml0109_degenerate_mode() {
    // u dominates nothing: `<< opt`/`<< cau` at u degenerate to fir.
    fires(
        &format!("{LAT}u[p(k : a -u-> v)]. q(X) <- u[p(k : a -u-> X)] << opt."),
        "ML0109",
    );
    clean_of(
        &format!("{LAT}u[p(k : a -u-> v)]. q(X) <- s[p(k : a -u-> X)] << opt."),
        "ML0109",
    );
    // fir never quantifies over lower levels — exempt.
    clean_of(
        &format!("{LAT}u[p(k : a -u-> v)]. q(X) <- u[p(k : a -u-> X)] << fir."),
        "ML0109",
    );
}

// ── ML0110 conflicting-cover-story ──────────────────────────────────

#[test]
fn ml0110_cover_story_conflict() {
    fires(
        &format!("{LAT}s[p(k : a -u-> v1)]. s[p(k : a -u-> v2)]."),
        "ML0110",
    );
    // Different classes are polyinstantiation, not conflict (Example 5.1).
    clean_of(
        &format!("{LAT}s[p(k : a -u-> v1)]. s[p(k : a -s-> v2)]."),
        "ML0110",
    );
    // Polyinstantiated key attribute: grouping is ambiguous; skipped to
    // mirror the runtime consistency check (mission.mlog relies on this).
    clean_of(
        &format!(
            "{LAT}s[p(k : id -u-> k)]. s[p(k : id -s-> k)].\n\
             s[p(k : a -u-> v1)]. s[p(k : a -u-> v2)]."
        ),
        "ML0110",
    );
}

// ── ML0111 unused-predicate ─────────────────────────────────────────

#[test]
fn ml0111_unused_predicate() {
    // ghost/1 is unreachable from the query.
    fires(
        &format!("{LAT}s[p(k : a -u-> v)]. ghost(a). <- s[p(k : a -u-> V)]."),
        "ML0111",
    );
    // No queries: every predicate is a potential entry point.
    clean_of(&format!("{LAT}s[p(k : a -u-> v)]. ghost(a)."), "ML0111");
    // bel/7 is consulted implicitly by user-mode b-atoms — exempt.
    clean_of(
        &format!(
            "{LAT}s[p(k : a -u-> v)].\n\
             bel(p, K, a, V, C, L, wild) <- L[p(K : a -C-> V)].\n\
             <- s[p(k : a -u-> V)] << wild."
        ),
        "ML0111",
    );
}

// ── ML0112 singleton-variable ───────────────────────────────────────

#[test]
fn ml0112_singleton_variable() {
    fires(
        &format!("{LAT}s[p(k : a -u-> v)]. q(X) <- s[p(k : a -u-> X)], level(Lonely)."),
        "ML0112",
    );
    // `_`-prefixed names opt out.
    clean_of(
        &format!("{LAT}s[p(k : a -u-> v)]. q(X) <- s[p(k : a -u-> X)], level(_Lonely)."),
        "ML0112",
    );
    // A molecular head shares one span: the key variable occurs once per
    // desugared clause but more than once in the source item — no lint.
    clean_of(
        &format!(
            "{LAT}s[q(k : a -u-> v; b -u-> w)].\n\
             s[p(K : a -u-> X; b -u-> X)] <- s[q(K : a -u-> X)]."
        ),
        "ML0112",
    );
}

// ── ML0113 arity-mismatch ───────────────────────────────────────────

#[test]
fn ml0113_arity_mismatch() {
    fires("q(a). r(X) <- q(X, b).", "ML0113");
    clean_of("q(a). r(X) <- q(X).", "ML0113");
}

// ── ML0114 invisible-at-clearance ───────────────────────────────────

#[test]
fn ml0114_invisible_at_clearance() {
    let src = format!("{LAT}s[p(k : a -s-> v)]. q(X) <- s[p(k : a -s-> X)].");
    assert!(codes_at(&src, "u").contains(&"ML0114"));
    assert!(!codes_at(&src, "s").contains(&"ML0114"));
    // Without a clearance the lint cannot run.
    clean_of(&src, "ML0114");
}

// ── Paper corpus stays lint-clean ───────────────────────────────────

#[test]
fn paper_corpus_is_lint_clean() {
    for (name, src) in [
        ("d1.mlog", include_str!("../../../examples/data/d1.mlog")),
        (
            "mission.mlog",
            include_str!("../../../examples/data/mission.mlog"),
        ),
        (
            "corporate.mlog",
            include_str!("../../../examples/data/corporate.mlog"),
        ),
        ("examples::D1_SOURCE", multilog_core::examples::D1_SOURCE),
    ] {
        let report = lint_source(src).expect("corpus parses");
        assert!(
            report.is_clean(),
            "{name} not lint-clean:\n{}",
            report.render_human(name)
        );
    }
}

#[test]
fn corpus_clean_at_its_own_clearances() {
    // At top clearance, even the clearance-dependent lints stay quiet.
    let d1 = include_str!("../../../examples/data/d1.mlog");
    let report = lint_source_at(d1, Some("s")).unwrap();
    assert!(report.is_clean(), "{}", report.render_human("d1.mlog"));
}

// ── Report plumbing ─────────────────────────────────────────────────

#[test]
fn report_orders_errors_first_and_counts() {
    let report = lint_source(
        "level(u).\n\
         q(X) <- level(X), level(Lonely).\n\
         u[p(k : a -s-> v)].",
    )
    .unwrap();
    assert!(report.has_errors());
    assert_eq!(report.errors(), 1);
    assert_eq!(report.warnings(), 1);
    assert_eq!(report.diagnostics[0].severity, Severity::Error);
    let json = report.render_json();
    assert!(json.contains("\"errors\":1"));
    assert!(json.contains("\"warnings\":1"));
}

// ── Robustness: lint never panics on parser-accepted input ──────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Token soup: whatever the parser accepts, the lint pass must
    /// analyse without panicking (and the report must render).
    #[test]
    fn lint_never_panics_on_token_soup(tokens in proptest::collection::vec(
        prop_oneof![
            Just("level"), Just("order"), Just("leq"), Just("bel"),
            Just("p"), Just("q"), Just("k"), Just("a"), Just("v"),
            Just("u"), Just("s"), Just("X"), Just("V"), Just("_"),
            Just("fir"), Just("opt"), Just("cau"), Just("wild"),
            Just("("), Just(")"), Just("["), Just("]"), Just(":"),
            Just(";"), Just(","), Just("."), Just("<-"), Just("<<"),
            Just("-"), Just("->"), Just("42"),
        ],
        0..40,
    )) {
        let src = tokens.join(" ");
        if parse_items(&src).is_ok() {
            let report = lint_source(&src).expect("parse_items succeeded");
            let _ = report.render_human("soup.mlog");
            let _ = report.render_json();
            let _ = lint_source_at(&src, Some("u"));
        }
    }

    /// Arbitrary bytes: lint_source either errors like the parser or
    /// returns a report — never panics.
    #[test]
    fn lint_never_panics_on_arbitrary_input(src in "\\PC*") {
        if let Ok(report) = lint_source(&src) {
            let _ = report.render_human("arb.mlog");
            let _ = report.render_json();
        }
    }
}
