//! Parser robustness: arbitrary input never panics — it either parses or
//! returns a positioned error — and valid programs survive a
//! print-reparse round trip.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_core::{parse_clause, parse_database, parse_goal};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the parser must return, never panic.
    #[test]
    fn arbitrary_input_never_panics(src in "\\PC*") {
        let _ = parse_database(&src);
        let _ = parse_goal(&src);
        let _ = parse_clause(&src);
    }

    /// Arbitrary streams of plausible MultiLog tokens: same guarantee,
    /// but with far deeper reach into the grammar.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("level"), Just("order"), Just("leq"), Just("null"),
            Just("p"), Just("q"), Just("k"), Just("a"), Just("v"),
            Just("u"), Just("s"), Just("X"), Just("V"), Just("_"),
            Just("("), Just(")"), Just("["), Just("]"), Just(":"),
            Just(";"), Just(","), Just("."), Just("<-"), Just("<<"),
            Just("-"), Just("->"), Just("%"), Just("42"), Just("-7"),
        ],
        0..40,
    )) {
        let src = tokens.join(" ");
        let _ = parse_database(&src);
        let _ = parse_goal(&src);
    }

    /// Any parsed clause prints to text that re-parses to the same AST.
    #[test]
    fn print_reparse_fixpoint(
        level in "[a-d]",
        key in "[k-m][0-9]?",
        attr in "[a-c]",
        class in "[a-d]",
        value in "[v-z][0-9]?",
        mode in prop_oneof![Just("fir"), Just("opt"), Just("cau")],
    ) {
        let src = format!(
            "{level}[p({key} : {attr} -{class}-> {value})] <- \
             {class}[q({key} : {attr} -{class}-> V)] << {mode}, r({key})."
        );
        let parsed = parse_clause(&src).unwrap();
        let printed = parsed[0].to_string();
        let reparsed = parse_clause(&printed).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}

#[test]
fn error_positions_are_plausible() {
    let err = parse_database("level(u).\nlevel(").unwrap_err();
    match err {
        multilog_core::MultiLogError::Parse { line, .. } => assert_eq!(line, 2),
        other => panic!("unexpected: {other}"),
    }
}
