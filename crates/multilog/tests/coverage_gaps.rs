//! Targeted tests for less-travelled paths: lattice atoms in rule bodies,
//! `leq` constraints through the reduction, level variables in heads, and
//! engine/option edge cases.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use multilog_core::reduce::ReducedEngine;
use multilog_core::{parse_database, MultiLogEngine, MultiLogError};

#[test]
fn level_and_order_atoms_in_rule_bodies() {
    // Rules quantifying over the lattice itself.
    let db = parse_database(
        r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        known_level(L) <- level(L).
        step(A, B) <- order(A, B).
        reach(A, B) <- A leq B.
        "#,
    )
    .unwrap();
    let op = MultiLogEngine::new(&db, "s").unwrap();
    assert_eq!(op.solve_text("known_level(L)").unwrap().len(), 3);
    assert_eq!(op.solve_text("step(A, B)").unwrap().len(), 2);
    // leq is reflexive-transitive: 3 + 2 + 1 pairs on the chain.
    assert_eq!(op.solve_text("reach(A, B)").unwrap().len(), 6);

    let red = ReducedEngine::new(&db, "s").unwrap();
    for goal in ["known_level(L)", "step(A, B)", "reach(A, B)"] {
        assert_eq!(
            op.solve_text(goal).unwrap(),
            red.solve_text(goal).unwrap(),
            "lattice-atom divergence on {goal}"
        );
    }
}

#[test]
fn variable_level_heads_without_cau() {
    // A rule asserting the same fact at *every* level (monotone program,
    // so variable head levels are allowed).
    let db = parse_database(
        r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        L[bulletin(all : note -L-> posted)] <- level(L).
        "#,
    )
    .unwrap();
    let op = MultiLogEngine::new(&db, "s").unwrap();
    assert_eq!(op.mfacts().len(), 3);
    assert_eq!(
        op.solve_text("L[bulletin(all : note -C-> posted)]")
            .unwrap()
            .len(),
        3
    );
    // And the reduction agrees.
    let red = ReducedEngine::new(&db, "s").unwrap();
    assert_eq!(
        op.solve_text("L[bulletin(all : note -C-> posted)]")
            .unwrap(),
        red.solve_text("L[bulletin(all : note -C-> posted)]")
            .unwrap()
    );
}

#[test]
fn variable_level_heads_with_cau_rejected() {
    let db = parse_database(
        r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[p(k : a -u-> v)].
        L[q(k : b -L-> w)] <- level(L).
        s[r(k : e -s-> x)] <- c[p(k : a -C-> V)] << cau.
        "#,
    )
    .unwrap();
    // The cau rule forces all Σ head levels ground.
    assert!(matches!(
        MultiLogEngine::new(&db, "s"),
        Err(MultiLogError::NotBeliefStratified { .. })
    ));
}

#[test]
fn queries_at_clipped_clearances_see_less() {
    let db = parse_database(
        r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[doc(d1 : title -u-> alpha)].
        c[doc(d2 : title -c-> beta)].
        s[doc(d3 : title -s-> gamma)].
        "#,
    )
    .unwrap();
    for (user, expected) in [("u", 1), ("c", 2), ("s", 3)] {
        let e = MultiLogEngine::new(&db, user).unwrap();
        assert_eq!(
            e.solve_text("L[doc(K : title -C-> V)]").unwrap().len(),
            expected,
            "at {user}"
        );
    }
}

#[test]
fn goal_with_repeated_variables_across_atoms() {
    // The same variable constrains level and class.
    let db = parse_database(
        r#"
        level(u). level(s). order(u, s).
        u[p(k : a -u-> v)].
        s[p(k : a -u-> w)].
        "#,
    )
    .unwrap();
    let e = MultiLogEngine::new(&db, "s").unwrap();
    // L both as atom level and class: only the u fact has level == class.
    let ans = e.solve_text("L[p(k : a -L-> V)]").unwrap();
    assert_eq!(ans.len(), 1);
    assert_eq!(ans[0]["V"].to_string(), "v");
}

#[test]
fn empty_database_engine() {
    let db = parse_database("level(u).").unwrap();
    let e = MultiLogEngine::new(&db, "u").unwrap();
    assert!(e.mfacts().is_empty());
    assert!(e.solve_text("level(X)").unwrap().len() == 1);
    multilog_core::consistency::check_consistency(&e).unwrap();
}

#[test]
fn reduction_program_roundtrips_through_datalog_parser() {
    // The generated τ(Δ) ∪ A must itself be a valid program for the
    // Datalog crate's parser — for every example we ship.
    for src in [
        multilog_core::examples::D1_SOURCE.to_owned(),
        multilog_core::examples::encode_relation(&multilog_mlsrel::mission::mission_relation().1),
    ] {
        let db = parse_database(&src).unwrap();
        let red = ReducedEngine::new(&db, "s").unwrap();
        let prog = multilog_datalog::parse_program(red.program_text()).unwrap();
        assert!(!prog.is_empty());
        prog.stratify().unwrap();
    }
}
