//! Property tests for demand-driven belief queries through the τ
//! reduction: over randomly generated MultiLog databases (chain
//! lattices, classified facts, optimistic and cautious rules) and random
//! partially-bound goals, [`ReducedEngine::solve_demand`] must return
//! exactly the answers of the materialized [`ReducedEngine::solve`]
//! path — the magic-sets rewrite composes with the τ encoding, the
//! no-read-up guards, and the stratified cautious negation machinery.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_core::reduce::ReducedEngine;
use multilog_core::{parse_database, EngineOptions, MultiLogDb};

/// A random admissible MultiLog database over a chain lattice `l0 ⪯ l1
/// ⪯ …`, mirroring the generator of `properties.rs`: classified `data`
/// facts plus `derived` rules consuming them optimistically or
/// cautiously.
fn arb_db() -> impl Strategy<Value = (String, usize)> {
    let fact = (0usize..3, 0usize..5, 0usize..3, 0usize..5);
    let rule = (0usize..5, any::<bool>());
    (
        2usize..4,
        proptest::collection::vec(fact, 1..16),
        proptest::collection::vec(rule, 0..4),
    )
        .prop_map(|(depth, facts, rules)| {
            let mut src = String::new();
            for i in 0..depth {
                src.push_str(&format!("level(l{i}).\n"));
            }
            for i in 1..depth {
                src.push_str(&format!("order(l{}, l{i}).\n", i - 1));
            }
            for (lvl, key, cls, val) in facts {
                let lvl = lvl.min(depth - 1);
                let cls = cls.min(lvl);
                src.push_str(&format!("l{lvl}[data(k{key} : a -l{cls}-> v{val})].\n"));
            }
            let top = depth - 1;
            for (key, cau) in rules {
                let mode = if cau { "cau" } else { "opt" };
                src.push_str(&format!(
                    "l{top}[derived(k{key} : b -l{top}-> out{key})] <- \
                     l{}[data(k{key} : a -C-> V)] << {mode}.\n",
                    top - 1
                ));
            }
            (src, depth)
        })
}

/// Goal templates: point lookups (bound keys), per-mode belief queries,
/// and one fully-free goal exercising the cone fallback.
fn goal_source(kind: usize, key: usize, lvl: usize) -> String {
    match kind {
        0 => format!("l{lvl}[data(k{key} : a -C-> V)]"),
        1 => format!("l{lvl}[data(k{key} : a -C-> V)] << fir"),
        2 => format!("l{lvl}[data(k{key} : a -C-> V)] << opt"),
        3 => format!("l{lvl}[data(k{key} : a -C-> V)] << cau"),
        4 => format!("l{lvl}[derived(k{key} : b -C-> V)]"),
        5 => format!("L[data(k{key} : a -C-> V)] << opt"),
        _ => "L[data(K : a -C-> V)]".to_owned(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `magic_equals_full` through the reduced (τ-encoded) engine.
    #[test]
    fn demand_equals_materialized(
        (src, depth) in arb_db(),
        kind in 0usize..7,
        key in 0usize..5,
        lvl in 0usize..4,
    ) {
        let db: MultiLogDb = parse_database(&src).expect("generated db parses");
        let lvl = lvl.min(depth - 1);
        let goal = goal_source(kind, key, lvl);
        for user_lvl in [0, depth - 1] {
            let user = format!("l{user_lvl}");
            let red = ReducedEngine::new(&db, &user).expect("generated db reduces");
            prop_assert_eq!(
                red.solve_text(&goal).unwrap(),
                red.solve_text_demand(&goal).unwrap(),
                "goal `{}` at user {} over:\n{}",
                goal, user, src
            );
        }
    }

    /// Deferred engines (no materialization ever) answer demand queries
    /// identically to fully materialized ones.
    #[test]
    fn deferred_demand_equals_materialized(
        (src, depth) in arb_db(),
        kind in 0usize..7,
        key in 0usize..5,
    ) {
        let db: MultiLogDb = parse_database(&src).expect("generated db parses");
        let user = format!("l{}", depth - 1);
        let goal = goal_source(kind, key, depth - 1);
        let deferred =
            ReducedEngine::with_options_deferred(&db, &user, EngineOptions::default())
                .expect("generated db reduces");
        let materialized = ReducedEngine::new(&db, &user).expect("generated db reduces");
        prop_assert_eq!(
            deferred.solve_text_demand(&goal).unwrap(),
            materialized.solve_text(&goal).unwrap(),
            "goal `{}` at user {} over:\n{}",
            goal, user, src
        );
        prop_assert_eq!(deferred.database().fact_count(), 0);
    }
}
