//! The `multilog` command-line front-end (see `lib.rs` for the command
//! implementations).

use std::io::{BufRead, Write};
use std::process::ExitCode;

use multilog_cli::{
    analyze, check, lint, parse_args, prove, query, reduce, run, serve_io, Options, ReplSession,
    ServeSession, USAGE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let (cmd, file, goal, opts) = parse_args(args)?;
    let source =
        std::fs::read_to_string(&file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    match cmd.as_str() {
        "run" => run(&source, &opts),
        "query" => {
            let goal = goal.ok_or("query needs a goal argument")?;
            query(&source, &goal, &opts)
        }
        "prove" => {
            let goal = goal.ok_or("prove needs a goal argument")?;
            prove(&source, &goal, &opts)
        }
        "reduce" => reduce(&source, &opts),
        "check" => check(&source, &opts),
        "lint" => lint(&source, &file, &opts),
        "analyze" => analyze(&source, &file, &opts),
        "repl" => repl(&source, &opts),
        "serve" => serve(&source, &opts),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// `multilog serve`: the multi-session belief server. Default transport
/// is stdin/stdout; with `--listen <addr>` every TCP connection gets its
/// own protocol session over one shared server (one thread each).
fn serve(source: &str, opts: &Options) -> Result<String, String> {
    let session = ServeSession::new(source, opts)?;
    let Some(addr) = opts.listen.as_deref() else {
        let stdin = std::io::stdin();
        let mut input = stdin.lock();
        let mut output = std::io::stdout();
        serve_io(session, opts, &mut input, &mut output)?;
        return Ok(String::new());
    };
    let server = std::sync::Arc::clone(session.server());
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
    eprintln!("multilog serve listening on {addr}");
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("accept failed: {e}");
                continue;
            }
        };
        let server = std::sync::Arc::clone(&server);
        let opts = opts.clone();
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map_or_else(|_| "<unknown>".to_owned(), |a| a.to_string());
            let mut output = match stream.try_clone() {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("connection {peer}: {e}");
                    return;
                }
            };
            let mut input = std::io::BufReader::new(stream);
            let session = ServeSession::with_server(server);
            if let Err(e) = serve_io(session, &opts, &mut input, &mut output) {
                eprintln!("connection {peer}: {e}");
            }
        });
    }
    Ok(String::new())
}

fn repl(source: &str, opts: &Options) -> Result<String, String> {
    let mut session = ReplSession::new(source, opts)?;
    eprintln!("{}", session.banner());
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        eprint!("{}> ", opts.user);
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            break;
        }
        let out = session.step(&line);
        stdout
            .write_all(out.as_bytes())
            .map_err(|e| e.to_string())?;
    }
    Ok(String::new())
}
