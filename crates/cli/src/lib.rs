//! Command implementations for the `multilog` CLI — the front-end
//! architecture of §6 made concrete: load a MultiLog database, pick a
//! clearance, and run queries through either the operational engine or
//! the Datalog reduction.
//!
//! Every command is a pure function from parsed arguments to a printable
//! `String`, so the behaviour is unit-testable without process spawning;
//! `main.rs` only parses `argv` and prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;

use multilog_core::consistency::check_consistency;
use multilog_core::proof::prove_text;
use multilog_core::reduce::{DemandCache, EdbUpdate, ReducedEngine};
use multilog_core::{
    parse_database, BeliefServer, EngineOptions, MultiLogDb, MultiLogEngine, ReaderSession,
};

/// Which evaluation pipeline to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The operational (proof-system) engine.
    #[default]
    Operational,
    /// The τ-reduction executed on the Datalog back-end.
    Reduced,
}

/// Parsed command-line options shared by the commands.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// The clearance level to evaluate at.
    pub user: String,
    /// Engine selection.
    pub engine: EngineKind,
    /// Enable the Figure 13 σ filter (operational engine only).
    pub filter: bool,
    /// Wall-clock deadline for evaluation and each query, in
    /// milliseconds (`--deadline`).
    pub deadline_ms: Option<u64>,
    /// Budget on derived facts (`--max-facts`; engine default when
    /// absent).
    pub max_facts: Option<usize>,
    /// Print per-rule / per-clause evaluation statistics (`--stats`).
    pub stats: bool,
    /// Skip the lint preflight in `run`/`query` (`--no-lint`).
    pub no_lint: bool,
    /// Downgrade lint errors to warnings: report but keep going
    /// (`--lint-warn`).
    pub lint_warn: bool,
    /// Emit machine-readable JSON from `lint` (`--format json`).
    pub json: bool,
    /// Disable the magic-sets demand rewrite for reduced-engine goals:
    /// materialize the full fixpoint and answer from it (`--no-magic`).
    pub no_magic: bool,
    /// `serve` only: accept line-protocol connections on this TCP
    /// address instead of stdin (`--listen`).
    pub listen: Option<String>,
    /// Refuse to evaluate when the lattice-flow analysis reports any
    /// ML02xx finding (`--deny flow`; `run`/`query`/`serve`).
    pub deny_flow: bool,
    /// Prune statically-invisible rules from demand-driven goal
    /// evaluation using the lattice-flow bounds (`--flow-prune`).
    pub flow_prune: bool,
    /// `analyze` only: explain one predicate's inferred bounds instead
    /// of printing the whole report (`--explain <pred>`).
    pub explain: Option<String>,
}

/// Errors surfaced to the CLI user.
pub type CliResult = Result<String, String>;

/// Translate CLI options into engine options (shared with the repl).
pub fn engine_options(opts: &Options) -> EngineOptions {
    EngineOptions {
        enable_filter: opts.filter,
        enable_filter_null: opts.filter,
        fact_limit: opts.max_facts.unwrap_or(0),
        deadline: opts.deadline_ms.map(std::time::Duration::from_millis),
        cancel: None,
        flow_prune: opts.flow_prune,
    }
}

fn load(source: &str) -> Result<MultiLogDb, String> {
    parse_database(source).map_err(|e| format!("cannot parse database: {e}"))
}

fn operational(db: &MultiLogDb, opts: &Options) -> Result<MultiLogEngine, String> {
    MultiLogEngine::with_options(db, &opts.user, engine_options(opts))
        .map_err(|e| format!("evaluation failed: {e}"))
}

/// The engine `run`/`query` actually got: the operational engine they
/// asked for, or the reduction it fell back to (see
/// [`operational_or_reduced`]).
enum EitherEngine {
    Op(Box<MultiLogEngine>),
    Red(Box<ReducedEngine>),
}

impl EitherEngine {
    fn solve(&self, q: &multilog_core::ast::Goal) -> Result<Vec<multilog_core::Answer>, String> {
        match self {
            EitherEngine::Op(e) => e.solve(q).map_err(|e| e.to_string()),
            EitherEngine::Red(e) => e.solve(q).map_err(|e| e.to_string()),
        }
    }

    fn solve_text(&self, goal: &str) -> Result<Vec<multilog_core::Answer>, String> {
        match self {
            EitherEngine::Op(e) => e.solve_text(goal).map_err(|e| e.to_string()),
            EitherEngine::Red(e) => e.solve_text(goal).map_err(|e| e.to_string()),
        }
    }

    fn stats_summary(&self) -> String {
        match self {
            EitherEngine::Op(e) => e.stats().summary(),
            EitherEngine::Red(e) => e.stats().summary(),
        }
    }
}

/// Construct the operational engine, falling back to the reduction when
/// the database uses constructs only the reduction evaluates (aggregate
/// heads, `@algo` operators). `run`/`query` default to the operational
/// engine, so without the fallback every aggregate database would need
/// an explicit `--engine red`; the typed [`ReductionOnly`] refusal names
/// the engine that can answer, and the CLI acts on it. The returned
/// string is the note to print when the fallback engaged (empty
/// otherwise).
///
/// [`ReductionOnly`]: multilog_core::MultiLogError::ReductionOnly
fn operational_or_reduced(
    db: &MultiLogDb,
    opts: &Options,
) -> Result<(EitherEngine, String), String> {
    match MultiLogEngine::with_options(db, &opts.user, engine_options(opts)) {
        Ok(e) => Ok((EitherEngine::Op(Box::new(e)), String::new())),
        Err(multilog_core::MultiLogError::ReductionOnly { .. }) => {
            let e = ReducedEngine::with_options(db, &opts.user, engine_options(opts))
                .map_err(|e| e.to_string())?;
            Ok((
                EitherEngine::Red(Box::new(e)),
                "(aggregates/algorithm operators present: answering via the reduction)\n"
                    .to_owned(),
            ))
        }
        Err(e) => Err(format!("evaluation failed: {e}")),
    }
}

/// Lint preflight for `run`/`query`: fail fast on error-severity findings
/// unless `--no-lint` skips the pass or `--lint-warn` downgrades them.
/// Returns a note to prepend to the command output (empty when clean).
fn preflight(source: &str, opts: &Options) -> Result<String, String> {
    if opts.no_lint {
        return Ok(String::new());
    }
    // Syntax errors are reported by `load` with the same message; let it.
    let Ok(report) = multilog_core::lint_source_at(source, Some(&opts.user)) else {
        return Ok(String::new());
    };
    if !report.has_errors() {
        return Ok(String::new());
    }
    if opts.lint_warn {
        return Ok(format!(
            "lint (downgraded by --lint-warn): {}\n",
            report.summary()
        ));
    }
    Err(format!(
        "lint found {}; fix the program, or pass --lint-warn to downgrade \
         or --no-lint to skip\n\n{}",
        report.summary(),
        report.render_human("<db>")
    ))
}

/// Flow preflight for `run`/`query`/`serve` under `--deny flow`: refuse
/// to evaluate when the lattice-flow analysis reports any ML02xx
/// finding (inference channels are warnings, but `--deny flow` treats
/// the program as untrusted until they are resolved).
fn flow_preflight(source: &str, opts: &Options) -> Result<(), String> {
    if !opts.deny_flow {
        return Ok(());
    }
    // Syntax errors are reported by `load` with the same message; let it.
    let Ok(report) = multilog_core::analyze_source(source) else {
        return Ok(());
    };
    let findings = report.errors() + report.warnings();
    if findings == 0 {
        return Ok(());
    }
    Err(format!(
        "--deny flow: the lattice-flow analysis found {findings} channel \
         finding{}; run `multilog analyze` for details\n\n{}",
        if findings == 1 { "" } else { "s" },
        report.lint_report().render_human("<db>")
    ))
}

/// `multilog analyze <file>`: run the lattice-flow abstract
/// interpretation and print per-predicate level/class bounds plus the
/// ML02xx channel findings (rustc-style, or JSON with `--format json`).
/// `--explain <pred>` narrows the output to one predicate's bound
/// derivation.
pub fn analyze(source: &str, source_name: &str, opts: &Options) -> CliResult {
    let report =
        multilog_core::analyze_source(source).map_err(|e| format!("cannot parse database: {e}"))?;
    if let Some(pred) = opts.explain.as_deref() {
        let rendered = if opts.json {
            report.explain_json(pred)
        } else {
            report.explain(pred)
        };
        return rendered.ok_or_else(|| format!("no predicate named `{pred}` in the program"));
    }
    if opts.json {
        Ok(format!("{}\n", report.render_json()))
    } else {
        Ok(report.render_human(source_name))
    }
}

/// `multilog lint <file>`: run the static-analysis pass and print the
/// findings (rustc-style, or JSON with `--format json`). `--user` is
/// optional; when given, clearance-dependent lints (ML0114) also run.
pub fn lint(source: &str, source_name: &str, opts: &Options) -> CliResult {
    let clearance = if opts.user.is_empty() {
        None
    } else {
        Some(opts.user.as_str())
    };
    let report = multilog_core::lint_source_at(source, clearance)
        .map_err(|e| format!("cannot parse database: {e}"))?;
    if opts.json {
        Ok(format!("{}\n", report.render_json()))
    } else {
        Ok(report.render_human(source_name))
    }
}

/// `multilog run <file>`: evaluate the database and answer every query in
/// its `Q` component.
pub fn run(source: &str, opts: &Options) -> CliResult {
    flow_preflight(source, opts)?;
    let mut out = preflight(source, opts)?;
    let db = load(source)?;
    let queries = db.queries().to_vec();
    if queries.is_empty() {
        let _ = writeln!(
            out,
            "(database has no queries; use `query` for ad hoc goals)"
        );
    }
    match opts.engine {
        EngineKind::Operational => {
            let (e, note) = operational_or_reduced(&db, opts)?;
            out.push_str(&note);
            match &e {
                EitherEngine::Op(op) => {
                    let _ = writeln!(
                        out,
                        "evaluated at {}: {} m-facts, {} p-facts",
                        opts.user,
                        op.mfacts().len(),
                        op.pfacts().len()
                    );
                }
                EitherEngine::Red(_) => {
                    let _ = writeln!(out, "reduced and evaluated at {}", opts.user);
                }
            }
            for (i, q) in queries.iter().enumerate() {
                let answers = e.solve(q)?;
                let _ = writeln!(out, "?- query {}: {}", i + 1, render_goal(q));
                let _ = write!(out, "{}", render_answers(&answers));
            }
            if opts.stats {
                let _ = write!(out, "{}", e.stats_summary());
            }
        }
        EngineKind::Reduced => {
            let e = ReducedEngine::with_options(&db, &opts.user, engine_options(opts))
                .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "reduced and evaluated at {}", opts.user);
            for (i, q) in queries.iter().enumerate() {
                let answers = e.solve(q).map_err(|e| e.to_string())?;
                let _ = writeln!(out, "?- query {}: {}", i + 1, render_goal(q));
                let _ = write!(out, "{}", render_answers(&answers));
            }
            if opts.stats {
                let _ = write!(out, "{}", e.stats().summary());
            }
        }
    }
    Ok(out)
}

/// `multilog query <file> <goal>`: answer one ad hoc goal.
pub fn query(source: &str, goal: &str, opts: &Options) -> CliResult {
    flow_preflight(source, opts)?;
    let mut out = preflight(source, opts)?;
    let db = load(source)?;
    match opts.engine {
        EngineKind::Operational => {
            let (e, note) = operational_or_reduced(&db, opts)?;
            out.push_str(&note);
            let answers = e
                .solve_text(goal)
                .map_err(|e| format!("query failed: {e}"))?;
            out.push_str(&render_answers(&answers));
            if opts.stats {
                out.push_str(&e.stats_summary());
            }
        }
        EngineKind::Reduced if opts.no_magic => {
            let e = ReducedEngine::with_options(&db, &opts.user, engine_options(opts))
                .map_err(|e| e.to_string())?;
            let answers = e
                .solve_text(goal)
                .map_err(|e| format!("query failed: {e}"))?;
            out.push_str(&render_answers(&answers));
            if opts.stats {
                out.push_str(&e.stats().summary());
            }
        }
        EngineKind::Reduced => {
            // Demand-driven: never materialize the full fixpoint — rewrite
            // the reduction around the goal's bindings and evaluate only
            // the demanded sub-fixpoint.
            let e = ReducedEngine::with_options_deferred(&db, &opts.user, engine_options(opts))
                .map_err(|e| e.to_string())?;
            let parsed =
                multilog_core::parse_goal(goal).map_err(|e| format!("query failed: {e}"))?;
            let (answers, stats) = e
                .solve_demand_with_stats(&parsed)
                .map_err(|e| format!("query failed: {e}"))?;
            out.push_str(&render_answers(&answers));
            if opts.stats {
                out.push_str(&stats.summary());
            }
        }
    }
    Ok(out)
}

/// `multilog prove <file> <goal>`: print a Figure 9 proof tree for the
/// first answer of the goal.
pub fn prove(source: &str, goal: &str, opts: &Options) -> CliResult {
    let db = load(source)?;
    let e = operational(&db, opts)?;
    match prove_text(&e, goal).map_err(|e| e.to_string())? {
        Some(tree) => Ok(format!(
            "{}(height {}, size {})\n",
            tree.render(),
            tree.height(),
            tree.size()
        )),
        None => Ok("no proof: the goal is not provable at this clearance\n".to_owned()),
    }
}

/// `multilog reduce <file>`: print the generated Datalog program
/// `τ(Δ) ∪ A`.
pub fn reduce(source: &str, opts: &Options) -> CliResult {
    let db = load(source)?;
    let e = ReducedEngine::new(&db, &opts.user).map_err(|e| e.to_string())?;
    Ok(e.program_text().to_owned())
}

/// `multilog check <file>`: admissibility (Def 5.3) and consistency
/// (Def 5.4) diagnostics.
pub fn check(source: &str, opts: &Options) -> CliResult {
    let db = load(source)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "parsed: Λ={} Σ={} Π={} Q={}",
        db.lambda().len(),
        db.sigma().len(),
        db.pi().len(),
        db.queries().len()
    );
    if let Ok(report) = multilog_core::lint_source_at(source, Some(&opts.user)) {
        if report.is_clean() {
            let _ = writeln!(out, "lint: clean");
        } else {
            let _ = writeln!(out, "lint: {}", report.summary());
            for d in &report.diagnostics {
                let _ = writeln!(out, "  {d}");
            }
        }
    }
    match db.lattice() {
        Ok(lat) => {
            let names: Vec<&str> = lat.names().collect();
            let _ = writeln!(out, "admissible: lattice over {{{}}}", names.join(", "));
        }
        Err(e) => {
            let _ = writeln!(out, "NOT admissible: {e}");
            return Ok(out);
        }
    }
    let e = operational(&db, opts)?;
    match check_consistency(&e) {
        Ok(()) => {
            let _ = writeln!(
                out,
                "consistent at {}: {} m-facts satisfy Def 5.4",
                opts.user,
                e.mfacts().len()
            );
        }
        Err(err) => {
            let _ = writeln!(out, "NOT consistent: {err}");
        }
    }
    Ok(out)
}

/// An interactive session: goals are answered from an incrementally
/// maintained reduction fixpoint, `+fact.` / `-fact.` lines update it in
/// place, and `:prove` rebuilds the operational engine on demand for
/// proof trees.
pub struct ReplSession {
    opts: Options,
    /// The current clause set, tracking `+`/`-` updates so `:prove` (and
    /// filter-mode goals) can rebuild the operational engine faithfully.
    clauses: Vec<multilog_core::ast::Clause>,
    /// The incremental reduction engine: updates are delta-maintained, so
    /// goal answers stay warm across `+`/`-` lines.
    reduced: ReducedEngine,
    /// Lazily (re)built operational engine; `None` after an update.
    operational: Option<MultiLogEngine>,
    /// Prepared magic-sets rewrites memoized per goal binding pattern
    /// (`(predicate, adornment)`), so re-asked point goals skip the
    /// rewrite; cleared whenever a `+`/`-` update commits.
    demand: DemandCache,
}

impl ReplSession {
    /// Parse the database and materialize both entry points.
    ///
    /// # Errors
    ///
    /// Parse, admissibility, or evaluation failures, rendered for the
    /// CLI user.
    pub fn new(source: &str, opts: &Options) -> Result<Self, String> {
        let db = load(source)?;
        let reduced = ReducedEngine::with_options(&db, &opts.user, engine_options(opts))
            .map_err(|e| format!("evaluation failed: {e}"))?;
        let clauses = db.clauses().cloned().collect();
        Ok(ReplSession {
            opts: opts.clone(),
            clauses,
            reduced,
            operational: None,
            demand: DemandCache::new(),
        })
    }

    /// A banner line describing the session.
    pub fn banner(&self) -> String {
        format!(
            "multilog repl at level {} — {} facts materialized; `+fact.`/`-fact.` to update, \
             `:prove <goal>` for trees; ^D to exit",
            self.opts.user,
            self.reduced.database().fact_count()
        )
    }

    /// Evaluate one REPL line: empty, `:prove <goal>`, `+<m-fact>.`,
    /// `-<m-fact>.`, or a goal.
    pub fn step(&mut self, line: &str) -> String {
        let line = line.trim();
        if line.is_empty() {
            return String::new();
        }
        if let Some(goal) = line.strip_prefix(":prove ") {
            return match self.operational() {
                Ok(engine) => match prove_text(engine, goal) {
                    Ok(Some(tree)) => tree.render(),
                    Ok(None) => "no proof\n".to_owned(),
                    Err(e) => format!("error: {e}\n"),
                },
                Err(e) => format!("error: {e}\n"),
            };
        }
        if let Some(rest) = line.strip_prefix('+') {
            return self.update(rest, true);
        }
        if let Some(rest) = line.strip_prefix('-') {
            return self.update(rest, false);
        }
        // Goals run on the incremental reduction, except when the σ
        // filter is on — the reduction does not implement Figure 13, so
        // filter sessions answer from the operational engine.
        if self.opts.filter {
            return match self.operational() {
                Ok(engine) => match engine.solve_text(line) {
                    Ok(answers) => render_answers(&answers),
                    Err(e) => format!("error: {e}\n"),
                },
                Err(e) => format!("error: {e}\n"),
            };
        }
        // Point goals go through the magic-sets demand rewrite over the
        // current transactional base (so `+`/`-` updates are visible),
        // memoized per binding pattern in the session's demand cache;
        // `--no-magic` answers from the materialized fixpoint instead.
        let result = if self.opts.no_magic {
            self.reduced.solve_text(line)
        } else {
            multilog_core::parse_goal(line)
                .and_then(|goal| self.reduced.solve_demand_cached(&goal, &mut self.demand))
        };
        match result {
            Ok(answers) => render_answers(&answers),
            Err(e) => format!("error: {e}\n"),
        }
    }

    /// Apply one `+`/`-` update line: a ground m-atom fact (or a whole
    /// molecule, desugared to its m-clauses), committed incrementally as
    /// one transaction, with the clause mirror kept in sync.
    fn update(&mut self, text: &str, insert: bool) -> String {
        use multilog_core::ast::Head;
        use multilog_core::reduce::EdbUpdate;
        let parsed = match multilog_core::parse_clause(text) {
            Ok(c) => c,
            Err(e) => return format!("error: {e}\n"),
        };
        let mut batch = Vec::with_capacity(parsed.len());
        for clause in &parsed {
            if !clause.body.is_empty() {
                return "error: updates must be facts, not rules\n".to_owned();
            }
            let Head::M(m) = &clause.head else {
                return "error: updates must be m-atom facts like `+s[p(k : a -s-> v)].`\n"
                    .to_owned();
            };
            batch.push(if insert {
                EdbUpdate::Assert(m.clone())
            } else {
                EdbUpdate::Retract(m.clone())
            });
        }
        match self.reduced.apply_updates(&batch) {
            Ok(stats) => {
                for clause in parsed {
                    if insert {
                        self.clauses.push(clause);
                    } else if let Some(pos) = self
                        .clauses
                        .iter()
                        .position(|c| c.body.is_empty() && c.head == clause.head)
                    {
                        self.clauses.remove(pos);
                    }
                }
                self.operational = None; // stale; rebuilt on demand
                self.demand.clear(); // prepared rewrites embed the old EDB
                format!(
                    "ok: {}{} base fact, +{}/-{} derived ({:.2} ms)\n",
                    if insert { "+" } else { "-" },
                    if insert {
                        stats.edb_inserted
                    } else {
                        stats.edb_retracted
                    },
                    stats.derived_added,
                    stats.derived_removed,
                    stats.wall_ms
                )
            }
            Err(e) => {
                if self.reduced.is_poisoned() {
                    self.demand.clear();
                    if let Err(re) = self.reduced.rematerialize() {
                        return format!("error: {e}\nerror: recovery failed: {re}\n");
                    }
                    return format!("error: {e} (fixpoint rebuilt; update not applied)\n");
                }
                format!("error: {e}\n")
            }
        }
    }

    /// `(entries, hits)` of the session's demand cache — how many goal
    /// binding patterns have a memoized magic rewrite, and how many
    /// goals were answered from one (diagnostics and tests).
    pub fn demand_cache_stats(&self) -> (usize, u64) {
        (self.demand.entries(), self.demand.hits())
    }

    /// The operational engine over the current clause set, rebuilding it
    /// if an update made the cached one stale.
    fn operational(&mut self) -> Result<&MultiLogEngine, String> {
        if self.operational.is_none() {
            let db =
                MultiLogDb::new(self.clauses.clone(), Vec::new()).map_err(|e| format!("{e}"))?;
            let engine =
                MultiLogEngine::with_options(&db, &self.opts.user, engine_options(&self.opts))
                    .map_err(|e| format!("{e}"))?;
            self.operational = Some(engine);
        }
        Ok(self
            .operational
            .as_ref()
            .expect("just built the operational engine"))
    }
}

/// One line-protocol connection to a [`BeliefServer`] (the `serve`
/// command): reader sessions pinned to generations, a staged update
/// transaction, and goal answering — all as a pure `line in → text out`
/// step function, so the protocol is unit-testable without sockets.
///
/// Protocol:
///
/// ```text
/// open <user>     open a reader session at a clearance, pin the newest generation
/// use <n>         make session n current
/// close <n>       close session n
/// refresh         re-pin the current session to the newest generation
/// epoch           print the current session's pinned and latest epochs
/// +<m-fact>.      stage an assert in the pending transaction
/// -<m-fact>.      stage a retract
/// commit          commit the staged transaction (all-or-nothing, all levels)
/// abort           discard the staged transaction
/// <goal>          answer a goal from the current session's pinned snapshot
/// quit            end the connection
/// ```
pub struct ServeSession {
    server: Arc<BeliefServer>,
    /// Reader sessions by id (1-based; `None` = closed).
    sessions: Vec<Option<ReaderSession>>,
    current: Option<usize>,
    pending: Vec<EdbUpdate>,
}

impl ServeSession {
    /// Parse the database and start a fresh server for this connection.
    ///
    /// # Errors
    ///
    /// Parse failures, rendered for the CLI user.
    pub fn new(source: &str, opts: &Options) -> Result<Self, String> {
        flow_preflight(source, opts)?;
        let db = load(source)?;
        let server = Arc::new(BeliefServer::new(db, engine_options(opts)));
        Ok(Self::with_server(server))
    }

    /// Attach a connection to an existing (possibly shared) server —
    /// the TCP path hands every connection the same server, so sessions
    /// on different connections see each other's commits on refresh.
    pub fn with_server(server: Arc<BeliefServer>) -> Self {
        ServeSession {
            server,
            sessions: Vec::new(),
            current: None,
            pending: Vec::new(),
        }
    }

    /// The shared server (for spawning sibling connections).
    pub fn server(&self) -> &Arc<BeliefServer> {
        &self.server
    }

    /// A banner line describing the service.
    pub fn banner(&self) -> String {
        format!(
            "multilog serve — epoch {}; `open <user>` to begin, `quit` to end",
            self.server.epoch()
        )
    }

    /// Process one protocol line; returns the response text and whether
    /// the connection should close.
    pub fn step(&mut self, line: &str) -> (String, bool) {
        let line = line.trim();
        if line.is_empty() {
            return (String::new(), false);
        }
        if line == "quit" || line == "exit" {
            return ("bye\n".to_owned(), true);
        }
        (self.command(line), false)
    }

    fn command(&mut self, line: &str) -> String {
        if let Some(user) = line.strip_prefix("open ") {
            return match self.server.open_reader(user.trim()) {
                Ok(session) => {
                    let epoch = session.epoch();
                    self.sessions.push(Some(session));
                    let id = self.sessions.len();
                    self.current = Some(id - 1);
                    format!("session {id} open at {} (epoch {epoch})\n", user.trim())
                }
                Err(e) => format!("error: {e}\n"),
            };
        }
        if let Some(n) = line.strip_prefix("use ") {
            return match self.session_index(n) {
                Ok(i) => {
                    self.current = Some(i);
                    format!("session {} current\n", i + 1)
                }
                Err(e) => e,
            };
        }
        if let Some(n) = line.strip_prefix("close ") {
            return match self.session_index(n) {
                Ok(i) => {
                    self.sessions[i] = None;
                    if self.current == Some(i) {
                        self.current = None;
                    }
                    format!("session {} closed\n", i + 1)
                }
                Err(e) => e,
            };
        }
        match line {
            "refresh" => match self.current_session_mut() {
                Ok(session) => format!("epoch {}\n", session.refresh()),
                Err(e) => e,
            },
            "epoch" => match self.current_session_mut() {
                Ok(session) => format!(
                    "pinned {} latest {}\n",
                    session.epoch(),
                    session.latest_epoch()
                ),
                Err(e) => e,
            },
            "commit" => self.commit(),
            "abort" => {
                let n = self.pending.len();
                self.pending.clear();
                format!("aborted {n} staged updates\n")
            }
            _ => {
                if let Some(rest) = line.strip_prefix('+') {
                    return self.stage(rest, true);
                }
                if let Some(rest) = line.strip_prefix('-') {
                    return self.stage(rest, false);
                }
                self.query(line)
            }
        }
    }

    /// Stage one `+`/`-` line into the pending transaction.
    fn stage(&mut self, text: &str, insert: bool) -> String {
        use multilog_core::ast::Head;
        let parsed = match multilog_core::parse_clause(text) {
            Ok(c) => c,
            Err(e) => return format!("error: {e}\n"),
        };
        let mut staged = Vec::with_capacity(parsed.len());
        for clause in parsed {
            if !clause.body.is_empty() {
                return "error: updates must be facts, not rules\n".to_owned();
            }
            let Head::M(m) = clause.head else {
                return "error: updates must be m-atom facts like `+s[p(k : a -s-> v)].`\n"
                    .to_owned();
            };
            staged.push(if insert {
                EdbUpdate::Assert(m)
            } else {
                EdbUpdate::Retract(m)
            });
        }
        let n = staged.len();
        self.pending.extend(staged);
        format!(
            "staged {n} update{} ({} pending)\n",
            if n == 1 { "" } else { "s" },
            self.pending.len()
        )
    }

    /// Commit the staged transaction through the single-writer slot.
    fn commit(&mut self) -> String {
        if self.pending.is_empty() {
            return "nothing staged\n".to_owned();
        }
        let mut writer = match self.server.open_writer() {
            Ok(w) => w,
            Err(e) => return format!("error: {e}\n"),
        };
        match writer.commit(&self.pending) {
            Ok(summary) => {
                self.pending.clear();
                let mut out = format!("committed at epoch {}\n", summary.epoch);
                for (level, stats) in &summary.levels {
                    let _ = writeln!(
                        out,
                        "  {level}: +{}/-{} base, +{}/-{} derived",
                        stats.edb_inserted,
                        stats.edb_retracted,
                        stats.derived_added,
                        stats.derived_removed
                    );
                }
                out
            }
            // The staged batch is kept: the client may retry (e.g. after
            // a deadline trip) or `abort` explicitly.
            Err(e) => format!("error: {e} (transaction kept; `abort` to discard)\n"),
        }
    }

    fn query(&mut self, goal: &str) -> String {
        match self.current_session_mut() {
            Ok(session) => match session.query_text(goal) {
                Ok(answers) => render_answers(&answers),
                Err(e) => format!("error: {e}\n"),
            },
            Err(e) => e,
        }
    }

    fn session_index(&self, text: &str) -> Result<usize, String> {
        let id: usize = text
            .trim()
            .parse()
            .map_err(|_| format!("error: invalid session id `{}`\n", text.trim()))?;
        match self.sessions.get(id.wrapping_sub(1)) {
            Some(Some(_)) => Ok(id - 1),
            _ => Err(format!("error: no open session {id}\n")),
        }
    }

    fn current_session_mut(&mut self) -> Result<&mut ReaderSession, String> {
        let i = self
            .current
            .ok_or_else(|| "error: no current session; `open <user>` first\n".to_owned())?;
        self.sessions
            .get_mut(i)
            .and_then(Option::as_mut)
            .ok_or_else(|| format!("error: no open session {}\n", i + 1))
    }
}

/// Drive a [`ServeSession`] over arbitrary line I/O (stdin or one TCP
/// connection). When `opts.user` is set, a session at that clearance is
/// opened before the first line.
///
/// # Errors
///
/// I/O failures on `input`/`output`, rendered for the CLI user.
pub fn serve_io(
    mut session: ServeSession,
    opts: &Options,
    input: &mut dyn std::io::BufRead,
    output: &mut dyn std::io::Write,
) -> Result<(), String> {
    let emit = |text: &str, output: &mut dyn std::io::Write| {
        output
            .write_all(text.as_bytes())
            .and_then(|()| output.flush())
            .map_err(|e| e.to_string())
    };
    emit(&format!("{}\n", session.banner()), output)?;
    if !opts.user.is_empty() {
        let (out, _) = session.step(&format!("open {}", opts.user));
        emit(&out, output)?;
    }
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Ok(());
        }
        let (out, quit) = session.step(&line);
        emit(&out, output)?;
        if quit {
            return Ok(());
        }
    }
}

/// Render answers as a table (or `yes`/`no` for ground goals).
pub fn render_answers(answers: &[multilog_core::Answer]) -> String {
    if answers.is_empty() {
        return "no\n".to_owned();
    }
    if answers.len() == 1 && answers[0].is_empty() {
        return "yes\n".to_owned();
    }
    let mut out = String::new();
    for a in answers {
        let row: Vec<String> = a.iter().map(|(k, v)| format!("{k} = {v}")).collect();
        let _ = writeln!(out, "  {}", row.join(", "));
    }
    let _ = writeln!(out, "({} answers)", answers.len());
    out
}

fn render_goal(goal: &[multilog_core::ast::Atom]) -> String {
    goal.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// The usage text.
pub const USAGE: &str = "\
multilog — belief reasoning in MLS deductive databases (Jamil, SIGMOD 1999)

USAGE:
  multilog run    <file.mlog> --user <level> [--engine op|red] [--filter] [GUARDS]
  multilog query  <file.mlog> --user <level> '<goal>' [--engine op|red] [--filter] [GUARDS]
  multilog prove  <file.mlog> --user <level> '<goal>' [--filter] [GUARDS]
  multilog reduce <file.mlog> --user <level>
  multilog check  <file.mlog> --user <level>
  multilog lint   <file.mlog> [--user <level>] [--format human|json]
  multilog analyze <file.mlog> [--format human|json] [--explain <pred>]
  multilog repl   <file.mlog> --user <level> [--filter] [GUARDS]
  multilog serve  <file.mlog> [--user <level>] [--listen <addr>] [GUARDS]

GUARDS:
  --deadline <ms>    abort evaluation/queries after a wall-clock deadline
  --max-facts <n>    abort once more than n facts have been derived
  --stats            print per-rule (reduced) / per-clause (operational)
                     evaluation counters after the answers; demand-driven
                     runs also report cone/adorned/magic fact counts
  --no-magic         disable the magic-sets demand rewrite: reduced
                     `query` goals and repl goals materialize the full
                     fixpoint instead of the demanded sub-fixpoint

LINT:
  `lint` runs the static-analysis pass (stable ML01xx codes; see
  docs/LINTS.md) and prints rustc-style spanned diagnostics. With
  --user, clearance-dependent lints also run. `run` and `query` lint
  automatically and refuse to evaluate on error-severity findings:
  --no-lint          skip the preflight entirely
  --lint-warn        report lint errors but evaluate anyway

ANALYZE:
  `analyze` runs the lattice-flow abstract interpretation: sound
  per-predicate bounds on the security levels and classifications a
  predicate can achieve, plus interprocedural channel findings
  (ML02xx codes; see docs/LINTS.md). --explain <pred> prints one
  predicate's bound derivation (which facts and rules contribute).
  Flow results also feed evaluation:
  --deny flow        run/query/serve refuse to start when the flow
                     analysis reports any ML02xx finding
  --flow-prune       drop rules the analysis proves invisible at the
                     session clearance from demand-driven goal
                     evaluation (answers are unchanged; with --stats,
                     demand runs report the pruned rule count)

GOALS:
  m-atom     s[p(k : a -c-> v)]
  b-atom     s[p(k : a -c-> v)] << fir|opt|cau|<user mode>
  molecule   s[p(k : a1 -c1-> v1; a2 -c2-> v2)]
  p-atom     q(x, Y)        dominance   u leq s
  (uppercase identifiers are variables; `_` is a don't-care)

REPL:
  Goals are answered from an incrementally maintained reduction
  fixpoint. Prefix a goal with `:prove ` to print its proof tree.
  Update the database in place with ground m-atom facts:
  +s[p(k : a -s-> v)].   assert a fact (delta-propagated, no recompute)
  -s[p(k : a -s-> v)].   retract it (delete-and-rederive)

SERVE:
  A multi-session belief server with snapshot isolation: `open <user>`
  pins a reader to the current generation (repeat for more sessions,
  `use <n>` to switch); goals answer from the pinned snapshot until
  `refresh`. `+fact.`/`-fact.` stage a transaction; `commit` applies it
  atomically across every open clearance level and publishes the next
  generation. With --listen <addr>, serves the same protocol to TCP
  clients (all connections share one server); otherwise reads stdin.
  With --user, a first session is opened automatically.
";

/// Parse `argv`-style arguments into `(command, file, goal, Options)`.
pub fn parse_args(args: &[String]) -> Result<(String, String, Option<String>, Options), String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or(USAGE)?.clone();
    let mut file = None;
    let mut goal = None;
    let mut opts = Options::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--user" => {
                opts.user = it.next().ok_or("--user needs a level name")?.clone();
            }
            "--engine" => match it.next().map(String::as_str) {
                Some("op" | "operational") => opts.engine = EngineKind::Operational,
                Some("red" | "reduced") => opts.engine = EngineKind::Reduced,
                other => return Err(format!("unknown engine {other:?}")),
            },
            "--filter" => opts.filter = true,
            "--stats" => opts.stats = true,
            "--no-magic" => opts.no_magic = true,
            "--no-lint" => opts.no_lint = true,
            "--lint-warn" => opts.lint_warn = true,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.json = false,
                Some("json") => opts.json = true,
                other => return Err(format!("unknown format {other:?}")),
            },
            "--deadline" => {
                let v = it.next().ok_or("--deadline needs milliseconds")?;
                opts.deadline_ms =
                    Some(v.parse().map_err(|_| format!("invalid --deadline `{v}`"))?);
            }
            "--max-facts" => {
                let v = it.next().ok_or("--max-facts needs a fact count")?;
                opts.max_facts = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --max-facts `{v}`"))?,
                );
            }
            "--listen" => {
                opts.listen = Some(it.next().ok_or("--listen needs an address")?.clone());
            }
            "--deny" => match it.next().map(String::as_str) {
                Some("flow") => opts.deny_flow = true,
                other => return Err(format!("unknown --deny class {other:?} (try `flow`)")),
            },
            "--flow-prune" => opts.flow_prune = true,
            "--explain" => {
                opts.explain = Some(it.next().ok_or("--explain needs a predicate name")?.clone());
            }
            other if file.is_none() => file = Some(other.to_owned()),
            other if goal.is_none() => goal = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing database file")?;
    // `lint`, `analyze`, and `serve` work without a clearance (the flow
    // analysis bounds every clearance at once; serve sessions pick
    // theirs at `open`); every other command needs one.
    if opts.user.is_empty() && cmd != "lint" && cmd != "serve" && cmd != "analyze" {
        return Err("missing --user <level>".to_owned());
    }
    Ok((cmd, file, goal, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DB: &str = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        u[p(k : a -u-> v)].
        c[p(k : a -c-> t)] <- q(j).
        s[p(k : a -u-> v)] <- c[p(k : a -c-> t)] << cau.
        q(j).
        <- c[p(k : a -u-> v)] << opt.
    "#;

    fn opts(user: &str) -> Options {
        Options {
            user: user.to_owned(),
            ..Options::default()
        }
    }

    #[test]
    fn run_answers_stored_queries() {
        let out = run(DB, &opts("c")).unwrap();
        assert!(out.contains("query 1"));
        assert!(out.contains("yes"), "{out}");
        let out = run(DB, &opts("u")).unwrap();
        assert!(out.contains("no"), "{out}");
    }

    #[test]
    fn run_reduced_matches() {
        let mut o = opts("c");
        o.engine = EngineKind::Reduced;
        let out = run(DB, &o).unwrap();
        assert!(out.contains("yes"), "{out}");
    }

    #[test]
    fn query_with_variables() {
        let out = query(DB, "L[p(k : a -C-> V)] << opt", &opts("s")).unwrap();
        assert!(out.contains("answers"), "{out}");
        assert!(out.contains("V = v"), "{out}");
    }

    #[test]
    fn prove_prints_tree_or_no_proof() {
        let out = prove(DB, "c[p(k : a -u-> v)] << opt", &opts("c")).unwrap();
        assert!(out.contains("DESCEND-O"), "{out}");
        assert!(out.contains("height"), "{out}");
        let out = prove(DB, "s[p(k : a -u-> v)]", &opts("u")).unwrap();
        assert!(out.contains("no proof"));
    }

    #[test]
    fn reduce_prints_program() {
        let out = reduce(DB, &opts("s")).unwrap();
        assert!(out.contains("dominate(X, Y) :- order(X, Y)."));
        assert!(out.contains("bel_cau_c"));
    }

    #[test]
    fn check_reports_shape_and_consistency() {
        let out = check(DB, &opts("s")).unwrap();
        assert!(out.contains("Λ=5 Σ=3 Π=1 Q=1"), "{out}");
        assert!(out.contains("admissible"), "{out}");
        assert!(out.contains("consistent"), "{out}");
    }

    #[test]
    fn check_flags_inadmissible() {
        let out = check("level(u). u[p(k : a -s-> v)].", &opts("u")).unwrap();
        assert!(out.contains("NOT admissible"), "{out}");
    }

    #[test]
    fn repl_session_solves_and_proves() {
        let mut s = ReplSession::new(DB, &opts("s")).unwrap();
        assert!(s.step("q(j)").contains("yes"));
        assert!(s.step(":prove q(j)").contains("DEDUCTION-G"));
        assert!(s.step("nonsense [").contains("error"));
        assert_eq!(s.step("   "), "");
        assert!(s.banner().contains("level s"));
    }

    #[test]
    fn repl_updates_assert_and_retract_incrementally() {
        let mut s = ReplSession::new(DB, &opts("s")).unwrap();
        assert!(s.step("s[p(k2 : a -s-> w)]").contains("no"));
        let out = s.step("+s[p(k2 : a -s-> w)].");
        assert!(out.starts_with("ok:"), "{out}");
        assert!(s.step("s[p(k2 : a -s-> w)]").contains("yes"));
        // The operational engine rebuilds over the updated clause set, so
        // proof trees see the new fact too.
        let tree = s.step(":prove s[p(k2 : a -s-> w)]");
        assert!(tree.contains("DEDUCTION-G"), "{tree}");
        let out = s.step("-s[p(k2 : a -s-> w)].");
        assert!(out.starts_with("ok:"), "{out}");
        assert!(s.step("s[p(k2 : a -s-> w)]").contains("no"));
    }

    #[test]
    fn repl_update_rejects_rules_and_non_matoms() {
        let mut s = ReplSession::new(DB, &opts("s")).unwrap();
        assert!(s
            .step("+s[p(k : a -s-> w)] <- q(j).")
            .contains("must be facts"));
        assert!(s.step("+q(zz).").contains("m-atom"));
        assert!(s.step("+s[p(K : a -s-> w)].").contains("ground"));
        // The session survives rejected updates.
        assert!(s.step("q(j)").contains("yes"));
    }

    #[test]
    fn repl_demand_cache_hits_and_invalidates_on_update() {
        let mut s = ReplSession::new(DB, &opts("s")).unwrap();
        assert!(s.step("s[p(k : a -u-> v)]").contains("yes"));
        assert!(s.step("s[p(k : a -u-> v)]").contains("yes"));
        let (entries, hits) = s.demand_cache_stats();
        assert_eq!(entries, 1, "one binding pattern prepared");
        assert_eq!(hits, 1, "the repeat reuses it");
        // A different constant under the same pattern shares the entry.
        assert!(s.step("s[p(k9 : a -u-> v)]").contains("no"));
        assert_eq!(s.demand_cache_stats(), (1, 2));
        // Updates invalidate: the prepared programs embed the EDB.
        assert!(s.step("+s[p(k9 : a -u-> v)].").starts_with("ok:"));
        assert_eq!(s.demand_cache_stats().0, 0, "cache cleared on commit");
        assert!(s.step("s[p(k9 : a -u-> v)]").contains("yes"));
        assert!(s.step("-s[p(k9 : a -u-> v)].").starts_with("ok:"));
        assert!(s.step("s[p(k9 : a -u-> v)]").contains("no"));
    }

    #[test]
    fn repl_retraction_cascades_through_beliefs() {
        // Retracting the u fact removes the cautious support chain: the
        // r8-derived s-level fact must disappear with it.
        let mut s = ReplSession::new(DB, &opts("s")).unwrap();
        assert!(s.step("s[p(k : a -u-> v)]").contains("yes"));
        assert!(s.step("-u[p(k : a -u-> v)].").starts_with("ok:"));
        assert!(s.step("u[p(k : a -u-> v)]").contains("no"));
    }

    #[test]
    fn parse_args_roundtrip() {
        let args: Vec<String> = ["query", "db.mlog", "--user", "s", "goal", "--engine", "red"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let (cmd, file, goal, o) = parse_args(&args).unwrap();
        assert_eq!(cmd, "query");
        assert_eq!(file, "db.mlog");
        assert_eq!(goal.as_deref(), Some("goal"));
        assert_eq!(o.engine, EngineKind::Reduced);
        assert_eq!(o.user, "s");
    }

    #[test]
    fn parse_args_errors() {
        let to = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert!(parse_args(&to(&["run"])).is_err());
        assert!(parse_args(&to(&["run", "f.mlog"])).is_err()); // no user
        assert!(parse_args(&to(&["run", "f.mlog", "--user"])).is_err());
        assert!(parse_args(&to(&["run", "f.mlog", "--user", "s", "--engine", "zzz"])).is_err());
    }

    #[test]
    fn parse_args_guard_flags() {
        let args: Vec<String> = [
            "run",
            "db.mlog",
            "--user",
            "s",
            "--deadline",
            "250",
            "--max-facts",
            "9000",
            "--stats",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let (_, _, _, o) = parse_args(&args).unwrap();
        assert_eq!(o.deadline_ms, Some(250));
        assert_eq!(o.max_facts, Some(9000));
        assert!(o.stats);
        let bad: Vec<String> = ["run", "db.mlog", "--user", "s", "--deadline", "soon"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert!(parse_args(&bad).is_err());
    }

    #[test]
    fn stats_flag_prints_counters() {
        let mut o = opts("c");
        o.stats = true;
        let out = query(DB, "q(X)", &o).unwrap();
        assert!(out.contains("operational evaluation:"), "{out}");
        assert!(out.contains("clause:"), "{out}");
        o.engine = EngineKind::Reduced;
        let out = query(DB, "q(X)", &o).unwrap();
        assert!(out.contains("rule (stratum"), "{out}");
    }

    #[test]
    fn stats_reports_demand_counters_for_reduced_queries() {
        let mut o = opts("s");
        o.stats = true;
        o.engine = EngineKind::Reduced;
        let out = query(DB, "s[p(k : a -u-> v)]", &o).unwrap();
        assert!(out.contains("yes"), "{out}");
        assert!(out.contains("demand(magic):"), "{out}");
        assert!(out.contains("adorned="), "{out}");
    }

    #[test]
    fn query_falls_back_to_reduction_for_aggregates() {
        let src = "level(u). level(s). order(u, s).\n\
                   u[emp(a : sal -u-> v1)].\n\
                   s[emp(a : sal -s-> v2)].\n\
                   s[emp(b : sal -s-> v3)].\n\
                   total(H, count(K)) <- H[emp(K : sal -_C-> _V)] << opt, level(H).";
        // The default (operational) engine cannot evaluate aggregate
        // heads; `query` must answer via the reduction and say so.
        let o = opts("s");
        let out = query(src, "total(H, N)", &o).unwrap();
        assert!(out.contains("answering via the reduction"), "{out}");
        assert!(out.contains("H = u, N = 1"), "{out}");
        assert!(out.contains("H = s, N = 3"), "{out}");
        // `run` takes the same fallback for the stored queries.
        let stored = format!("{src}\n<- total(H, N).");
        let out = run(&stored, &o).unwrap();
        assert!(out.contains("answering via the reduction"), "{out}");
        assert!(out.contains("H = s, N = 3"), "{out}");
        // An explicit `--engine red` never needs (or prints) the note.
        let mut red = opts("s");
        red.engine = EngineKind::Reduced;
        let out = query(src, "total(H, N)", &red).unwrap();
        assert!(!out.contains("answering via the reduction"), "{out}");
        assert!(out.contains("H = s, N = 3"), "{out}");
    }

    #[test]
    fn algo_goal_answered_through_cli_query() {
        let src = "boss(a, b). boss(b, c).\n\
                   chain(X, Y) <- @bfs(boss, X, Y).\n\
                   level(u).";
        let o = opts("u");
        let out = query(src, "chain(a, Y)", &o).unwrap();
        assert!(out.contains("Y = b"), "{out}");
        assert!(out.contains("Y = c"), "{out}");
        assert!(out.contains("(2 answers)"), "{out}");
    }

    #[test]
    fn no_magic_matches_demand_answers() {
        for goal in ["q(X)", "s[p(k : a -u-> v)]", "L[p(k : a -C-> V)] << opt"] {
            let mut o = opts("s");
            o.engine = EngineKind::Reduced;
            let demand = query(DB, goal, &o).unwrap();
            o.no_magic = true;
            let full = query(DB, goal, &o).unwrap();
            assert_eq!(demand, full, "goal {goal}");
        }
    }

    #[test]
    fn repl_no_magic_matches_demand_answers() {
        let mut o = opts("s");
        o.no_magic = true;
        let mut full = ReplSession::new(DB, &o).unwrap();
        let mut demand = ReplSession::new(DB, &opts("s")).unwrap();
        for goal in ["q(X)", "s[p(k : a -u-> v)]", "c[p(k : a -C-> V)] << cau"] {
            assert_eq!(full.step(goal), demand.step(goal), "goal {goal}");
        }
    }

    #[test]
    fn parse_args_no_magic_flag() {
        let args: Vec<String> = ["query", "db.mlog", "--user", "s", "g", "--no-magic"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let (_, _, _, o) = parse_args(&args).unwrap();
        assert!(o.no_magic);
    }

    #[test]
    fn max_facts_budget_trips_as_error() {
        let mut o = opts("c");
        o.max_facts = Some(1);
        let err = query(DB, "q(X)", &o).unwrap_err();
        assert!(err.contains("fact budget"), "{err}");
        o.engine = EngineKind::Reduced;
        o.no_magic = true;
        let err = query(DB, "q(X)", &o).unwrap_err();
        assert!(err.contains("fact budget"), "{err}");
        // The demand path carries the budget too: a belief goal whose
        // demanded sub-fixpoint exceeds one fact trips identically. (The
        // tiny `q(X)` demand cone legitimately fits the budget now.)
        o.no_magic = false;
        o.user = "s".to_owned();
        let err = query(DB, "s[p(k : a -u-> v)]", &o).unwrap_err();
        assert!(err.contains("fact budget"), "{err}");
    }

    /// Lint-erroneous (p-predicate arity mismatch) but still evaluable:
    /// the engine itself would accept this database, so it isolates the
    /// preflight behaviour.
    const ARITY_DB: &str = r#"
        level(u). level(s). order(u, s).
        q(a). r(X) <- q(X, b).
        <- q(X).
    "#;

    #[test]
    fn run_fails_fast_on_lint_errors() {
        let err = run(ARITY_DB, &opts("s")).unwrap_err();
        assert!(err.contains("lint found"), "{err}");
        assert!(err.contains("ML0113"), "{err}");
        let err = query(ARITY_DB, "q(X)", &opts("s")).unwrap_err();
        assert!(err.contains("ML0113"), "{err}");
    }

    #[test]
    fn no_lint_skips_preflight() {
        let mut o = opts("s");
        o.no_lint = true;
        let out = run(ARITY_DB, &o).unwrap();
        assert!(out.contains("query 1"), "{out}");
        assert!(!out.contains("lint"), "{out}");
    }

    #[test]
    fn lint_warn_downgrades_and_evaluates() {
        let mut o = opts("s");
        o.lint_warn = true;
        let out = run(ARITY_DB, &o).unwrap();
        assert!(out.contains("downgraded"), "{out}");
        assert!(out.contains("query 1"), "{out}");
    }

    #[test]
    fn lint_command_renders_human_and_json() {
        let out = lint(ARITY_DB, "arity.mlog", &opts("s")).unwrap();
        assert!(out.contains("error[ML0113]"), "{out}");
        assert!(out.contains("--> arity.mlog:"), "{out}");
        let mut o = opts("s");
        o.json = true;
        let out = lint(ARITY_DB, "arity.mlog", &o).unwrap();
        assert!(out.starts_with("{\"diagnostics\":["), "{out}");
        assert!(out.contains("\"code\":\"ML0113\""), "{out}");
    }

    #[test]
    fn lint_command_without_user_skips_clearance_lints() {
        // Clearance-free lint runs (user optional for `lint`), and the
        // clean database reports no findings.
        let src = "level(u). level(s). order(u, s). s[p(k : a -u-> v)].";
        let out = lint(src, "db.mlog", &Options::default()).unwrap();
        assert!(out.contains("0 errors, 0 warnings"), "{out}");
        // With a clearance, ML0114 can fire.
        let hi = "level(u). level(s). order(u, s).\n\
                  s[p(k : a -s-> v)]. q(X) <- s[p(k : a -s-> X)].";
        let out = lint(hi, "db.mlog", &opts("u")).unwrap();
        assert!(out.contains("ML0114"), "{out}");
    }

    #[test]
    fn parse_args_lint_flags() {
        let to = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        // lint works without --user…
        let (cmd, _, _, o) = parse_args(&to(&["lint", "f.mlog", "--format", "json"])).unwrap();
        assert_eq!(cmd, "lint");
        assert!(o.json);
        // …but run still requires it.
        assert!(parse_args(&to(&["run", "f.mlog"])).is_err());
        let (_, _, _, o) = parse_args(&to(&[
            "run",
            "f.mlog",
            "--user",
            "s",
            "--no-lint",
            "--lint-warn",
        ]))
        .unwrap();
        assert!(o.no_lint);
        assert!(o.lint_warn);
        assert!(parse_args(&to(&["lint", "f.mlog", "--format", "xml"])).is_err());
    }

    #[test]
    fn serve_opens_sessions_and_commits_transactions() {
        let mut s = ServeSession::new(DB, &opts("")).unwrap();
        let (out, _) = s.step("open s");
        assert!(out.contains("session 1 open at s (epoch 0)"), "{out}");
        let (out, _) = s.step("s[p(k2 : a -u-> w)] << opt");
        assert!(out.contains("no"), "{out}");
        let (out, _) = s.step("+u[p(k2 : a -u-> w)].");
        assert!(out.contains("staged 1 update (1 pending)"), "{out}");
        // Not committed yet: invisible.
        assert!(s.step("s[p(k2 : a -u-> w)] << opt").0.contains("no"));
        let (out, _) = s.step("commit");
        assert!(out.contains("committed at epoch 1"), "{out}");
        assert!(out.contains("s: +1/-"), "{out}");
        // Committed but the session is pinned at epoch 0 until refresh.
        assert!(s.step("s[p(k2 : a -u-> w)] << opt").0.contains("no"));
        let (out, _) = s.step("epoch");
        assert_eq!(out, "pinned 0 latest 1\n");
        assert_eq!(s.step("refresh").0, "epoch 1\n");
        assert!(s.step("s[p(k2 : a -u-> w)] << opt").0.contains("yes"));
    }

    #[test]
    fn serve_sessions_isolate_per_clearance() {
        let mut s = ServeSession::new(DB, &opts("")).unwrap();
        s.step("open u");
        s.step("open s");
        // Session 2 (s) is current: the c-level cell is visible.
        assert!(s.step("c[p(k : a -c-> t)]").0.contains("yes"));
        let (out, _) = s.step("use 1");
        assert!(out.contains("session 1 current"), "{out}");
        // At u it is not (no read up).
        assert!(s.step("c[p(k : a -c-> t)]").0.contains("no"));
        let (out, _) = s.step("close 1");
        assert!(out.contains("session 1 closed"), "{out}");
        assert!(s.step("q(j)").0.contains("no current session"));
        s.step("use 2");
        assert!(s.step("q(j)").0.contains("yes"));
    }

    #[test]
    fn serve_rejects_bad_input_without_dying() {
        let mut s = ServeSession::new(DB, &opts("")).unwrap();
        assert!(s.step("open zz").0.contains("error"), "unknown level");
        assert!(s.step("use 7").0.contains("no open session 7"));
        assert!(s.step("q(j)").0.contains("no current session"));
        assert!(s.step("commit").0.contains("nothing staged"));
        s.step("open s");
        assert!(s.step("+q(zz).").0.contains("m-atom"));
        assert!(s.step("+s[p(k : a -s-> v)] <- q(j).").0.contains("facts"));
        s.step("+u[p(k9 : a -u-> w)].");
        let (out, _) = s.step("abort");
        assert!(out.contains("aborted 1"), "{out}");
        assert!(s.step("commit").0.contains("nothing staged"));
        let (out, quit) = s.step("quit");
        assert!(quit);
        assert!(out.contains("bye"));
    }

    #[test]
    fn serve_io_drives_the_line_protocol() {
        let session = ServeSession::new(DB, &opts("")).unwrap();
        let input = b"open s\nq(j)\nquit\n".to_vec();
        let mut output = Vec::new();
        serve_io(
            session,
            &opts("c"),
            &mut std::io::Cursor::new(input),
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("multilog serve"), "{text}");
        // --user c auto-opened session 1; `open s` became session 2.
        assert!(text.contains("session 1 open at c"), "{text}");
        assert!(text.contains("session 2 open at s"), "{text}");
        assert!(text.contains("yes"), "{text}");
        assert!(text.trim_end().ends_with("bye"), "{text}");
    }

    #[test]
    fn serve_connections_share_one_server() {
        let first = ServeSession::new(DB, &opts("")).unwrap();
        let server = Arc::clone(first.server());
        let mut first = first;
        let mut second = ServeSession::with_server(server);
        first.step("open s");
        second.step("open s");
        first.step("+u[p(k2 : a -u-> w)].");
        assert!(first.step("commit").0.contains("epoch 1"));
        // The second connection sees the commit after refresh.
        assert!(second.step("s[p(k2 : a -u-> w)] << opt").0.contains("no"));
        assert_eq!(second.step("refresh").0, "epoch 1\n");
        assert!(second.step("s[p(k2 : a -u-> w)] << opt").0.contains("yes"));
    }

    #[test]
    fn parse_args_serve_flags() {
        let to = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        // serve works without --user…
        let (cmd, _, _, o) =
            parse_args(&to(&["serve", "f.mlog", "--listen", "127.0.0.1:7171"])).unwrap();
        assert_eq!(cmd, "serve");
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:7171"));
        // …and with one.
        let (_, _, _, o) = parse_args(&to(&["serve", "f.mlog", "--user", "s"])).unwrap();
        assert_eq!(o.user, "s");
        assert!(parse_args(&to(&["serve", "f.mlog", "--listen"])).is_err());
    }

    #[test]
    fn analyze_command_renders_bounds_and_findings() {
        let out = analyze(DB, "db.mlog", &opts("")).unwrap();
        assert!(out.contains("m p: level ∈ [{u}, {s}]"), "{out}");
        // DB's cau rule escalates `p` back up the lattice: ML0203 fires.
        assert!(out.contains("ML0203"), "{out}");
        let mut o = opts("");
        o.json = true;
        let out = analyze(DB, "db.mlog", &o).unwrap();
        assert!(out.starts_with("{\"predicates\":["), "{out}");
        assert!(out.contains("\"code\":\"ML0203\""), "{out}");
    }

    #[test]
    fn analyze_explain_narrows_to_one_predicate() {
        let mut o = opts("");
        o.explain = Some("p".to_owned());
        let out = analyze(DB, "db.mlog", &o).unwrap();
        assert!(out.contains("level ∈ u, class ∈ u"), "{out}");
        assert!(out.contains("rule `c[p(k : a -c-> t)] <- q(j).`"), "{out}");
        o.explain = Some("zz".to_owned());
        assert!(analyze(DB, "db.mlog", &o).is_err());
    }

    #[test]
    fn deny_flow_refuses_channelful_programs_only() {
        let mut o = opts("s");
        o.deny_flow = true;
        // DB has ML0202/ML0203/ML0204 findings: refused.
        let err = run(DB, &o).unwrap_err();
        assert!(err.contains("--deny flow"), "{err}");
        assert!(query(DB, "q(X)", &o).unwrap_err().contains("--deny flow"));
        assert!(ServeSession::new(DB, &o).is_err());
        // A channel-free program still evaluates.
        let clean = "level(u). level(s). order(u, s).\n\
                     u[r(k : a -u-> v)]. <- u[r(k : a -u-> v)].";
        let out = run(clean, &o).unwrap();
        assert!(out.contains("yes"), "{out}");
        // Without the flag DB evaluates as before.
        assert!(run(DB, &opts("s")).is_ok());
    }

    #[test]
    fn flow_prune_flag_keeps_answers_identical() {
        for goal in ["q(X)", "s[p(k : a -u-> v)]", "L[p(k : a -C-> V)] << opt"] {
            for user in ["u", "c", "s"] {
                let mut o = opts(user);
                o.engine = EngineKind::Reduced;
                let plain = query(DB, goal, &o).unwrap();
                o.flow_prune = true;
                assert_eq!(query(DB, goal, &o).unwrap(), plain, "goal {goal} at {user}");
            }
        }
    }

    #[test]
    fn flow_prune_stats_report_pruned_rules() {
        let mut o = opts("u");
        o.engine = EngineKind::Reduced;
        o.flow_prune = true;
        o.stats = true;
        let out = query(DB, "u[p(k : a -u-> v)]", &o).unwrap();
        assert!(out.contains("yes"), "{out}");
        // At clearance u, DB's c- and s-headed rules (and the cau
        // machinery for c and s) are statically invisible.
        let pruned = out
            .lines()
            .find_map(|l| l.split("pruned=").nth(1))
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| panic!("no pruned= counter in: {out}"));
        assert!(pruned > 0, "{out}");
    }

    #[test]
    fn parse_args_flow_flags() {
        let to = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        // analyze works without --user.
        let (cmd, _, _, o) = parse_args(&to(&[
            "analyze",
            "f.mlog",
            "--explain",
            "p",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(cmd, "analyze");
        assert_eq!(o.explain.as_deref(), Some("p"));
        assert!(o.json);
        let (_, _, _, o) = parse_args(&to(&[
            "query",
            "f.mlog",
            "--user",
            "s",
            "g",
            "--deny",
            "flow",
            "--flow-prune",
        ]))
        .unwrap();
        assert!(o.deny_flow);
        assert!(o.flow_prune);
        assert!(parse_args(&to(&["run", "f.mlog", "--user", "s", "--deny", "zz"])).is_err());
        assert!(parse_args(&to(&["analyze", "f.mlog", "--explain"])).is_err());
    }

    #[test]
    fn filter_option_changes_answers() {
        let src = r#"
            level(u). level(s). order(u, s).
            s[m(k : ship -u-> phantom)].
        "#;
        let plain = query(src, "u[m(k : ship -u-> phantom)]", &opts("s")).unwrap();
        assert!(plain.contains("no"));
        let mut o = opts("s");
        o.filter = true;
        let filtered = query(src, "u[m(k : ship -u-> phantom)]", &o).unwrap();
        assert!(filtered.contains("yes"), "{filtered}");
    }
}
