//! One-shot wall-clock comparison of the two MultiLog pipelines on the
//! standard synthetic workload (a quick sanity check; `cargo bench` has
//! the statistically sound version).
//!
//! ```text
//! cargo run --release -p multilog-bench --example timing
//! ```

// Benchmark harness: panicking on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use std::time::Instant;

fn main() {
    let spec = multilog_bench::workload::MultiLogSpec {
        depth: 3,
        facts: 800,
        rules: 41,
        use_cau: true,
        seed: 17,
    };
    let src = multilog_bench::workload::synthetic_multilog(&spec);
    let db = multilog_core::parse_database(&src).unwrap();

    let t = Instant::now();
    let e = multilog_core::MultiLogEngine::new(&db, "l2").unwrap();
    let ans = e.solve_text("L[data(K : a -C-> V)] << cau").unwrap();
    println!("operational: {:?} ({} answers)", t.elapsed(), ans.len());

    let t = Instant::now();
    let r = multilog_core::reduce::ReducedEngine::new(&db, "l2").unwrap();
    let ans2 = r.solve_text("L[data(K : a -C-> V)] << cau").unwrap();
    println!("reduced:     {:?} ({} answers)", t.elapsed(), ans2.len());

    assert_eq!(ans, ans2, "Theorem 6.1 must hold");
}
