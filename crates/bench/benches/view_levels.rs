//! Figures 2–3 at scale: Jajodia–Sandhu view computation (σ +
//! subsumption elimination) vs relation size and polyinstantiation rate.

// Benchmark harness: panicking on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use multilog_bench::workload::{synthetic_relation, RelationSpec};
use multilog_mlsrel::view::{view_at, view_at_with, ViewOptions};

fn bench_view_by_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("view/by_size");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for entities in [100usize, 1_000, 10_000] {
        let spec = RelationSpec {
            entities,
            poly_rate: 0.2,
            ..RelationSpec::default()
        };
        let (lat, rel) = synthetic_relation(&spec);
        let mid = lat.label("l2").expect("depth 4 has l2");
        g.bench_with_input(BenchmarkId::from_parameter(entities), &entities, |b, _| {
            b.iter(|| black_box(view_at(&rel, mid)));
        });
    }
    g.finish();
}

fn bench_view_by_poly_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("view/by_poly_rate");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for tenths in [0usize, 2, 5, 9] {
        let spec = RelationSpec {
            entities: 2_000,
            poly_rate: tenths as f64 / 10.0,
            ..RelationSpec::default()
        };
        let (lat, rel) = synthetic_relation(&spec);
        let mid = lat.label("l2").expect("depth 4 has l2");
        g.bench_with_input(BenchmarkId::from_parameter(tenths), &tenths, |b, _| {
            b.iter(|| black_box(view_at(&rel, mid)));
        });
    }
    g.finish();
}

fn bench_subsumption_ablation(c: &mut Criterion) {
    // The subsumption-elimination pass is quadratic per view; measure its
    // marginal cost.
    let mut g = c.benchmark_group("view/subsumption_ablation");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let spec = RelationSpec {
        entities: 2_000,
        poly_rate: 0.5,
        ..RelationSpec::default()
    };
    let (lat, rel) = synthetic_relation(&spec);
    let top = lat.label("l3").expect("depth 4 has l3");
    g.bench_function("with_subsumption", |b| {
        b.iter(|| black_box(view_at(&rel, top)));
    });
    g.bench_function("without_subsumption", |b| {
        b.iter(|| {
            black_box(view_at_with(
                &rel,
                top,
                ViewOptions {
                    filter_sigma: true,
                    eliminate_subsumed: false,
                },
            ))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_view_by_size,
    bench_view_by_poly_rate,
    bench_subsumption_ablation
);
criterion_main!(benches);
