//! Ablation: memoised transitive-closure dominance vs lattice size and
//! shape (chains, fans, and Bell–LaPadula product lattices).

// Benchmark harness: panicking on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use multilog_lattice::{standard, AccessClass, LatticeBuilder};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("lattice/build");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for depth in [4usize, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::new("chain", depth), &depth, |b, &d| {
            b.iter(|| black_box(standard::chain(d)));
        });
    }
    for width in [4usize, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::new("fan", width), &width, |b, &w| {
            b.iter(|| black_box(standard::fan(w)));
        });
    }
    for cats in [2usize, 4, 6, 8] {
        g.bench_with_input(
            BenchmarkId::new("product_4_levels", 4 << cats),
            &cats,
            |b, &n| {
                let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                b.iter(|| {
                    black_box(AccessClass::enumerate_lattice(&["u", "c", "s", "t"], &refs).unwrap())
                });
            },
        );
    }
    g.finish();
}

fn bench_dominates(c: &mut Criterion) {
    let mut g = c.benchmark_group("lattice/dominates");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for depth in [4usize, 64, 1024] {
        let lat = standard::chain(depth);
        let labels: Vec<_> = lat.labels().collect();
        g.bench_with_input(
            BenchmarkId::new("chain_all_pairs", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let mut count = 0usize;
                    for &a in &labels {
                        for &b2 in &labels {
                            if lat.dominates(a, b2) {
                                count += 1;
                            }
                        }
                    }
                    black_box(count)
                });
            },
        );
    }
    g.finish();
}

fn bench_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("lattice/lub");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for width in [4usize, 16, 64] {
        let lat = standard::fan(width);
        let labels: Vec<_> = lat.labels().collect();
        g.bench_with_input(BenchmarkId::new("fan_all_pairs", width), &width, |b, _| {
            b.iter(|| {
                let mut found = 0usize;
                for &a in &labels {
                    for &b2 in &labels {
                        if lat.lub(a, b2).is_some() {
                            found += 1;
                        }
                    }
                }
                black_box(found)
            });
        });
    }
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    // Rebuild-from-scratch cost when levels are added one at a time —
    // the `level/order` declaration pattern of MultiLog Λ components.
    let mut g = c.benchmark_group("lattice/incremental_decls");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut builder = LatticeBuilder::new();
                for i in 0..n {
                    builder.add_level(format!("l{i}"));
                }
                for i in 1..n {
                    builder.add_order(format!("l{}", i - 1), format!("l{i}"));
                }
                black_box(builder.build().unwrap())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_dominates,
    bench_bounds,
    bench_incremental
);
criterion_main!(benches);
