//! Figure 13 ablation: query evaluation with the σ FILTER rules off
//! (MultiLog default) vs on. The filter widens every m-atom match with
//! downward-inheritance candidates, so its cost scales with the number of
//! higher facts whose columns are visible below.

// Benchmark harness: panicking on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use multilog_core::{parse_database, EngineOptions, MultiLogDb, MultiLogEngine};

/// Facts at the top of a 3-chain whose key columns are classified at the
/// bottom — the shape that makes FILTER do work.
fn filterable_db(entities: usize) -> MultiLogDb {
    let mut src = String::from("level(l0). level(l1). level(l2).\norder(l0, l1). order(l1, l2).\n");
    for e in 0..entities {
        src.push_str(&format!(
            "l2[asset(k{e} : name -l0-> n{e})].\n\
             l2[asset(k{e} : secret -l2-> s{e})].\n"
        ));
    }
    parse_database(&src).expect("filterable db parses")
}

fn engine(db: &MultiLogDb, filter: bool) -> MultiLogEngine {
    MultiLogEngine::with_options(
        db,
        "l2",
        EngineOptions {
            enable_filter: filter,
            enable_filter_null: filter,
            ..EngineOptions::default()
        },
    )
    .expect("evaluates")
}

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter/evaluation");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for entities in [100usize, 400, 1600] {
        let db = filterable_db(entities);
        g.bench_with_input(BenchmarkId::new("off", entities), &entities, |b, _| {
            b.iter(|| black_box(engine(&db, false)));
        });
        g.bench_with_input(BenchmarkId::new("on", entities), &entities, |b, _| {
            b.iter(|| black_box(engine(&db, true)));
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter/query");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let db = filterable_db(500);
    let off = engine(&db, false);
    let on = engine(&db, true);
    // The downward query only answers when the filter is on.
    let goal = "l0[asset(K : name -l0-> V)]";
    g.bench_function("off", |b| {
        b.iter(|| black_box(off.solve_text(goal).unwrap()));
    });
    g.bench_function("on", |b| {
        b.iter(|| black_box(on.solve_text(goal).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_eval, bench_query);
criterion_main!(benches);
