//! Cost decomposition of the §6 front-end: τ translation + axiom
//! generation, Datalog parsing, and fixpoint evaluation.

// Benchmark harness: panicking on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use multilog_bench::workload::{synthetic_multilog, MultiLogSpec};
use multilog_core::reduce::ReducedEngine;
use multilog_core::{parse_database, MultiLogDb};

fn db(facts: usize) -> MultiLogDb {
    let spec = MultiLogSpec {
        depth: 3,
        facts,
        rules: facts / 20 + 1,
        use_cau: true,
        seed: 23,
    };
    parse_database(&synthetic_multilog(&spec)).expect("synthetic db parses")
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction/end_to_end");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for facts in [100usize, 400, 1600] {
        let database = db(facts);
        g.bench_with_input(BenchmarkId::from_parameter(facts), &facts, |b, _| {
            b.iter(|| black_box(ReducedEngine::new(&database, "l2").unwrap()));
        });
    }
    g.finish();
}

fn bench_source_parse(c: &mut Criterion) {
    // MultiLog-side parsing cost for the same workloads.
    let mut g = c.benchmark_group("reduction/multilog_parse");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for facts in [100usize, 400, 1600] {
        let spec = MultiLogSpec {
            depth: 3,
            facts,
            rules: facts / 20 + 1,
            use_cau: true,
            seed: 23,
        };
        let src = synthetic_multilog(&spec);
        g.bench_with_input(BenchmarkId::from_parameter(facts), &facts, |b, _| {
            b.iter(|| black_box(parse_database(&src).unwrap()));
        });
    }
    g.finish();
}

fn bench_generated_program_size(c: &mut Criterion) {
    // Not a timing bench per se: measures translation text generation,
    // whose output size grows with the lattice (per-level specialization).
    let mut g = c.benchmark_group("reduction/translate_by_depth");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for depth in [2usize, 4, 8] {
        let spec = MultiLogSpec {
            depth,
            facts: 200,
            rules: 10,
            use_cau: true,
            seed: 29,
        };
        let database = parse_database(&synthetic_multilog(&spec)).unwrap();
        let top = format!("l{}", depth - 1);
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let e = ReducedEngine::new(&database, &top).unwrap();
                black_box(e.program_text().len())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_source_parse,
    bench_generated_program_size
);
criterion_main!(benches);
