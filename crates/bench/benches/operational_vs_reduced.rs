//! The paper's central implementation question (§6): evaluating MultiLog
//! with the goal-directed operational engine vs reducing to Datalog
//! (τ(Δ) ∪ A) and running the CORAL-style bottom-up engine.
//!
//! Both pipelines include database evaluation and one query, matching how
//! the front-end architecture of §6 would serve an ad hoc query.

// Benchmark harness: panicking on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use multilog_bench::workload::{synthetic_multilog, MultiLogSpec};
use multilog_core::reduce::ReducedEngine;
use multilog_core::{parse_database, MultiLogDb, MultiLogEngine};

fn db(facts: usize, use_cau: bool) -> MultiLogDb {
    let spec = MultiLogSpec {
        depth: 3,
        facts,
        rules: facts / 20 + 1,
        use_cau,
        seed: 17,
    };
    parse_database(&synthetic_multilog(&spec)).expect("synthetic db parses")
}

const QUERY: &str = "L[data(K : a -C-> V)] << cau";

fn bench_monotone(c: &mut Criterion) {
    let mut g = c.benchmark_group("semantics/opt_rules");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for facts in [50usize, 200, 800] {
        let database = db(facts, false);
        g.bench_with_input(BenchmarkId::new("operational", facts), &facts, |b, _| {
            b.iter(|| {
                let e = MultiLogEngine::new(&database, "l2").unwrap();
                black_box(e.solve_text(QUERY).unwrap())
            });
        });
        g.bench_with_input(BenchmarkId::new("reduced", facts), &facts, |b, _| {
            b.iter(|| {
                let e = ReducedEngine::new(&database, "l2").unwrap();
                black_box(e.solve_text(QUERY).unwrap())
            });
        });
    }
    g.finish();
}

fn bench_cautious(c: &mut Criterion) {
    let mut g = c.benchmark_group("semantics/cau_rules");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for facts in [50usize, 200, 800] {
        let database = db(facts, true);
        g.bench_with_input(BenchmarkId::new("operational", facts), &facts, |b, _| {
            b.iter(|| {
                let e = MultiLogEngine::new(&database, "l2").unwrap();
                black_box(e.solve_text(QUERY).unwrap())
            });
        });
        g.bench_with_input(BenchmarkId::new("reduced", facts), &facts, |b, _| {
            b.iter(|| {
                let e = ReducedEngine::new(&database, "l2").unwrap();
                black_box(e.solve_text(QUERY).unwrap())
            });
        });
    }
    g.finish();
}

fn bench_query_only(c: &mut Criterion) {
    // Amortized regime: database evaluated once, many ad hoc queries.
    let mut g = c.benchmark_group("semantics/query_only");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let database = db(400, false);
    let op = MultiLogEngine::new(&database, "l2").unwrap();
    let red = ReducedEngine::new(&database, "l2").unwrap();
    for goal in [
        "L[data(K : a -C-> V)] << fir",
        "L[data(K : a -C-> V)] << opt",
        "L[data(K : a -C-> V)] << cau",
    ] {
        let mode = goal.rsplit(' ').next().expect("mode suffix");
        g.bench_with_input(BenchmarkId::new("operational", mode), &goal, |b, q| {
            b.iter(|| black_box(op.solve_text(q).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("reduced", mode), &goal, |b, q| {
            b.iter(|| black_box(red.solve_text(q).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_monotone, bench_cautious, bench_query_only);
criterion_main!(benches);
