//! The parametric belief function β (Definition 3.1, Figures 6–8) at
//! scale: sweep relation size, lattice depth, and polyinstantiation rate
//! for each of the three modes.

// Benchmark harness: panicking on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use multilog_bench::workload::{synthetic_relation, RelationSpec};
use multilog_mlsrel::belief::{believe, BeliefMode};

fn bench_by_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("belief/by_size");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for entities in [100usize, 1_000, 10_000] {
        let spec = RelationSpec {
            entities,
            poly_rate: 0.2,
            ..RelationSpec::default()
        };
        let (lat, rel) = synthetic_relation(&spec);
        let top = lat.label("l3").expect("depth 4 has l3");
        for mode in BeliefMode::all() {
            g.bench_with_input(
                BenchmarkId::new(mode.short_name(), entities),
                &entities,
                |b, _| {
                    b.iter(|| black_box(believe(&rel, top, mode).unwrap()));
                },
            );
        }
    }
    g.finish();
}

fn bench_by_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("belief/by_lattice_depth");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for depth in [2usize, 4, 8, 16] {
        let spec = RelationSpec {
            entities: 2_000,
            depth,
            poly_rate: 0.3,
            ..RelationSpec::default()
        };
        let (lat, rel) = synthetic_relation(&spec);
        let top = lat.label(&format!("l{}", depth - 1)).expect("top exists");
        for mode in [BeliefMode::Optimistic, BeliefMode::Cautious] {
            g.bench_with_input(
                BenchmarkId::new(mode.short_name(), depth),
                &depth,
                |b, _| {
                    b.iter(|| black_box(believe(&rel, top, mode).unwrap()));
                },
            );
        }
    }
    g.finish();
}

fn bench_by_poly_rate(c: &mut Criterion) {
    // Cautious belief does per-key maximality work; polyinstantiation
    // rate controls how much.
    let mut g = c.benchmark_group("belief/cau_by_poly_rate");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for tenths in [0usize, 1, 5, 10] {
        let spec = RelationSpec {
            entities: 2_000,
            poly_rate: tenths as f64 / 10.0,
            ..RelationSpec::default()
        };
        let (lat, rel) = synthetic_relation(&spec);
        let top = lat.label("l3").expect("depth 4 has l3");
        g.bench_with_input(BenchmarkId::from_parameter(tenths), &tenths, |b, _| {
            b.iter(|| black_box(believe(&rel, top, BeliefMode::Cautious).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_by_size, bench_by_depth, bench_by_poly_rate);
criterion_main!(benches);
