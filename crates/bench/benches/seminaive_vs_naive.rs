//! Ablation for the Datalog substrate (the CORAL substitute): semi-naive
//! vs naive bottom-up evaluation on recursive workloads.

// Benchmark harness: panicking on setup failure is the right behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use multilog_datalog::{parse_program, Engine, Program, Strategy};

fn chain_program(n: usize) -> Program {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
    parse_program(&src).expect("chain program parses")
}

fn grid_program(n: usize) -> Program {
    // n×n grid: right and down edges; transitive closure is dense.
    let mut src = String::new();
    for r in 0..n {
        for col in 0..n {
            if col + 1 < n {
                src.push_str(&format!("edge(g{r}_{col}, g{r}_{c2}).\n", c2 = col + 1));
            }
            if r + 1 < n {
                src.push_str(&format!("edge(g{r}_{col}, g{r2}_{col}).\n", r2 = r + 1));
            }
        }
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
    parse_program(&src).expect("grid program parses")
}

fn bench_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("datalog/chain_closure");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [32usize, 64, 128] {
        let p = chain_program(n);
        g.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| black_box(Engine::new(&p).unwrap().run().unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Engine::new(&p)
                        .unwrap()
                        .with_strategy(Strategy::Naive)
                        .run()
                        .unwrap(),
                )
            });
        });
    }
    g.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("datalog/grid_closure");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [4usize, 6, 8] {
        let p = grid_program(n);
        g.bench_with_input(BenchmarkId::new("seminaive", n * n), &n, |b, _| {
            b.iter(|| black_box(Engine::new(&p).unwrap().run().unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("naive", n * n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Engine::new(&p)
                        .unwrap()
                        .with_strategy(Strategy::Naive)
                        .run()
                        .unwrap(),
                )
            });
        });
    }
    g.finish();
}

fn bench_stratified_negation(c: &mut Criterion) {
    let mut g = c.benchmark_group("datalog/stratified_negation");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [50usize, 200] {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("node(n{i}).\n"));
            if i + 1 < n && i % 3 != 0 {
                src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
            }
        }
        src.push_str(
            "reach(X) :- edge(n0, X).\nreach(Y) :- reach(X), edge(X, Y).\n\
             unreach(X) :- node(X), not reach(X).\n",
        );
        let p = parse_program(&src).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Engine::new(&p).unwrap().run().unwrap()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_closure,
    bench_grid,
    bench_stratified_negation
);
criterion_main!(benches);
