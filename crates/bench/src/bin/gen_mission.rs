//! Emit the MultiLog encoding of the Figure 1 `Mission` relation
//! (`examples/data/mission.mlog` is generated with this tool).

fn main() {
    let (_, rel) = multilog_mlsrel::mission::mission_relation();
    print!("{}", multilog_core::examples::encode_relation(&rel));
}
