//! Print every reproduced table and figure of the paper.
//!
//! ```text
//! cargo run -p multilog-bench --bin figures            # everything
//! cargo run -p multilog-bench --bin figures -- fig3    # one figure
//! ```

use multilog_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print!("{}", figures::all());
        return;
    }
    for arg in &args {
        let out = match arg.as_str() {
            "fig1" => figures::fig1(),
            "fig2" => figures::fig2(),
            "fig3" => figures::fig3(),
            "fig4" => figures::fig4(),
            "fig5" => figures::fig5(),
            "fig6" => figures::fig6(),
            "fig7" => figures::fig7(),
            "fig8" => figures::fig8(),
            "fig9" => figures::fig9(),
            "fig10" => figures::fig10(),
            "fig11" => figures::fig11(),
            "fig12" => figures::fig12(),
            "fig13" => figures::fig13(),
            "query" | "sec3.2" => figures::section_3_2_query(),
            other => {
                eprintln!("unknown figure `{other}`; use fig1..fig13 or query");
                std::process::exit(2);
            }
        };
        print!("{out}");
    }
}
