//! Fixed-workload performance smoke benchmark.
//!
//! Runs a fixed set of deterministic workloads and writes a small JSON
//! report:
//!
//! * `tc_chain` — transitive closure over a 256-edge chain (quadratic
//!   number of derived paths, deep fixpoint).
//! * `tc_grid` — transitive closure over a 16x16 grid (fan-out joins).
//! * `reduction` — the Figure-12 reduction of a synthetic MultiLog
//!   database (depth 4, 1500 m-facts, cautious-belief rules), i.e. the
//!   end-to-end path through `ReducedEngine::new`.
//! * `update_churn_{incremental,recompute}` — a 20-commit stream of
//!   single-edge retract/re-insert deltas over `tc_chain`, maintained
//!   incrementally (DRed) vs. recomputed from scratch per commit; the
//!   top-level `update_churn_speedup` field is their wall-time ratio.
//! * `concurrent_churn` — a [`BeliefServer`] under writer churn: reader
//!   threads at distinct clearance levels loop refresh + goal against
//!   their pinned snapshots while the writer commits retract/re-insert
//!   deltas. Reported as a top-level object with reader p50/p90/p99/p99.9
//!   query latency (µs), writer commit throughput, and tail attribution:
//!   `max_spans_publish` / `tail_publish_overlap_pct` say whether the
//!   worst-case and top-1% reader latencies coincide with a writer
//!   commit publish — the snapshot-isolation claim is that reader
//!   latency stays flat because readers never block on commits.
//! * `social_reach_{operator,rules}` — full reachability over a
//!   power-law social graph, computed by the native `@bfs` operator vs.
//!   the equivalent rule-at-a-time transitive closure (identical `reach`
//!   relations, asserted); `social_reach_speedup` is their wall ratio.
//! * `level_dashboard` — per-clearance `count` aggregates over a
//!   polyinstantiated `emp` database, reduced and answered end-to-end
//!   (`total(H, N)`, one row per level, demand path asserted to agree).
//! * `tc_chain_xl` — transitive closure over a 3150-edge chain (~5M
//!   derived paths); runs once, last, so the process peak RSS reported
//!   as `tc_chain_xl_peak_rss_mb` (VmHWM) is attributable to it.
//!
//! Usage:
//!
//! ```text
//! perf_smoke [--out FILE] [--baseline FILE] [--repeat N]
//! ```
//!
//! With `--baseline`, per-workload `baseline_facts_per_sec` and
//! `speedup` fields are merged in from a previous report, so one binary
//! produces a self-contained before/after comparison.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use multilog_bench::workload::{synthetic_multilog, MultiLogSpec};
use multilog_core::ast::Head;
use multilog_core::reduce::EdbUpdate;
use multilog_core::{
    parse_clause, parse_database, reduce::ReducedEngine, BeliefServer, EngineOptions,
};
use multilog_datalog::{parse_program, Const, Engine, IncrementalEngine};

struct WorkloadResult {
    name: &'static str,
    facts: usize,
    iterations: usize,
    wall_ms: f64,
    facts_per_sec: f64,
}

fn tc_chain_src(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\n");
    src.push_str("path(X, Z) :- path(X, Y), edge(Y, Z).\n");
    src
}

fn tc_grid_src(g: usize) -> String {
    let mut src = String::new();
    for r in 0..g {
        for c in 0..g {
            if c + 1 < g {
                src.push_str(&format!("edge(n{r}_{c}, n{r}_{}).\n", c + 1));
            }
            if r + 1 < g {
                src.push_str(&format!("edge(n{r}_{c}, n{}_{c}).\n", r + 1));
            }
        }
    }
    src.push_str("path(X, Y) :- edge(X, Y).\n");
    src.push_str("path(X, Z) :- path(X, Y), edge(Y, Z).\n");
    src
}

/// Run a plain Datalog workload `repeat` times, reporting the best run.
/// `configure` customizes the engine (used for the guarded variant).
fn run_datalog(
    name: &'static str,
    src: &str,
    repeat: usize,
    configure: impl Fn(Engine) -> Engine,
) -> WorkloadResult {
    let program = parse_program(src).expect("workload parses");
    let mut best: Option<WorkloadResult> = None;
    for _ in 0..repeat {
        let engine = configure(Engine::new(&program).expect("workload stratifies"));
        let start = Instant::now();
        let (db, stats) = engine.run_with_stats().expect("workload evaluates");
        let wall = start.elapsed();
        let facts = db.fact_count();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let result = WorkloadResult {
            name,
            facts,
            iterations: stats.iterations,
            wall_ms,
            facts_per_sec: facts as f64 / wall.as_secs_f64(),
        };
        if best.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
            best = Some(result);
        }
    }
    best.expect("repeat >= 1")
}

/// Measure tc_chain plain and with every guard armed (deadline, fact
/// budget, cancellation token), interleaving the two configurations in
/// one loop after both-configuration warm-ups so allocator/cache state
/// cannot bias either side.
/// Returns the plain and guarded results plus the overhead in percent,
/// computed as the median of per-pair wall ratios with the run order
/// *alternating within each pair*. Adjacent runs share whatever
/// frequency/steal state the machine is in, so the pair ratio cancels
/// drift; alternating which configuration goes first cancels the
/// position bias (second-run cache warmth) that otherwise puts a
/// systematic offset on every ratio; the median then shrugs off
/// preemption outliers. The whole measurement runs as three such
/// trials and reports the median of the three trial medians: one trial's
/// estimate still wanders ±2.5 points on a busy single-core box, but
/// trial errors are close to independent, so the median of three cubes
/// the tail probability — which is what the CI gate's 3 % ceiling is
/// sized against.
fn run_guard_overhead(src: &str, repeat: usize) -> (WorkloadResult, WorkloadResult, f64) {
    let program = parse_program(src).expect("workload parses");
    let mut best: [Option<WorkloadResult>; 2] = [None, None];
    let mut trial_estimates = Vec::new();
    for _ in 0..3 {
        let pct = guard_overhead_trial(&program, repeat, &mut best);
        trial_estimates.push(pct);
    }
    trial_estimates.sort_by(f64::total_cmp);
    let overhead_pct = trial_estimates[1];
    let [plain, guarded] = best;
    (
        plain.expect("repeat >= 1"),
        guarded.expect("repeat >= 1"),
        overhead_pct,
    )
}

/// One guard-overhead trial: both-configuration warm-ups, then `repeat`
/// order-alternating pairs; returns the median per-pair ratio as a
/// percentage and folds each run into the per-configuration bests.
fn guard_overhead_trial(
    program: &multilog_datalog::Program,
    repeat: usize,
    best: &mut [Option<WorkloadResult>; 2],
) -> f64 {
    // Warm up both configurations (not just the plain one): the first
    // guarded run pays one-time costs (token allocation, deadline
    // syscalls) that would otherwise land in the first measured ratio.
    for guarded in [false, true] {
        let mut engine = Engine::new(program).expect("workload stratifies");
        if guarded {
            engine = engine
                .with_deadline(std::time::Duration::from_secs(3600))
                .with_fact_limit(100_000_000)
                .with_cancel_token(multilog_datalog::CancelToken::new());
        }
        let _ = engine.run().expect("warm-up evaluates");
    }
    let mut walls: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let names = ["tc_chain", "tc_chain_guarded"];
    for pair in 0..repeat {
        let order = if pair % 2 == 0 { [0, 1] } else { [1, 0] };
        for slot in order {
            let name = names[slot];
            let mut engine = Engine::new(program).expect("workload stratifies");
            if slot == 1 {
                engine = engine
                    .with_deadline(std::time::Duration::from_secs(3600))
                    .with_fact_limit(100_000_000)
                    .with_cancel_token(multilog_datalog::CancelToken::new());
            }
            let start = Instant::now();
            let (db, stats) = engine.run_with_stats().expect("workload evaluates");
            let wall = start.elapsed();
            let facts = db.fact_count();
            let result = WorkloadResult {
                name,
                facts,
                iterations: stats.iterations,
                wall_ms: wall.as_secs_f64() * 1e3,
                facts_per_sec: facts as f64 / wall.as_secs_f64(),
            };
            walls[slot].push(result.wall_ms);
            if best[slot]
                .as_ref()
                .is_none_or(|b| result.wall_ms < b.wall_ms)
            {
                best[slot] = Some(result);
            }
        }
    }
    let [plain_walls, guarded_walls] = walls;
    let mut ratios: Vec<f64> = plain_walls
        .iter()
        .zip(&guarded_walls)
        .map(|(p, g)| g / p)
        .collect();
    ratios.sort_by(f64::total_cmp);
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

/// Measure a small-delta update stream two ways: incrementally via
/// [`IncrementalEngine`] commits, and by re-running the full fixpoint
/// from scratch after every commit. The stream alternately retracts and
/// re-inserts single chain edges near the tail of `tc_chain` — each
/// commit changes one EDB fact (~0.4 % of the base relation) and
/// invalidates a bounded slice of the 33k derived paths, the regime DRed
/// is built for. Returns the two results plus the recompute/incremental
/// wall-time ratio (best runs on both sides).
fn run_update_churn(repeat: usize) -> (WorkloadResult, WorkloadResult, f64) {
    let n = 512usize;
    let base_src = tc_chain_src(n);
    let program = parse_program(&base_src).expect("workload parses");
    // Ten retract/re-insert pairs alternating between the two ends of
    // the chain (where retracting edge i invalidates (i+1)·(n−i) paths,
    // so the ends are the genuinely small deltas): twenty single-fact
    // commits in total, ending back at the initial EDB.
    let pairs = 10usize;
    let targets: Vec<(String, String)> = (0..pairs)
        .map(|k| {
            let i = if k % 2 == 0 { k / 2 } else { n - 1 - k / 2 };
            (format!("n{i}"), format!("n{}", i + 1))
        })
        .collect();
    let commits = 2 * pairs;

    // Pre-parse every post-commit program variant so the recompute side
    // times exactly what the incremental side times: evaluation, not
    // parsing. Retracting edge (a, b) leaves the source minus that line;
    // re-inserting restores the full program.
    let minus_programs: Vec<_> = targets
        .iter()
        .map(|(a, b)| {
            let line = format!("edge({a}, {b}).\n");
            let src = base_src.replacen(&line, "", 1);
            parse_program(&src).expect("delta workload parses")
        })
        .collect();

    let mut best_inc: Option<WorkloadResult> = None;
    let mut best_rec: Option<WorkloadResult> = None;
    for _ in 0..repeat {
        // Incremental: one warm engine, twenty delta commits.
        let mut engine = IncrementalEngine::new(&program).expect("workload materializes");
        let baseline_facts = engine.database().fact_count();
        let start = Instant::now();
        for (a, b) in &targets {
            for insert in [false, true] {
                let fact = vec![Const::sym(a), Const::sym(b)];
                engine.begin().expect("no transaction open");
                if insert {
                    engine.insert("edge", fact).expect("stage insert");
                } else {
                    engine.retract("edge", fact).expect("stage retract");
                }
                engine.commit().expect("delta commit evaluates");
            }
        }
        let wall = start.elapsed();
        let facts = engine.database().fact_count();
        assert_eq!(
            facts, baseline_facts,
            "retract/re-insert pairs must restore the fixpoint"
        );
        let result = WorkloadResult {
            name: "update_churn_incremental",
            facts,
            iterations: commits,
            wall_ms: wall.as_secs_f64() * 1e3,
            facts_per_sec: commits as f64 / wall.as_secs_f64(),
        };
        if best_inc.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
            best_inc = Some(result);
        }

        // Recompute: the same twenty post-commit states, each evaluated
        // from scratch.
        let start = Instant::now();
        let mut facts = 0;
        for minus in &minus_programs {
            for variant in [minus, &program] {
                let db = Engine::new(variant)
                    .expect("workload stratifies")
                    .run()
                    .expect("workload evaluates");
                facts = db.fact_count();
            }
        }
        let wall = start.elapsed();
        let result = WorkloadResult {
            name: "update_churn_recompute",
            facts,
            iterations: commits,
            wall_ms: wall.as_secs_f64() * 1e3,
            facts_per_sec: commits as f64 / wall.as_secs_f64(),
        };
        if best_rec.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
            best_rec = Some(result);
        }
    }
    let inc = best_inc.expect("repeat >= 1");
    let rec = best_rec.expect("repeat >= 1");
    let speedup = rec.wall_ms / inc.wall_ms;
    (inc, rec, speedup)
}

/// Measure a point query (`path(n0, X)` over the 512-node tc_chain) two
/// ways: against the full materialized fixpoint, and demand-driven via
/// the magic-sets rewrite (`run_for_goal`), which only computes the
/// paths reachable from the bound source. Returns the two results plus
/// the full/magic wall-time ratio (best runs on both sides); the magic
/// side reports `facts` as the facts its rewritten program materialized.
fn run_point_query(repeat: usize) -> (WorkloadResult, WorkloadResult, f64) {
    let n = 512usize;
    let program = parse_program(&tc_chain_src(n)).expect("workload parses");
    let goal = multilog_datalog::parse_query("path(n0, X)").expect("goal parses");
    let mut best_full: Option<WorkloadResult> = None;
    let mut best_magic: Option<WorkloadResult> = None;
    for _ in 0..repeat {
        // Full: materialize everything, then answer from the database.
        let engine = Engine::new(&program).expect("workload stratifies");
        let start = Instant::now();
        let (db, _) = engine.run_with_stats().expect("workload evaluates");
        let answers = multilog_datalog::run_query(&db, &goal).expect("goal evaluates");
        let wall = start.elapsed();
        assert_eq!(answers.len(), n, "n0 reaches every later node");
        let facts = db.fact_count();
        let result = WorkloadResult {
            name: "point_query_full",
            facts,
            iterations: 1,
            wall_ms: wall.as_secs_f64() * 1e3,
            facts_per_sec: facts as f64 / wall.as_secs_f64(),
        };
        if best_full
            .as_ref()
            .is_none_or(|b| result.wall_ms < b.wall_ms)
        {
            best_full = Some(result);
        }

        // Magic: rewrite around the goal's bindings, evaluate only the
        // demanded sub-fixpoint.
        let engine = Engine::new(&program).expect("workload stratifies");
        let start = Instant::now();
        let (answers, stats) = engine.run_for_goal(&goal).expect("goal evaluates");
        let wall = start.elapsed();
        assert_eq!(answers.len(), n, "demand answers match full");
        let demand = stats.demand.expect("goal runs record demand stats");
        assert_eq!(demand.strategy, "magic", "bound goal engages the rewrite");
        let facts = demand.facts_materialized;
        let result = WorkloadResult {
            name: "point_query_magic",
            facts,
            iterations: 1,
            wall_ms: wall.as_secs_f64() * 1e3,
            facts_per_sec: facts as f64 / wall.as_secs_f64(),
        };
        if best_magic
            .as_ref()
            .is_none_or(|b| result.wall_ms < b.wall_ms)
        {
            best_magic = Some(result);
        }
    }
    let full = best_full.expect("repeat >= 1");
    let magic = best_magic.expect("repeat >= 1");
    let speedup = full.wall_ms / magic.wall_ms;
    (full, magic, speedup)
}

/// Measure full reachability over a power-law social graph two ways:
/// with the native `@bfs` operator (`reach(X, Y) :- @bfs(edge, X, Y).`)
/// and with the equivalent rule-at-a-time transitive-closure pair. Both
/// sides compute the identical `reach` relation (asserted, count inside
/// the loop and full rows once outside it); the operator's win is pure
/// evaluation strategy — per-source traversal over the columnar indexes
/// instead of semi-naive join rounds. Returns both results plus the
/// rule/operator wall-time ratio (best runs on both sides).
fn run_social_reach(repeat: usize) -> (WorkloadResult, WorkloadResult, f64) {
    let spec = multilog_bench::workload::GraphSpec::default();
    let edges = multilog_bench::workload::power_law_edges(&spec);
    let mut base = String::new();
    for (a, b) in &edges {
        base.push_str(&format!("edge(n{a}, n{b}).\n"));
    }
    let op_src = format!("{base}reach(X, Y) :- @bfs(edge, X, Y).\n");
    let rule_src =
        format!("{base}reach(X, Y) :- edge(X, Y).\nreach(X, Z) :- reach(X, Y), edge(Y, Z).\n");
    let op_program = parse_program(&op_src).expect("operator workload parses");
    let rule_program = parse_program(&rule_src).expect("rule workload parses");
    let mut best_op: Option<WorkloadResult> = None;
    let mut best_rule: Option<WorkloadResult> = None;
    let mut reach = (0usize, 0usize);
    for _ in 0..repeat {
        for slot in [0usize, 1] {
            let program = if slot == 0 {
                &op_program
            } else {
                &rule_program
            };
            let engine = Engine::new(program).expect("workload stratifies");
            let start = Instant::now();
            let (db, stats) = engine.run_with_stats().expect("workload evaluates");
            let wall = start.elapsed();
            let facts = db.fact_count();
            let derived = db
                .relation("reach")
                .map_or(0, multilog_datalog::Relation::len);
            if slot == 0 {
                reach.0 = derived;
            } else {
                reach.1 = derived;
            }
            let result = WorkloadResult {
                name: if slot == 0 {
                    "social_reach_operator"
                } else {
                    "social_reach_rules"
                },
                facts,
                iterations: stats.iterations,
                wall_ms: wall.as_secs_f64() * 1e3,
                facts_per_sec: facts as f64 / wall.as_secs_f64(),
            };
            let best = if slot == 0 {
                &mut best_op
            } else {
                &mut best_rule
            };
            if best.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
                *best = Some(result);
            }
        }
        assert_eq!(
            reach.0, reach.1,
            "operator and rule closures must have the same size"
        );
    }
    // Row-level equivalence, checked once outside the timers (the
    // property suite pins this on random graphs; the bench re-asserts it
    // on the measured one).
    let op_db = Engine::new(&op_program)
        .expect("workload stratifies")
        .run()
        .expect("workload evaluates");
    let rule_db = Engine::new(&rule_program)
        .expect("workload stratifies")
        .run()
        .expect("workload evaluates");
    let sorted = |db: &multilog_datalog::Database| {
        db.relation("reach")
            .map(multilog_datalog::Relation::sorted)
            .unwrap_or_default()
    };
    assert_eq!(
        sorted(&op_db),
        sorted(&rule_db),
        "@bfs must equal rule-at-a-time closure"
    );
    let op = best_op.expect("repeat >= 1");
    let rule = best_rule.expect("repeat >= 1");
    let speedup = rule.wall_ms / op.wall_ms;
    (op, rule, speedup)
}

/// Run the per-clearance aggregate dashboard end-to-end: reduce a
/// 3000-cell polyinstantiated `emp` database at top clearance and answer
/// the `total(H, N)` dashboard goal (one `count` row per level) through
/// the materialized fixpoint. Returns the best run plus the row count;
/// the demand path is asserted to agree once outside the timers.
fn run_level_dashboard(repeat: usize) -> (WorkloadResult, usize) {
    let spec = multilog_bench::workload::DashboardSpec::default();
    let db = parse_database(&multilog_bench::workload::synthetic_dashboard(&spec))
        .expect("synthetic dashboard parses");
    let top = format!("l{}", spec.depth - 1);
    let mut best: Option<WorkloadResult> = None;
    let mut rows = 0usize;
    for _ in 0..repeat {
        let start = Instant::now();
        let red = ReducedEngine::new(&db, &top).expect("dashboard reduces");
        let answers = red
            .solve_text("total(H, N)")
            .expect("dashboard goal evaluates");
        let wall = start.elapsed();
        assert_eq!(answers.len(), spec.depth, "one dashboard row per level");
        rows = answers.len();
        let facts = red.database().fact_count();
        let result = WorkloadResult {
            name: "level_dashboard",
            facts,
            iterations: rows,
            wall_ms: wall.as_secs_f64() * 1e3,
            facts_per_sec: facts as f64 / wall.as_secs_f64(),
        };
        if best.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
            best = Some(result);
        }
    }
    // The demand path (what the CLI `query` command runs) must agree
    // with the materialized answers, bound or unbound.
    let red = ReducedEngine::new(&db, &top).expect("dashboard reduces");
    for goal in ["total(H, N)", &format!("total({top}, N)")] {
        assert_eq!(
            red.solve_text_demand(goal).expect("demand goal evaluates"),
            red.solve_text(goal).expect("goal evaluates"),
            "demand dashboard answers must match materialized"
        );
    }
    (best.expect("repeat >= 1"), rows)
}

/// What the multi-session server did under churn: reader-side query
/// latency percentiles and writer-side commit throughput.
struct ConcurrentChurnResult {
    readers: usize,
    commits: usize,
    queries: usize,
    reader_p50_us: f64,
    reader_p90_us: f64,
    reader_p99_us: f64,
    reader_p999_us: f64,
    reader_max_us: f64,
    /// Whether a commit publish fell inside the max-latency query's
    /// window — the attribution for the worst outlier (scheduling
    /// against the writer vs. something intrinsic to the reader path).
    max_spans_publish: bool,
    /// Fraction of the queries above p99 whose window contained at
    /// least one commit publish.
    tail_publish_overlap_pct: f64,
    commits_per_sec: f64,
    writer_wall_ms: f64,
    final_epoch: u64,
}

/// Run `readers` reader threads against a [`BeliefServer`] while the
/// writer commits `commits` single-fact batches (alternating assert and
/// retract of a fresh `data` fact feeding the top-level rules, so every
/// commit re-propagates through each level's incremental engine).
///
/// Each reader is pinned at one of the declared clearance levels and
/// loops `refresh()` + one goal against its pinned snapshot, recording
/// the wall time of each iteration. Readers answer from copy-on-write
/// generation handles and never take the server mutex, so their latency
/// should be independent of the writer's commit work — `reader_p99_us`
/// is the number the snapshot-isolation claim rides on.
fn run_concurrent_churn(readers: usize, commits: usize) -> ConcurrentChurnResult {
    let spec = MultiLogSpec {
        depth: 3,
        facts: 600,
        rules: 8,
        use_cau: true,
        seed: 11,
    };
    let db = parse_database(&synthetic_multilog(&spec)).expect("synthetic multilog parses");
    let levels: Vec<String> = (0..spec.depth).map(|i| format!("l{i}")).collect();
    let top = levels.last().expect("depth >= 1").clone();
    let server = Arc::new(BeliefServer::new(db, EngineOptions::default()));

    // Pay every level's first materialization up front so the timed
    // region measures steady-state serving, not engine construction.
    for level in &levels {
        server.open_reader(level).expect("warm-up reader opens");
    }

    let stop = Arc::new(AtomicBool::new(false));
    // Query windows as (start_us, end_us) offsets from a shared clock, so
    // tail latencies can be attributed against commit-publish instants.
    let mut windows: Vec<Vec<(f64, f64)>> = Vec::new();
    let mut publishes: Vec<f64> = Vec::with_capacity(commits);
    let mut writer_wall_ms = 0.0;
    let clock = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for r in 0..readers {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            // Distinct clearance levels: reader r pins level r mod depth.
            let level = levels[r % levels.len()].clone();
            let goal = if level == top {
                // The top level sees the rule heads.
                "l2[derived(k0 : b -C-> V)] << cau".to_owned()
            } else {
                format!("{level}[data(k0 : a -C-> V)] << opt")
            };
            handles.push(scope.spawn(move || {
                let mut session = server.open_reader(&level).expect("reader opens");
                let mut walls: Vec<(f64, f64)> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let start = clock.elapsed().as_secs_f64() * 1e6;
                    session.refresh();
                    session.query_text(&goal).expect("reader goal evaluates");
                    walls.push((start, clock.elapsed().as_secs_f64() * 1e6));
                }
                walls
            }));
        }

        // Writer churn on the main thread: each commit asserts or
        // retracts one l1 `data` fact, which the top level's cautious
        // rules consult — so every commit does real re-derivation work
        // in all three engines before publishing.
        let writer = server.open_writer().expect("single writer opens");
        let start = Instant::now();
        let mut writer = writer;
        for c in 0..commits {
            let fact = format!("l1[data(k0 : a -l1-> churn{}) ].", c / 2);
            let clause = parse_clause(&fact).expect("churn fact parses").remove(0);
            let Head::M(m) = clause.head else {
                unreachable!("churn fact is an m-fact");
            };
            let update = if c % 2 == 0 {
                EdbUpdate::Assert(m)
            } else {
                EdbUpdate::Retract(m)
            };
            writer.commit(&[update]).expect("churn commit applies");
            publishes.push(clock.elapsed().as_secs_f64() * 1e6);
        }
        writer_wall_ms = start.elapsed().as_secs_f64() * 1e3;
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            windows.push(handle.join().expect("reader thread joins"));
        }
    });

    let mut all: Vec<(f64, f64, f64)> = windows
        .into_iter()
        .flatten()
        .map(|(s, e)| (e - s, s, e))
        .collect();
    all.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    assert!(!all.is_empty(), "readers completed at least one query");
    let pct = |p: f64| all[((all.len() - 1) as f64 * p) as usize].0;
    let spans_publish = |&(_, s, e): &(f64, f64, f64)| publishes.iter().any(|&p| s <= p && p <= e);
    let max = all[all.len() - 1];
    let tail = &all[((all.len() - 1) as f64 * 0.99) as usize..];
    let tail_hits = tail.iter().filter(|w| spans_publish(w)).count();
    ConcurrentChurnResult {
        readers,
        commits,
        queries: all.len(),
        reader_p50_us: pct(0.50),
        reader_p90_us: pct(0.90),
        reader_p99_us: pct(0.99),
        reader_p999_us: pct(0.999),
        reader_max_us: max.0,
        max_spans_publish: spans_publish(&max),
        tail_publish_overlap_pct: tail_hits as f64 / tail.len() as f64 * 100.0,
        commits_per_sec: commits as f64 / (writer_wall_ms / 1e3),
        writer_wall_ms,
        final_epoch: server.epoch(),
    }
}

/// Time the static-analysis pass (the `run`/`query` lint preflight) on
/// the tc_chain program and report its median wall time in
/// milliseconds. Compared against the evaluation wall time in `main`:
/// the preflight must stay well under 1 % of tc_chain.
fn lint_wall_ms(src: &str, repeat: usize) -> f64 {
    let program = parse_program(src).expect("workload parses");
    let mut walls: Vec<f64> = Vec::with_capacity(repeat);
    for _ in 0..repeat {
        let start = Instant::now();
        let lints = multilog_datalog::analyze(&program);
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(lints.is_empty(), "tc_chain must be lint-clean: {lints:?}");
    }
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

/// Time the lattice-flow abstract interpretation (the `analyze` /
/// `--deny flow` preflight) on the synthetic MultiLog database the
/// reduction workload uses, reporting its best wall time in
/// milliseconds. Compared against tc_chain evaluation in `main`: the
/// flow preflight must stay under 5 % of tc_chain. The minimum (not the
/// median) is the estimator because the gate bounds the *intrinsic*
/// preflight cost and each run is only a few hundred microseconds:
/// scheduler preemption and frequency ramps only ever inflate a sample,
/// and a median over so short a window flaps with them.
fn analyze_wall_ms(db: &multilog_core::MultiLogDb, repeat: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeat {
        let start = Instant::now();
        let report = multilog_core::analyze_db(db);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        assert!(
            report.lattice().is_some(),
            "synthetic workload has a lattice"
        );
    }
    best
}

/// Measure a low-clearance point belief query over a level-skewed
/// MultiLog database two ways: demand-driven as-is, and demand-driven
/// with `flow_prune` dropping the statically-invisible rules (the
/// top-level rule heads and the cautious machinery for every level
/// above the clearance) before the magic-sets rewrite. Answers must be
/// identical; returns both results, the plain/pruned wall ratio, and
/// the number of rules the flow bounds removed from the demand cone.
fn run_demand_pruned(repeat: usize) -> (WorkloadResult, WorkloadResult, f64, usize) {
    // The reduction spec, level-skewed by construction: every `derived`
    // rule lives at the top level l3, so at clearance l0 the flow
    // bounds prune all of them plus the l1/l2/l3 belief machinery.
    let spec = MultiLogSpec {
        depth: 4,
        facts: 1500,
        rules: 12,
        use_cau: true,
        seed: 7,
    };
    let db = parse_database(&synthetic_multilog(&spec)).expect("synthetic multilog parses");
    let goal = multilog_core::parse_goal("l0[data(k0 : a -C-> V)]").expect("goal parses");
    let pruned_options = EngineOptions {
        flow_prune: true,
        ..EngineOptions::default()
    };
    // Engines are constructed outside the timed region on both sides:
    // the deferred constructor does no evaluation, and the flow
    // analysis is a construction-time cost already covered by
    // `analyze_preflight_ms`.
    let plain_engine = ReducedEngine::with_options_deferred(&db, "l0", EngineOptions::default())
        .expect("synthetic db reduces");
    let pruned_engine = ReducedEngine::with_options_deferred(&db, "l0", pruned_options)
        .expect("synthetic db reduces");
    let mut best_plain: Option<WorkloadResult> = None;
    let mut best_pruned: Option<WorkloadResult> = None;
    let mut pruned_rules = 0usize;
    for _ in 0..repeat {
        for (slot, engine) in [(0, &plain_engine), (1, &pruned_engine)] {
            let start = Instant::now();
            let (answers, stats) = engine
                .solve_demand_with_stats(&goal)
                .expect("goal evaluates");
            let wall = start.elapsed();
            assert!(!answers.is_empty(), "k0 data exists at l0");
            let demand = stats.demand.expect("demand runs record stats");
            let best = if slot == 0 {
                assert_eq!(demand.pruned_rules, 0, "no pruning without the option");
                &mut best_plain
            } else {
                assert!(demand.pruned_rules > 0, "skewed workload must prune");
                pruned_rules = demand.pruned_rules;
                &mut best_pruned
            };
            let facts = demand.facts_materialized;
            let result = WorkloadResult {
                name: if slot == 0 {
                    "demand_plain"
                } else {
                    "demand_pruned"
                },
                facts,
                iterations: 1,
                wall_ms: wall.as_secs_f64() * 1e3,
                facts_per_sec: facts as f64 / wall.as_secs_f64(),
            };
            if best.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
                *best = Some(result);
            }
        }
    }
    // Equivalence: the pruned demand cone answers exactly like the
    // unpruned one (checked once outside the timers).
    assert_eq!(
        plain_engine.solve_demand(&goal).expect("goal evaluates"),
        pruned_engine.solve_demand(&goal).expect("goal evaluates"),
        "flow pruning must not change answers"
    );
    let plain = best_plain.expect("repeat >= 1");
    let pruned = best_pruned.expect("repeat >= 1");
    let speedup = plain.wall_ms / pruned.wall_ms;
    (plain, pruned, speedup, pruned_rules)
}

/// Run the Figure-12 reduction workload `repeat` times (best run).
fn run_reduction(repeat: usize) -> WorkloadResult {
    let spec = MultiLogSpec {
        depth: 4,
        facts: 1500,
        rules: 12,
        use_cau: true,
        seed: 7,
    };
    let src = synthetic_multilog(&spec);
    let db = parse_database(&src).expect("synthetic multilog parses");
    let top = format!("l{}", spec.depth - 1);
    let mut best: Option<WorkloadResult> = None;
    for _ in 0..repeat {
        let start = Instant::now();
        let red = ReducedEngine::new(&db, &top).expect("reduction succeeds");
        let wall = start.elapsed();
        let facts = red.database().fact_count();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let result = WorkloadResult {
            name: "reduction",
            facts,
            iterations: 0,
            wall_ms,
            facts_per_sec: facts as f64 / wall.as_secs_f64(),
        };
        if best.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
            best = Some(result);
        }
    }
    best.expect("repeat >= 1")
}

/// Extract `"field": <number>` for the workload named `name` from a
/// previously written report (this binary's own output format).
fn baseline_field(baseline: &str, name: &str, field: &str) -> Option<f64> {
    let obj = baseline.split("{").find(|chunk| {
        chunk.split_once("\"name\"").is_some_and(|(_, rest)| {
            rest.trim_start()
                .trim_start_matches(':')
                .trim_start()
                .starts_with(&format!("\"{name}\""))
        })
    })?;
    let (_, rest) = obj.split_once(&format!("\"{field}\""))?;
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Peak resident set size of this process in megabytes, read from
/// `/proc/self/status` (`VmHWM`). `None` on non-Linux hosts.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let mut out_path = String::from("BENCH_pr10.json");
    let mut baseline_path: Option<String> = None;
    let mut repeat = 3usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => out_path = argv.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(argv.next().expect("--baseline needs a path")),
            "--repeat" => {
                repeat = argv
                    .next()
                    .expect("--repeat needs a count")
                    .parse()
                    .expect("--repeat takes an integer")
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let baseline = baseline_path.map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });

    // tc_chain_guarded re-runs tc_chain with every guard armed (deadline,
    // fact budget, cancellation token) to measure the cost of the checks
    // that now sit inside the join loop.
    let (tc_chain, tc_chain_guarded, guard_overhead_pct) =
        run_guard_overhead(&tc_chain_src(256), repeat.max(40));
    // Lint preflight cost relative to evaluation (best run is the
    // smallest denominator, so the percentage is an upper bound).
    let lint_ms = lint_wall_ms(&tc_chain_src(256), repeat.max(9));
    let lint_overhead_pct = lint_ms / tc_chain.wall_ms * 100.0;
    // update_churn contrasts incremental DRed commits against full
    // recomputation on a 20-commit single-fact delta stream.
    let (churn_inc, churn_rec, churn_speedup) = run_update_churn(repeat);
    // point_query contrasts demand-driven (magic-sets) evaluation of a
    // bound goal against answering it from the full fixpoint.
    let (point_full, point_magic, point_speedup) = run_point_query(repeat);
    // Flow-analysis preflight cost relative to evaluation, and the
    // flow-pruned demand cone on a level-skewed point belief query.
    let analyze_db = parse_database(&synthetic_multilog(&MultiLogSpec {
        depth: 4,
        facts: 1500,
        rules: 12,
        use_cau: true,
        seed: 7,
    }))
    .expect("synthetic multilog parses");
    let analyze_ms = analyze_wall_ms(&analyze_db, repeat.max(25));
    let analyze_overhead_pct = analyze_ms / tc_chain.wall_ms * 100.0;
    let (demand_plain, demand_pruned, demand_pruned_speedup, demand_pruned_rules) =
        run_demand_pruned(repeat);
    // social_reach contrasts the native @bfs operator against
    // rule-at-a-time transitive closure on a power-law social graph.
    let (social_op, social_rules, social_speedup) = run_social_reach(repeat);
    // level_dashboard answers per-clearance count aggregates end-to-end
    // through the reduction.
    let (level_dashboard, dashboard_rows) = run_level_dashboard(repeat);
    // concurrent_churn drives the multi-session belief server: reader
    // threads refresh + query pinned snapshots while the writer commits.
    let churn = run_concurrent_churn(4, 60);
    let point_full_facts = point_full.facts;
    let point_magic_facts = point_magic.facts;
    // tc_chain_xl (~5M derived paths) runs last and only once: the
    // VmHWM read right after it is then this workload's peak, since
    // everything before it stays well under 200 MB resident.
    let tc_chain_xl = run_datalog("tc_chain_xl", &tc_chain_src(3150), 1, |e| e);
    let xl_peak_rss_mb = peak_rss_mb();
    let results = [
        tc_chain,
        tc_chain_guarded,
        run_datalog("tc_grid", &tc_grid_src(16), repeat, |e| e),
        run_reduction(repeat),
        churn_inc,
        churn_rec,
        point_full,
        point_magic,
        demand_plain,
        demand_pruned,
        social_op,
        social_rules,
        level_dashboard,
        tc_chain_xl,
    ];

    let mut json = String::from("{\n  \"benchmark\": \"perf_smoke\",\n");
    json.push_str(&format!(
        "  \"guard_overhead_pct\": {guard_overhead_pct:.2},\n"
    ));
    json.push_str(&format!(
        "  \"update_churn_speedup\": {churn_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"point_query_speedup\": {point_speedup:.2},\n  \"point_query_full_facts\": {point_full_facts},\n  \"point_query_magic_facts\": {point_magic_facts},\n"
    ));
    json.push_str(&format!(
        "  \"lint_preflight_ms\": {lint_ms:.4},\n  \"lint_overhead_pct\": {lint_overhead_pct:.3},\n"
    ));
    json.push_str(&format!(
        "  \"analyze_preflight_ms\": {analyze_ms:.4},\n  \"analyze_overhead_pct\": {analyze_overhead_pct:.3},\n"
    ));
    json.push_str(&format!(
        "  \"demand_pruned_speedup\": {demand_pruned_speedup:.2},\n  \"demand_pruned_rules\": {demand_pruned_rules},\n"
    ));
    json.push_str(&format!(
        "  \"social_reach_speedup\": {social_speedup:.2},\n  \"level_dashboard_rows\": {dashboard_rows},\n"
    ));
    json.push_str("  \"concurrent_churn\": {\n");
    json.push_str(&format!("    \"readers\": {},\n", churn.readers));
    json.push_str(&format!("    \"commits\": {},\n", churn.commits));
    json.push_str(&format!("    \"final_epoch\": {},\n", churn.final_epoch));
    json.push_str(&format!("    \"queries\": {},\n", churn.queries));
    json.push_str(&format!(
        "    \"reader_p50_us\": {:.1},\n",
        churn.reader_p50_us
    ));
    json.push_str(&format!(
        "    \"reader_p90_us\": {:.1},\n",
        churn.reader_p90_us
    ));
    json.push_str(&format!(
        "    \"reader_p99_us\": {:.1},\n",
        churn.reader_p99_us
    ));
    json.push_str(&format!(
        "    \"reader_p999_us\": {:.1},\n",
        churn.reader_p999_us
    ));
    json.push_str(&format!(
        "    \"reader_max_us\": {:.1},\n",
        churn.reader_max_us
    ));
    json.push_str(&format!(
        "    \"max_spans_publish\": {},\n",
        churn.max_spans_publish
    ));
    json.push_str(&format!(
        "    \"tail_publish_overlap_pct\": {:.1},\n",
        churn.tail_publish_overlap_pct
    ));
    json.push_str(&format!(
        "    \"commits_per_sec\": {:.1},\n",
        churn.commits_per_sec
    ));
    json.push_str(&format!(
        "    \"writer_wall_ms\": {:.3}\n",
        churn.writer_wall_ms
    ));
    json.push_str("  },\n");
    if let Some(mb) = xl_peak_rss_mb {
        json.push_str(&format!("  \"tc_chain_xl_peak_rss_mb\": {mb:.1},\n"));
    }
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        json.push_str(&format!("      \"facts\": {},\n", r.facts));
        json.push_str(&format!("      \"iterations\": {},\n", r.iterations));
        json.push_str(&format!("      \"wall_ms\": {:.3},\n", r.wall_ms));
        json.push_str(&format!("      \"facts_per_sec\": {:.1}", r.facts_per_sec));
        if let Some(base) = baseline.as_deref() {
            if let Some(b) = baseline_field(base, r.name, "facts_per_sec") {
                json.push_str(&format!(",\n      \"baseline_facts_per_sec\": {b:.1}"));
                json.push_str(&format!(",\n      \"speedup\": {:.2}", r.facts_per_sec / b));
            }
        }
        json.push_str("\n    }");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write report");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
