//! Regenerate every table and figure of the paper as printable text.
//!
//! Each `figN()` returns the reproduced artifact; `all()` concatenates
//! them in paper order. The workspace test `tests/figures.rs` asserts the
//! row-level content against the paper.

use multilog_core::examples as ml_examples;
use multilog_core::proof::prove_text;
use multilog_core::reduce::{paper_axioms, ReducedEngine};
use multilog_core::{parse_database, MultiLogEngine};
use multilog_mlsrel::belief::{believe, BeliefMode};
use multilog_mlsrel::jv::JvRelation;
use multilog_mlsrel::{mission, view, MlsRelation};

fn banner(title: &str, body: &str) -> String {
    format!("=== {title} ===\n{body}\n")
}

fn render_tids(rel: &MlsRelation) -> String {
    rel.render()
}

/// Figure 1: the stored `Mission` relation.
pub fn fig1() -> String {
    let (_, rel) = mission::mission_relation();
    banner(
        "Figure 1: MLS relation Mission(Starship, C1, Objective, C2, Destination, C3, TC)",
        &render_tids(&rel),
    )
}

/// Figure 2: the U-level view (Jajodia–Sandhu σ + subsumption).
pub fn fig2() -> String {
    let (lat, rel) = mission::mission_relation();
    let v = view::view_at(&rel, lat.label("U").expect("U exists"));
    banner("Figure 2: U level view of Mission", &render_tids(&v))
}

/// Figure 3: the C-level view, surprise stories included.
pub fn fig3() -> String {
    let (lat, rel) = mission::mission_relation();
    let v = view::view_at(&rel, lat.label("C").expect("C exists"));
    banner("Figure 3: C level view of Mission", &render_tids(&v))
}

/// Figure 4: the Jukic–Vrbsky belief-label view.
pub fn fig4() -> String {
    let jv = jv_relation();
    banner("Figure 4: Jukic and Vrbsky's view of Mission", &jv.render())
}

/// Figure 5: the J-V interpretation of every tuple at U/C/S.
pub fn fig5() -> String {
    let jv = jv_relation();
    banner(
        "Figure 5: Interpretation of tuples at different levels (U | C | S)",
        &jv.render_interpretations(&["U", "C", "S"]),
    )
}

fn jv_relation() -> JvRelation {
    let (_, scheme) = mission::mission_scheme();
    JvRelation::from_history(scheme, &mission::mission_history())
        .expect("mission history is well-formed")
}

/// Figure 6: the firm view at C.
pub fn fig6() -> String {
    belief_figure(
        "Figure 6: Conservative or firm view of Mission at level C",
        BeliefMode::Firm,
    )
}

/// Figure 7: the optimistic view at C (β omits the σ-generated t4/t5).
pub fn fig7() -> String {
    belief_figure(
        "Figure 7: An optimistic view of Mission at level C",
        BeliefMode::Optimistic,
    )
}

/// Figure 8: the cautious view at C (β omits the σ-generated t5).
pub fn fig8() -> String {
    belief_figure(
        "Figure 8: Cautious view of Mission at level C",
        BeliefMode::Cautious,
    )
}

fn belief_figure(title: &str, mode: BeliefMode) -> String {
    let (lat, rel) = mission::mission_relation();
    let v = believe(&rel, lat.label("C").expect("C exists"), mode)
        .expect("belief over Mission succeeds");
    banner(title, &render_tids(&v))
}

/// Figure 9: the proof system, demonstrated rule-by-rule on database D₁.
pub fn fig9() -> String {
    let db = ml_examples::d1();
    let e = MultiLogEngine::new(&db, "s").expect("D1 evaluates at s");
    let mut body = String::new();
    for (goal, what) in [
        ("u leq s", "REFLEXIVITY/ORDER/TRANSITIVITY"),
        ("q(j)", "DEDUCTION-G"),
        ("u[p(k : a -u-> v)]", "DEDUCTION-G'"),
        ("s[p(k : a -u-> v)] << fir", "BELIEF + DEDUCTION-B"),
        ("s[p(k : a -u-> v)] << opt", "BELIEF + DESCEND-O"),
        ("c[p(k : a -c-> t)] << cau", "BELIEF + DESCEND-C*"),
    ] {
        let tree = prove_text(&e, goal)
            .expect("proof search succeeds")
            .expect("goal is provable");
        body.push_str(&format!("--- {what}: {goal}\n{}", tree.render()));
    }
    banner(
        "Figure 9: MultiLog proof system (rules exercised on D1)",
        &body,
    )
}

/// Figure 10: database D₁.
pub fn fig10() -> String {
    banner("Figure 10: Database D1", ml_examples::D1_SOURCE.trim())
}

/// Figure 11: the proof tree for `⟨D1, c⟩ ⊢ c[p(k : a -u-> v)] << opt`.
pub fn fig11() -> String {
    let db = ml_examples::d1();
    let e = MultiLogEngine::new(&db, "c").expect("D1 evaluates at c");
    let tree = prove_text(&e, "c[p(k : a -u-> v)] << opt")
        .expect("proof search succeeds")
        .expect("the Figure 11 goal is provable");
    banner(
        "Figure 11: A proof tree for ⟨D1, c⟩ ⊢ c[p(k : a -u-> v)] << opt",
        &tree.render(),
    )
}

/// Figure 12: the inference engine — the paper's axioms a₁–a₉ and the
/// executable (safe, specialized) program our reduction actually runs.
pub fn fig12() -> String {
    let db = ml_examples::d1();
    let red = ReducedEngine::new(&db, "s").expect("D1 reduces at s");
    let body = format!(
        "--- as printed in the paper:\n{}\n\n--- executable specialization (generated for D1 at s):\n{}",
        paper_axioms(),
        red.program_text()
    );
    banner("Figure 12: MultiLog Inference Engine", &body)
}

/// Figure 13: the FILTER / FILTER-NULL / USER-BELIEF extensions,
/// demonstrated on the §7 Phantom example.
pub fn fig13() -> String {
    let src = r#"
        level(u). level(c). level(s).
        order(u, c). order(c, s).
        s[mission(phantom : starship -u-> phantom)].
        s[mission(phantom : objective -s-> spying)].
        s[mission(phantom : destination -u-> omega)].
    "#;
    let db = parse_database(src).expect("phantom example parses");
    let plain = MultiLogEngine::new(&db, "c").expect("evaluates");
    let sigma = multilog_core::filter::engine_with_sigma(&db, "c").expect("evaluates");
    let goal = "c[mission(phantom : starship -u-> phantom; objective -c-> null; \
                destination -u-> omega)]";
    let without = plain.solve_text(goal).expect("query runs").len();
    let with = sigma.solve_text(goal).expect("query runs").len();
    let body = format!(
        "goal: {goal}\n\
         without FILTER/FILTER-NULL (MultiLog default): {without} answers\n\
         with    FILTER/FILTER-NULL (Figure 13 rules):  {with} answers\n\
         (the surprise story surfaces only when σ is re-enabled)"
    );
    banner(
        "Figure 13: FILTER, FILTER-NULL and USER-BELIEF extensions",
        &body,
    )
}

/// The §3.2 extended-SQL query.
pub fn section_3_2_query() -> String {
    let (lat, rel) = mission::mission_relation();
    let s = lat.label("S").expect("S exists");
    let result = multilog_mlsrel::query::believed_in_all_modes(
        &rel,
        s,
        &["Starship"],
        &[
            ("Destination", multilog_mlsrel::Value::str("Mars")),
            ("Objective", multilog_mlsrel::Value::str("Spying")),
        ],
    )
    .expect("query runs");
    let rows: Vec<String> = result
        .iter()
        .map(|r| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" | ")
        })
        .collect();
    banner(
        "§3.2: starships spying on Mars without any doubt (user context S)",
        &rows.join("\n"),
    )
}

/// Every figure, in paper order.
pub fn all() -> String {
    [
        fig1(),
        fig2(),
        fig3(),
        fig4(),
        fig5(),
        fig6(),
        fig7(),
        fig8(),
        section_3_2_query(),
        fig9(),
        fig10(),
        fig11(),
        fig12(),
        fig13(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders() {
        let text = all();
        for needle in [
            "Figure 1:",
            "Figure 2:",
            "Figure 3:",
            "Figure 4:",
            "Figure 5:",
            "Figure 6:",
            "Figure 7:",
            "Figure 8:",
            "Figure 9:",
            "Figure 10:",
            "Figure 11:",
            "Figure 12:",
            "Figure 13:",
            "§3.2",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fig11_contains_the_descent() {
        let f = fig11();
        assert!(f.contains("DESCEND-O"), "{f}");
        assert!(f.contains("u ⪯ c"), "{f}");
    }

    #[test]
    fn fig13_shows_the_contrast() {
        let f = fig13();
        assert!(f.contains("default): 0 answers"), "{f}");
        assert!(f.contains("rules):  1 answers"), "{f}");
    }

    #[test]
    fn section32_answer_is_voyager() {
        assert!(section_3_2_query().contains("Voyager"));
    }
}
