//! Benchmark harness and figure regeneration for the MultiLog
//! reproduction.
//!
//! * [`figures`] regenerates every table and figure of the paper
//!   (Figures 1–13) as printable text — used by the `figures` binary,
//!   the workspace integration tests, and EXPERIMENTS.md.
//! * [`workload`] generates synthetic MLS relations and MultiLog
//!   databases with parameterised size, lattice shape, and
//!   polyinstantiation rate — the paper ships no performance evaluation,
//!   so the Criterion benches sweep these workloads instead to quantify
//!   the design trade-offs the paper discusses qualitatively (§6–7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod workload;
