//! Synthetic workload generators for the benchmark suite.
//!
//! The paper evaluates MultiLog only on worked examples, so the benches
//! need parameterised workloads: MLS relations with controllable size,
//! lattice shape and polyinstantiation rate, and MultiLog databases with
//! controllable fact counts and rule depth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use multilog_lattice::{standard, SecurityLattice};
use multilog_mlsrel::{MlsRelation, MlsScheme, MlsTuple, Value};

/// Parameters for a synthetic MLS relation.
#[derive(Clone, Debug)]
pub struct RelationSpec {
    /// Number of distinct entities (apparent keys).
    pub entities: usize,
    /// Number of non-key data attributes.
    pub attrs: usize,
    /// Lattice depth (total order `l0 < l1 < …`).
    pub depth: usize,
    /// Probability that an entity is polyinstantiated at a higher level.
    pub poly_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RelationSpec {
    fn default() -> Self {
        RelationSpec {
            entities: 1000,
            attrs: 3,
            depth: 4,
            poly_rate: 0.2,
            seed: 42,
        }
    }
}

/// Generate a synthetic multilevel relation.
///
/// Every entity gets a base tuple at a random level, uniformly classified;
/// with probability `poly_rate` it additionally gets a polyinstantiated
/// variant at a strictly higher level (when one exists) whose non-key
/// attributes are reclassified at that level — the cover-story pattern of
/// the `Mission` example.
pub fn synthetic_relation(spec: &RelationSpec) -> (Arc<SecurityLattice>, MlsRelation) {
    let lat = Arc::new(standard::chain(spec.depth));
    let attr_names: Vec<String> = (0..=spec.attrs).map(|i| format!("a{i}")).collect();
    let attr_refs: Vec<&str> = attr_names.iter().map(String::as_str).collect();
    let scheme = MlsScheme::unconstrained("synthetic", lat.clone(), &attr_refs);
    let mut rel = MlsRelation::new(scheme);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let labels: Vec<_> = lat.labels().collect();

    for e in 0..spec.entities {
        let base_idx = rng.random_range(0..labels.len());
        let base = labels[base_idx];
        let mut values = vec![Value::str(format!("k{e}"))];
        for a in 0..spec.attrs {
            values.push(Value::str(format!("v{e}_{a}")));
        }
        let tuple = MlsTuple::new(values.clone(), vec![base; spec.attrs + 1], base);
        rel.insert(tuple)
            .expect("synthetic tuples satisfy integrity");

        if base_idx + 1 < labels.len() && rng.random_bool(spec.poly_rate) {
            let hi_idx = rng.random_range(base_idx + 1..labels.len());
            let hi = labels[hi_idx];
            let mut hi_values = vec![Value::str(format!("k{e}"))];
            for a in 0..spec.attrs {
                hi_values.push(Value::str(format!("w{e}_{a}")));
            }
            let mut classes = vec![base]; // key class kept low (cover story)
            classes.extend(std::iter::repeat_n(hi, spec.attrs));
            rel.insert(MlsTuple::new(hi_values, classes, hi))
                .expect("polyinstantiated variant satisfies integrity");
        }
    }
    (lat, rel)
}

/// Parameters for a synthetic MultiLog database.
#[derive(Clone, Debug)]
pub struct MultiLogSpec {
    /// Lattice depth (total order).
    pub depth: usize,
    /// Number of base m-facts.
    pub facts: usize,
    /// Number of derived-fact rules consuming `<< opt` beliefs.
    pub rules: usize,
    /// Whether rules consult `<< cau` (forces the level-split reduction).
    pub use_cau: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiLogSpec {
    fn default() -> Self {
        MultiLogSpec {
            depth: 3,
            facts: 200,
            rules: 10,
            use_cau: false,
            seed: 7,
        }
    }
}

/// Generate MultiLog source text: `depth` chained levels, `facts` base
/// m-facts spread over keys and the lower levels, and `rules` clauses at
/// the top level deriving new facts from beliefs about lower data.
pub fn synthetic_multilog(spec: &MultiLogSpec) -> String {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = String::new();
    for i in 0..spec.depth {
        out.push_str(&format!("level(l{i}).\n"));
    }
    for i in 1..spec.depth {
        out.push_str(&format!("order(l{}, l{i}).\n", i - 1));
    }
    let top = spec.depth - 1;
    for f in 0..spec.facts {
        // Base facts live strictly below the top so the top-level rules
        // can consult cautious beliefs about them.
        let level = rng.random_range(0..top.max(1));
        let key = f % (spec.facts / 4 + 1);
        out.push_str(&format!("l{level}[data(k{key} : a -l{level}-> v{f})].\n"));
    }
    let mode = if spec.use_cau { "cau" } else { "opt" };
    let below_top = top.saturating_sub(1);
    for r in 0..spec.rules {
        let key = r % (spec.facts / 4 + 1);
        out.push_str(&format!(
            "l{top}[derived(k{key} : b -l{top}-> d{r})] <- \
             l{below_top}[data(k{key} : a -C-> V)] << {mode}.\n"
        ));
    }
    out
}

/// Parameters for a synthetic power-law graph.
#[derive(Clone, Debug)]
pub struct GraphSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges drawn (duplicates are removed, so the final
    /// count is slightly lower).
    pub edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphSpec {
    fn default() -> Self {
        GraphSpec {
            nodes: 800,
            edges: 6400,
            seed: 17,
        }
    }
}

/// Generate a power-law edge list by preferential attachment: each new
/// edge's target copies an endpoint of a random earlier edge with
/// probability 3/4, so a few hubs accumulate most of the degree — the
/// social-graph shape the `@bfs` reachability workload is about.
pub fn power_law_edges(spec: &GraphSpec) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(spec.edges);
    for _ in 0..spec.edges {
        let src = rng.random_range(0..spec.nodes);
        let dst = if edges.is_empty() || rng.random_bool(0.25) {
            rng.random_range(0..spec.nodes)
        } else {
            let (a, b) = edges[rng.random_range(0..edges.len())];
            if rng.random_bool(0.5) {
                a
            } else {
                b
            }
        };
        edges.push((src, dst));
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Parameters for a synthetic per-clearance dashboard database.
#[derive(Clone, Debug)]
pub struct DashboardSpec {
    /// Lattice depth (total order).
    pub depth: usize,
    /// Number of distinct apparent keys.
    pub keys: usize,
    /// Number of m-fact cells drawn over the keys and levels.
    pub cells: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DashboardSpec {
    fn default() -> Self {
        DashboardSpec {
            depth: 4,
            keys: 300,
            cells: 3000,
            seed: 23,
        }
    }
}

/// Generate a MultiLog database whose answer is an aggregate dashboard:
/// random `emp` salary cells spread over the levels (polyinstantiation
/// is common by construction — one key can carry differently classified
/// values at several levels), plus one aggregate rule per dashboard
/// column counting each clearance level's distinct salary beliefs.
pub fn synthetic_dashboard(spec: &DashboardSpec) -> String {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = String::new();
    for i in 0..spec.depth {
        out.push_str(&format!("level(l{i}).\n"));
    }
    for i in 1..spec.depth {
        out.push_str(&format!("order(l{}, l{i}).\n", i - 1));
    }
    // One seed cell per level so every dashboard row exists, then the
    // random bulk.
    for lvl in 0..spec.depth {
        out.push_str(&format!("l{lvl}[emp(k0 : sal -l{lvl}-> v{lvl})].\n"));
    }
    for c in 0..spec.cells {
        let lvl = rng.random_range(0..spec.depth);
        let cls = rng.random_range(0..lvl + 1);
        let key = rng.random_range(0..spec.keys.max(1));
        out.push_str(&format!("l{lvl}[emp(k{key} : sal -l{cls}-> v{c})].\n"));
    }
    out.push_str("total(H, count(K)) <- H[emp(K : sal -C-> V)] << opt, level(H).\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use multilog_core::{parse_database, MultiLogEngine};

    #[test]
    fn synthetic_relation_respects_spec() {
        let spec = RelationSpec {
            entities: 50,
            attrs: 2,
            depth: 3,
            poly_rate: 1.0,
            seed: 1,
        };
        let (lat, rel) = synthetic_relation(&spec);
        assert_eq!(lat.len(), 3);
        assert!(rel.len() >= 50);
        rel.check_integrity().unwrap();
    }

    #[test]
    fn synthetic_relation_deterministic() {
        let spec = RelationSpec::default();
        let (_, a) = synthetic_relation(&spec);
        let (_, b) = synthetic_relation(&spec);
        assert!(a.same_tuples(&b));
    }

    #[test]
    fn zero_poly_rate_yields_one_tuple_per_entity() {
        let spec = RelationSpec {
            entities: 30,
            poly_rate: 0.0,
            ..RelationSpec::default()
        };
        let (_, rel) = synthetic_relation(&spec);
        assert_eq!(rel.len(), 30);
    }

    #[test]
    fn synthetic_multilog_parses_and_runs() {
        let spec = MultiLogSpec {
            facts: 40,
            rules: 4,
            ..MultiLogSpec::default()
        };
        let src = synthetic_multilog(&spec);
        let db = parse_database(&src).unwrap();
        let top = format!("l{}", spec.depth - 1);
        let e = MultiLogEngine::new(&db, &top).unwrap();
        assert!(e.mfacts().len() >= 40);
    }

    #[test]
    fn synthetic_multilog_with_cau_is_stratified() {
        let spec = MultiLogSpec {
            facts: 30,
            rules: 3,
            use_cau: true,
            ..MultiLogSpec::default()
        };
        let src = synthetic_multilog(&spec);
        let db = parse_database(&src).unwrap();
        let e = MultiLogEngine::new(&db, "l2").unwrap();
        assert!(!e.mfacts().is_empty());
        // And it reduces.
        let red = multilog_core::reduce::ReducedEngine::new(&db, "l2").unwrap();
        assert!(red.database().relation("rel").is_some());
    }

    #[test]
    fn power_law_edges_deterministic_and_skewed() {
        let spec = GraphSpec::default();
        let a = power_law_edges(&spec);
        assert_eq!(a, power_law_edges(&spec));
        assert!(a.len() > spec.edges / 2, "dedup keeps most edges");
        // Power-law shape: the busiest node carries far more than the
        // mean degree.
        let mut indeg = vec![0usize; spec.nodes];
        for &(_, d) in &a {
            indeg[d] += 1;
        }
        let max = indeg.iter().max().unwrap();
        assert!(*max * spec.nodes > 4 * a.len(), "hubs dominate: {max}");
    }

    #[test]
    fn synthetic_dashboard_reduces_to_one_row_per_level() {
        let spec = DashboardSpec {
            depth: 3,
            keys: 20,
            cells: 100,
            seed: 5,
        };
        let db = parse_database(&synthetic_dashboard(&spec)).unwrap();
        let red = multilog_core::reduce::ReducedEngine::new(&db, "l2").unwrap();
        let rows = red.solve_text("total(H, N)").unwrap();
        assert_eq!(rows.len(), spec.depth, "one dashboard row per level");
    }
}
