//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the tiny subset of the rand 0.9 API it actually uses, backed by
//! a SplitMix64 generator. It is **not** cryptographically secure and is
//! not stream-compatible with upstream `rand`; it only promises good
//! statistical behaviour and determinism for a given seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64).
    ///
    /// Named `StdRng` for drop-in compatibility with `rand::rngs::StdRng`
    /// call sites; the output stream differs from upstream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (public domain, Sebastiano Vigna).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Types that `random_range` can sample uniformly.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`; `high > low`.
    fn sample_half_open(rng: &mut StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in random_range");
                let span = (high as i128 - low as i128) as u128;
                // Widening-multiply rejection-free mapping is overkill
                // here; modulo bias is negligible for the span sizes the
                // workloads use (far below 2^32).
                let r = rng.next_u64() as u128 % span;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The sampling surface (subset of `rand::Rng`).
pub trait Rng {
    /// Uniform sample from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T;
    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool;
    /// A uniformly random `u64`.
    fn random_u64(&mut self) -> u64;
}

impl Rng for StdRng {
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_half_open(self, range.start, range.end)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    fn random_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_u64(), b.random_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn bool_probabilities_roughly_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
