//! Error type for lattice construction and queries.

use std::fmt;

/// Errors raised while building or querying a security lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// The same label name was declared twice.
    DuplicateLabel(String),
    /// An `order` edge referenced a label that was never declared.
    UnknownLabel(String),
    /// The declared order edges form a cycle, so the relation is not a
    /// partial order (antisymmetry fails).
    CycleDetected(String),
    /// A reflexive or otherwise degenerate edge (`order(l, l)`).
    SelfEdge(String),
    /// The poset is not a lattice: the given pair has no unique least upper
    /// bound or greatest lower bound.
    NotALattice {
        /// First label of the offending pair.
        left: String,
        /// Second label of the offending pair.
        right: String,
    },
    /// The lattice has no labels at all.
    Empty,
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::DuplicateLabel(name) => {
                write!(f, "security label `{name}` declared more than once")
            }
            LatticeError::UnknownLabel(name) => {
                write!(f, "security label `{name}` used before declaration")
            }
            LatticeError::CycleDetected(name) => write!(
                f,
                "order edges form a cycle through `{name}`; not a partial order"
            ),
            LatticeError::SelfEdge(name) => {
                write!(f, "self-loop `order({name}, {name})` is not allowed")
            }
            LatticeError::NotALattice { left, right } => write!(
                f,
                "poset is not a lattice: `{left}` and `{right}` lack a unique bound"
            ),
            LatticeError::Empty => write!(f, "lattice must contain at least one label"),
        }
    }
}

impl std::error::Error for LatticeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LatticeError::CycleDetected("S".into());
        assert!(e.to_string().contains("cycle"));
        let e = LatticeError::NotALattice {
            left: "A".into(),
            right: "B".into(),
        };
        assert!(e.to_string().contains("lattice"));
    }
}
