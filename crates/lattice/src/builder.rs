//! Incremental construction of [`SecurityLattice`]s.

use std::collections::HashMap;

use crate::lattice::SecurityLattice;
use crate::{Label, LatticeError, Result};

/// Builder that accumulates `level` declarations and `order` (Hasse) edges
/// and validates them into a [`SecurityLattice`].
///
/// Mirrors the `Λ` component of a MultiLog database: `level(l)` facts
/// declare labels, `order(l, h)` facts declare that `l` is *immediately*
/// below `h` (a cover edge). The transitive-reflexive closure of the edges
/// is the dominance relation `⪯`.
///
/// # Example
///
/// ```
/// use multilog_lattice::LatticeBuilder;
///
/// let lat = LatticeBuilder::new()
///     .level("U")
///     .level("C")
///     .level("S")
///     .order("U", "C")
///     .order("C", "S")
///     .build()
///     .unwrap();
/// assert!(lat.dominates_by_name("S", "U").unwrap());
/// ```
#[derive(Debug, Default, Clone)]
pub struct LatticeBuilder {
    names: Vec<String>,
    index: HashMap<String, u32>,
    edges: Vec<(String, String)>,
    duplicate: Option<String>,
}

impl LatticeBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a security label (a `level(name)` fact).
    pub fn level(mut self, name: impl Into<String>) -> Self {
        self.add_level(name);
        self
    }

    /// Declare a security label, by mutable reference.
    pub fn add_level(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if self.index.contains_key(&name) {
            self.duplicate.get_or_insert(name);
        } else {
            self.index.insert(name.clone(), self.names.len() as u32);
            self.names.push(name);
        }
        self
    }

    /// Declare that `lo` is immediately below `hi` (an `order(lo, hi)` fact).
    pub fn order(mut self, lo: impl Into<String>, hi: impl Into<String>) -> Self {
        self.add_order(lo, hi);
        self
    }

    /// Declare an order edge, by mutable reference.
    pub fn add_order(&mut self, lo: impl Into<String>, hi: impl Into<String>) -> &mut Self {
        self.edges.push((lo.into(), hi.into()));
        self
    }

    /// Whether a label of this name has been declared.
    pub fn has_level(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Validate and build the lattice.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::Empty`] if no labels were declared.
    /// * [`LatticeError::DuplicateLabel`] if a label was declared twice.
    /// * [`LatticeError::UnknownLabel`] if an edge references an undeclared
    ///   label.
    /// * [`LatticeError::SelfEdge`] for `order(l, l)`.
    /// * [`LatticeError::CycleDetected`] if the edges are cyclic.
    pub fn build(self) -> Result<SecurityLattice> {
        if let Some(dup) = self.duplicate {
            return Err(LatticeError::DuplicateLabel(dup));
        }
        if self.names.is_empty() {
            return Err(LatticeError::Empty);
        }
        let mut edges = Vec::with_capacity(self.edges.len());
        for (lo, hi) in &self.edges {
            if lo == hi {
                return Err(LatticeError::SelfEdge(lo.clone()));
            }
            let lo = *self
                .index
                .get(lo)
                .ok_or_else(|| LatticeError::UnknownLabel(lo.clone()))?;
            let hi = *self
                .index
                .get(hi)
                .ok_or_else(|| LatticeError::UnknownLabel(hi.clone()))?;
            edges.push((Label(lo), Label(hi)));
        }
        SecurityLattice::from_parts(self.names, self.index, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_label_rejected() {
        let err = LatticeBuilder::new().level("U").level("U").build();
        assert_eq!(err.unwrap_err(), LatticeError::DuplicateLabel("U".into()));
    }

    #[test]
    fn unknown_label_rejected() {
        let err = LatticeBuilder::new().level("U").order("U", "S").build();
        assert_eq!(err.unwrap_err(), LatticeError::UnknownLabel("S".into()));
    }

    #[test]
    fn self_edge_rejected() {
        let err = LatticeBuilder::new().level("U").order("U", "U").build();
        assert_eq!(err.unwrap_err(), LatticeError::SelfEdge("U".into()));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            LatticeBuilder::new().build().unwrap_err(),
            LatticeError::Empty
        );
    }

    #[test]
    fn cycle_rejected() {
        let err = LatticeBuilder::new()
            .level("A")
            .level("B")
            .order("A", "B")
            .order("B", "A")
            .build();
        assert!(matches!(err.unwrap_err(), LatticeError::CycleDetected(_)));
    }

    #[test]
    fn single_label_builds() {
        let lat = LatticeBuilder::new().level("only").build().unwrap();
        assert_eq!(lat.len(), 1);
        let l = lat.label("only").unwrap();
        assert!(lat.dominates(l, l));
    }

    #[test]
    fn has_level_tracks_declarations() {
        let mut b = LatticeBuilder::new();
        assert!(!b.has_level("U"));
        b.add_level("U");
        assert!(b.has_level("U"));
    }
}
