//! The core finite-poset / lattice representation.

use std::collections::HashMap;
use std::fmt;

use crate::bitset::BitRow;
use crate::{Label, LatticeError, Result};

/// A finite partially ordered set of named security labels, with memoised
/// transitive-closure dominance and bound queries.
///
/// Despite the name, a `SecurityLattice` is allowed to be a mere poset —
/// MultiLog (Def 3.1) only assumes a partial order on labels, and §3.1 of
/// the paper explicitly discusses the multiple-model consequences of
/// incomparable labels. Use [`SecurityLattice::is_lattice`] to check that
/// every pair has unique `lub`/`glb` when the stronger structure matters
/// (e.g. for tuple-class computation in the MLS relational model).
#[derive(Clone)]
pub struct SecurityLattice {
    names: Vec<String>,
    index: HashMap<String, u32>,
    /// Hasse cover edges `(lo, hi)`, deduplicated.
    covers: Vec<(Label, Label)>,
    /// `dominated_by[i]` holds bit `j` iff `j ⪯ i` (i dominates j).
    dominated_by: Vec<BitRow>,
    /// `dominates_of[i]` holds bit `j` iff `i ⪯ j` (j dominates i).
    dominators: Vec<BitRow>,
}

impl SecurityLattice {
    pub(crate) fn from_parts(
        names: Vec<String>,
        index: HashMap<String, u32>,
        mut covers: Vec<(Label, Label)>,
    ) -> Result<Self> {
        covers.sort_unstable();
        covers.dedup();
        let n = names.len();

        // Kahn's algorithm over the cover edges: detects cycles and yields a
        // topological order for closure propagation.
        let mut indegree = vec![0usize; n];
        let mut up_adj: Vec<Vec<usize>> = vec![Vec::new(); n]; // lo -> his
        for &(lo, hi) in &covers {
            up_adj[lo.index()].push(hi.index());
            indegree[hi.index()] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo.push(i);
            for &j in &up_adj[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if topo.len() != n {
            let culprit = (0..n)
                .find(|&i| indegree[i] > 0)
                .expect("cycle implies positive indegree");
            return Err(LatticeError::CycleDetected(names[culprit].clone()));
        }

        // dominated_by: propagate upward in topological order.
        let mut dominated_by: Vec<BitRow> = (0..n)
            .map(|i| {
                let mut row = BitRow::new(n);
                row.set(i); // reflexive
                row
            })
            .collect();
        for &i in &topo {
            let row = dominated_by[i].clone();
            for &j in &up_adj[i] {
                dominated_by[j].union_in_place(&row);
            }
        }

        // dominators: transpose.
        let mut dominators: Vec<BitRow> = (0..n).map(|_| BitRow::new(n)).collect();
        for (i, row) in dominated_by.iter().enumerate() {
            for j in row.iter_ones() {
                dominators[j].set(i);
            }
        }

        Ok(SecurityLattice {
            names,
            index,
            covers,
            dominated_by,
            dominators,
        })
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the lattice has no labels (never true for a built lattice).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Look up a label handle by name.
    pub fn label(&self, name: &str) -> Option<Label> {
        self.index.get(name).map(|&i| Label(i))
    }

    /// Look up a label handle by name, erroring with context on failure.
    pub fn require(&self, name: &str) -> Result<Label> {
        self.label(name)
            .ok_or_else(|| LatticeError::UnknownLabel(name.to_owned()))
    }

    /// The name of a label.
    pub fn name(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// Iterate over all labels in declaration order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len()).map(Label::from_index)
    }

    /// Iterate over all label names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// The Hasse cover edges `(lo, hi)` this lattice was built from.
    pub fn covers(&self) -> &[(Label, Label)] {
        &self.covers
    }

    /// `true` iff `hi` dominates `lo`, i.e. `lo ⪯ hi`.
    ///
    /// Dominance is reflexive: every label dominates itself.
    #[inline]
    pub fn dominates(&self, hi: Label, lo: Label) -> bool {
        self.dominated_by
            .get(hi.index())
            .is_some_and(|row| row.get(lo.index()))
    }

    /// `true` iff `lo ⪯ hi` (alias of [`Self::dominates`] with swapped
    /// argument order, matching the paper's `⪯` reading).
    #[inline]
    pub fn leq(&self, lo: Label, hi: Label) -> bool {
        self.dominates(hi, lo)
    }

    /// Strict dominance: `lo ≺ hi`.
    #[inline]
    pub fn lt(&self, lo: Label, hi: Label) -> bool {
        lo != hi && self.leq(lo, hi)
    }

    /// Whether two labels are comparable at all.
    pub fn comparable(&self, a: Label, b: Label) -> bool {
        self.leq(a, b) || self.leq(b, a)
    }

    /// Name-based dominance query; errors if either name is unknown.
    pub fn dominates_by_name(&self, hi: &str, lo: &str) -> Result<bool> {
        Ok(self.dominates(self.require(hi)?, self.require(lo)?))
    }

    /// All labels `l` with `l ⪯ hi`, ascending by index (includes `hi`).
    pub fn down_set(&self, hi: Label) -> Vec<Label> {
        self.dominated_by[hi.index()]
            .iter_ones()
            .map(Label::from_index)
            .collect()
    }

    /// All labels `h` with `lo ⪯ h`, ascending by index (includes `lo`).
    pub fn up_set(&self, lo: Label) -> Vec<Label> {
        self.dominators[lo.index()]
            .iter_ones()
            .map(Label::from_index)
            .collect()
    }

    /// Minimal elements of the poset (labels dominating nothing else).
    pub fn minimal(&self) -> Vec<Label> {
        self.labels()
            .filter(|&l| self.dominated_by[l.index()].count_ones() == 1)
            .collect()
    }

    /// Maximal elements of the poset (labels dominated by nothing else).
    pub fn maximal(&self) -> Vec<Label> {
        self.labels()
            .filter(|&l| self.dominators[l.index()].count_ones() == 1)
            .collect()
    }

    /// The set of *minimal upper bounds* of `a` and `b`.
    ///
    /// For a true lattice this is a singleton (the `lub`); in a general
    /// poset it may be empty or contain several incomparable bounds — the
    /// "multiple models and associated unpredictability" of §3.1.
    pub fn minimal_upper_bounds(&self, a: Label, b: Label) -> Vec<Label> {
        let candidates: Vec<Label> = self.dominators[a.index()]
            .iter_ones()
            .filter(|&i| self.dominators[b.index()].get(i))
            .map(Label::from_index)
            .collect();
        candidates
            .iter()
            .copied()
            .filter(|&c| {
                !candidates
                    .iter()
                    .any(|&other| other != c && self.leq(other, c))
            })
            .collect()
    }

    /// The set of *maximal lower bounds* of `a` and `b`.
    pub fn maximal_lower_bounds(&self, a: Label, b: Label) -> Vec<Label> {
        let candidates: Vec<Label> = self.dominated_by[a.index()]
            .iter_ones()
            .filter(|&i| self.dominated_by[b.index()].get(i))
            .map(Label::from_index)
            .collect();
        candidates
            .iter()
            .copied()
            .filter(|&c| {
                !candidates
                    .iter()
                    .any(|&other| other != c && self.leq(c, other))
            })
            .collect()
    }

    /// All labels dominating *every* label of `labels` (the common upper
    /// bounds), ascending by index. Returns every label for an empty
    /// input. Used by the flow lints of `multilog-core::lint`: a rule
    /// whose ground labels have no common dominator can never fire and be
    /// observed at any single clearance.
    pub fn common_dominators(&self, labels: impl IntoIterator<Item = Label>) -> Vec<Label> {
        let mut it = labels.into_iter();
        let Some(first) = it.next() else {
            return self.labels().collect();
        };
        let mut row = self.dominators[first.index()].clone();
        for l in it {
            row.intersect_in_place(&self.dominators[l.index()]);
        }
        row.iter_ones().map(Label::from_index).collect()
    }

    /// Least upper bound, if unique.
    pub fn lub(&self, a: Label, b: Label) -> Option<Label> {
        match self.minimal_upper_bounds(a, b).as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// Greatest lower bound, if unique.
    pub fn glb(&self, a: Label, b: Label) -> Option<Label> {
        match self.maximal_lower_bounds(a, b).as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// Least upper bound of a non-empty iterator of labels, if it exists.
    pub fn lub_all(&self, labels: impl IntoIterator<Item = Label>) -> Option<Label> {
        let mut it = labels.into_iter();
        let first = it.next()?;
        it.try_fold(first, |acc, l| self.lub(acc, l))
    }

    /// Check the lattice property: every pair has a unique lub **and** glb.
    ///
    /// Returns the first offending pair on failure.
    pub fn is_lattice(&self) -> Result<()> {
        for a in self.labels() {
            for b in self.labels() {
                if a < b && (self.lub(a, b).is_none() || self.glb(a, b).is_none()) {
                    return Err(LatticeError::NotALattice {
                        left: self.name(a).to_owned(),
                        right: self.name(b).to_owned(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether the order is total (every pair comparable).
    pub fn is_total_order(&self) -> bool {
        self.labels()
            .all(|a| self.labels().all(|b| self.comparable(a, b)))
    }

    /// The strict-dominance pairs `(lo, hi)` with `lo ≺ hi`, i.e. the
    /// transitive closure of the cover edges. Useful for exporting the
    /// order into a Datalog program.
    pub fn strict_pairs(&self) -> Vec<(Label, Label)> {
        let mut out = Vec::new();
        for hi in self.labels() {
            for lo in self.down_set(hi) {
                if lo != hi {
                    out.push((lo, hi));
                }
            }
        }
        out
    }
}

impl fmt::Debug for SecurityLattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecurityLattice {{ labels: [")?;
        for (i, name) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, "], covers: [")?;
        for (i, &(lo, hi)) in self.covers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} < {}", self.name(lo), self.name(hi))?;
        }
        write!(f, "] }}")
    }
}

#[cfg(test)]
mod tests {
    use crate::{LatticeBuilder, LatticeError};

    fn chain() -> crate::SecurityLattice {
        LatticeBuilder::new()
            .level("U")
            .level("C")
            .level("S")
            .level("T")
            .order("U", "C")
            .order("C", "S")
            .order("S", "T")
            .build()
            .unwrap()
    }

    /// The classic "diamond": U < {L, R} < T with L, R incomparable.
    fn diamond() -> crate::SecurityLattice {
        LatticeBuilder::new()
            .level("U")
            .level("L")
            .level("R")
            .level("T")
            .order("U", "L")
            .order("U", "R")
            .order("L", "T")
            .order("R", "T")
            .build()
            .unwrap()
    }

    #[test]
    fn chain_dominance_is_transitive() {
        let lat = chain();
        let (u, t) = (lat.label("U").unwrap(), lat.label("T").unwrap());
        assert!(lat.dominates(t, u));
        assert!(lat.leq(u, t));
        assert!(lat.lt(u, t));
        assert!(!lat.lt(u, u));
        assert!(lat.is_total_order());
    }

    #[test]
    fn chain_is_lattice() {
        chain().is_lattice().unwrap();
    }

    #[test]
    fn diamond_incomparable_middle() {
        let lat = diamond();
        let (l, r) = (lat.label("L").unwrap(), lat.label("R").unwrap());
        assert!(!lat.comparable(l, r));
        assert!(!lat.is_total_order());
        assert_eq!(lat.lub(l, r), lat.label("T"));
        assert_eq!(lat.glb(l, r), lat.label("U"));
        lat.is_lattice().unwrap();
    }

    #[test]
    fn poset_without_top_is_not_lattice() {
        let lat = LatticeBuilder::new()
            .level("U")
            .level("L")
            .level("R")
            .order("U", "L")
            .order("U", "R")
            .build()
            .unwrap();
        let err = lat.is_lattice().unwrap_err();
        assert!(matches!(err, LatticeError::NotALattice { .. }));
        let (l, r) = (lat.label("L").unwrap(), lat.label("R").unwrap());
        assert!(lat.minimal_upper_bounds(l, r).is_empty());
    }

    #[test]
    fn down_and_up_sets() {
        let lat = diamond();
        let names = |ls: Vec<crate::Label>| {
            ls.into_iter()
                .map(|l| lat.name(l).to_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            names(lat.down_set(lat.label("T").unwrap())),
            ["U", "L", "R", "T"]
        );
        assert_eq!(
            names(lat.up_set(lat.label("U").unwrap())),
            ["U", "L", "R", "T"]
        );
        assert_eq!(names(lat.down_set(lat.label("L").unwrap())), ["U", "L"]);
    }

    #[test]
    fn minimal_and_maximal() {
        let lat = diamond();
        assert_eq!(lat.minimal(), vec![lat.label("U").unwrap()]);
        assert_eq!(lat.maximal(), vec![lat.label("T").unwrap()]);
    }

    #[test]
    fn lub_all_chain() {
        let lat = chain();
        let all: Vec<_> = lat.labels().collect();
        assert_eq!(lat.lub_all(all), lat.label("T"));
        assert_eq!(lat.lub_all([]), None);
        let u = lat.label("U").unwrap();
        assert_eq!(lat.lub_all([u]), Some(u));
    }

    #[test]
    fn strict_pairs_count() {
        // Chain of 4: 3 + 2 + 1 = 6 strict pairs.
        assert_eq!(chain().strict_pairs().len(), 6);
        // Diamond: U<L, U<R, U<T, L<T, R<T = 5.
        assert_eq!(diamond().strict_pairs().len(), 5);
    }

    #[test]
    fn parallel_cover_edges_deduplicated() {
        let lat = LatticeBuilder::new()
            .level("A")
            .level("B")
            .order("A", "B")
            .order("A", "B")
            .build()
            .unwrap();
        assert_eq!(lat.covers().len(), 1);
    }

    #[test]
    fn redundant_transitive_edge_is_harmless() {
        // order(U,S) in addition to U<C<S must not change dominance.
        let lat = LatticeBuilder::new()
            .level("U")
            .level("C")
            .level("S")
            .order("U", "C")
            .order("C", "S")
            .order("U", "S")
            .build()
            .unwrap();
        assert!(lat.dominates_by_name("S", "U").unwrap());
        assert!(lat.is_total_order());
    }

    #[test]
    fn debug_render() {
        let s = format!("{:?}", chain());
        assert!(s.contains("U < C"));
    }
}
