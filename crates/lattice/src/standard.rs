//! Ready-made lattices used throughout the paper and the test-suite.

use crate::{LatticeBuilder, SecurityLattice};

/// The four-level military hierarchy `U < C < S < T` (Unclassified,
/// Classified, Secret, Top Secret) used in every example of the paper.
pub fn military() -> SecurityLattice {
    total_order(&["U", "C", "S", "T"])
}

/// The three-level fragment `U < C < S` — the levels actually present in
/// the `Mission` relation of Figure 1.
pub fn mission_levels() -> SecurityLattice {
    total_order(&["U", "C", "S"])
}

/// A total order over the given names, lowest first.
///
/// # Panics
///
/// Panics if `names` is empty or contains duplicates; a chain over
/// distinct names is always a valid lattice.
pub fn total_order(names: &[&str]) -> SecurityLattice {
    let mut b = LatticeBuilder::new();
    for name in names {
        b.add_level(*name);
    }
    for w in names.windows(2) {
        b.add_order(w[0], w[1]);
    }
    b.build()
        .expect("chain over distinct names is a valid lattice")
}

/// The diamond `bottom < {left, right} < top` with incomparable middle
/// labels — the smallest lattice exhibiting the multiple-incomparable-
/// sources situation of §3.1.
pub fn diamond(bottom: &str, left: &str, right: &str, top: &str) -> SecurityLattice {
    LatticeBuilder::new()
        .level(bottom)
        .level(left)
        .level(right)
        .level(top)
        .order(bottom, left)
        .order(bottom, right)
        .order(left, top)
        .order(right, top)
        .build()
        .expect("diamond is a valid lattice")
}

/// A "wide" poset: one bottom, `width` incomparable middles, one top.
/// Useful for stressing the cautious-mode conflict handling.
pub fn fan(width: usize) -> SecurityLattice {
    let mut b = LatticeBuilder::new();
    b.add_level("bot");
    for i in 0..width {
        b.add_level(format!("m{i}"));
    }
    b.add_level("top");
    for i in 0..width {
        b.add_order("bot", format!("m{i}"));
        b.add_order(format!("m{i}"), "top");
    }
    b.build().expect("fan is a valid lattice")
}

/// A chain of `depth` labels `l0 < l1 < … < l{depth-1}` for scaling
/// benchmarks over lattice height.
pub fn chain(depth: usize) -> SecurityLattice {
    assert!(depth > 0, "chain needs at least one label");
    let mut b = LatticeBuilder::new();
    for i in 0..depth {
        b.add_level(format!("l{i}"));
    }
    for i in 1..depth {
        b.add_order(format!("l{}", i - 1), format!("l{i}"));
    }
    b.build().expect("chain is a valid lattice")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn military_is_the_paper_chain() {
        let lat = military();
        assert_eq!(lat.len(), 4);
        assert!(lat.dominates_by_name("T", "U").unwrap());
        assert!(lat.dominates_by_name("S", "C").unwrap());
        assert!(!lat.dominates_by_name("C", "S").unwrap());
        assert!(lat.is_total_order());
        lat.is_lattice().unwrap();
    }

    #[test]
    fn mission_levels_subset() {
        let lat = mission_levels();
        assert_eq!(lat.len(), 3);
        assert!(lat.label("T").is_none());
    }

    #[test]
    fn diamond_shape() {
        let lat = diamond("U", "Army", "Navy", "Joint");
        assert!(!lat.comparable(lat.label("Army").unwrap(), lat.label("Navy").unwrap()));
        lat.is_lattice().unwrap();
    }

    #[test]
    fn fan_width() {
        let lat = fan(5);
        assert_eq!(lat.len(), 7);
        lat.is_lattice().unwrap();
        let m0 = lat.label("m0").unwrap();
        let m4 = lat.label("m4").unwrap();
        assert_eq!(lat.lub(m0, m4), lat.label("top"));
        assert_eq!(lat.glb(m0, m4), lat.label("bot"));
    }

    #[test]
    fn chain_depth() {
        let lat = chain(16);
        assert_eq!(lat.len(), 16);
        assert!(lat.is_total_order());
        assert!(lat.dominates_by_name("l15", "l0").unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn chain_zero_panics() {
        chain(0);
    }
}
