//! Interned security-label handles.

use std::fmt;

/// A handle to a security label interned in a [`crate::SecurityLattice`].
///
/// Labels are cheap to copy and compare; the human-readable name lives in
/// the lattice that created the label. A `Label` is only meaningful with
/// respect to the lattice it was interned in — mixing labels from two
/// different lattices is a logic error that dominance queries detect by
/// bounds-checking the index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// The dense index of this label inside its lattice.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a label from a raw index.
    ///
    /// Intended for deserialisation and test helpers; prefer
    /// [`crate::SecurityLattice::label`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Label(u32::try_from(index).expect("label index exceeds u32"))
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let l = Label::from_index(7);
        assert_eq!(l.index(), 7);
        assert_eq!(format!("{l:?}"), "Label(7)");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(Label::from_index(1) < Label::from_index(2));
    }
}
