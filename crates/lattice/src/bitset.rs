//! A minimal fixed-width bitset used for dominance matrices.
//!
//! Each row of the transitive-closure dominance matrix is a `BitRow`. For
//! the label counts realistic in MLS deployments (tens to a few thousand
//! labels) a dense `Vec<u64>` row is both the simplest and the fastest
//! representation: dominance is a single word load + mask, and closure
//! propagation is word-parallel `|=`.

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BitRow {
    words: Vec<u64>,
}

impl BitRow {
    pub(crate) fn new(bits: usize) -> Self {
        BitRow {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        match self.words.get(i / 64) {
            Some(w) => (w >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// `self |= other`; returns `true` if any bit changed.
    pub(crate) fn union_in_place(&mut self, other: &BitRow) -> bool {
        let mut changed = false;
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            let next = *dst | *src;
            if next != *dst {
                *dst = next;
                changed = true;
            }
        }
        changed
    }

    /// `self &= other` (bits past `other`'s width are cleared).
    pub(crate) fn intersect_in_place(&mut self, other: &BitRow) {
        for (i, dst) in self.words.iter_mut().enumerate() {
            *dst &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Iterator over the indices of set bits, ascending.
    pub(crate) fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    pub(crate) fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut r = BitRow::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!r.get(i));
            r.set(i);
            assert!(r.get(i));
        }
        assert_eq!(r.count_ones(), 8);
    }

    #[test]
    fn get_out_of_range_is_false() {
        let r = BitRow::new(10);
        assert!(!r.get(1000));
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitRow::new(70);
        let mut b = BitRow::new(70);
        b.set(69);
        assert!(a.union_in_place(&b));
        assert!(!a.union_in_place(&b));
        assert!(a.get(69));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut r = BitRow::new(200);
        for i in [3, 64, 140, 199] {
            r.set(i);
        }
        assert_eq!(r.iter_ones().collect::<Vec<_>>(), vec![3, 64, 140, 199]);
    }

    #[test]
    fn empty_bitrow() {
        let r = BitRow::new(0);
        assert_eq!(r.count_ones(), 0);
        assert_eq!(r.iter_ones().count(), 0);
    }
}
