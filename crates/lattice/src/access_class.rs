//! Bell–LaPadula access classes: (hierarchy level, category set) pairs.

use std::collections::BTreeSet;
use std::fmt;

use crate::{LatticeBuilder, Result, SecurityLattice};

/// An unordered set of compartment categories (e.g. `{NATO, Army}`).
///
/// Stored as a `BTreeSet` so that equal sets render identically and the
/// derived ordering is deterministic.
pub type CategorySet = BTreeSet<String>;

/// A full Bell–LaPadula access class: a hierarchy level drawn from a total
/// order plus a set of categories.
///
/// `c1` dominates `c2` iff `c1.rank >= c2.rank` **and**
/// `c1.categories ⊇ c2.categories` — the product order of §2 of the paper.
/// The paper drops categories "without the loss of any generality"; this
/// type keeps them so the generality claim is actually exercised (see
/// [`AccessClass::enumerate_lattice`], which expands a level chain × a
/// category universe into a [`SecurityLattice`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessClass {
    /// Position of the hierarchy level in its total order (0 = lowest).
    pub rank: usize,
    /// Human-readable name of the hierarchy level (e.g. `"S"`).
    pub level_name: String,
    /// Compartment categories.
    pub categories: CategorySet,
}

impl AccessClass {
    /// Construct an access class.
    pub fn new(
        rank: usize,
        level_name: impl Into<String>,
        categories: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        AccessClass {
            rank,
            level_name: level_name.into(),
            categories: categories.into_iter().map(Into::into).collect(),
        }
    }

    /// `true` iff `self` dominates `other` in the product order.
    pub fn dominates(&self, other: &AccessClass) -> bool {
        self.rank >= other.rank && self.categories.is_superset(&other.categories)
    }

    /// Whether the two classes are comparable.
    pub fn comparable(&self, other: &AccessClass) -> bool {
        self.dominates(other) || other.dominates(self)
    }

    /// Least upper bound: max of ranks, union of categories.
    ///
    /// `level_names` maps rank → name for the resulting class.
    pub fn lub(&self, other: &AccessClass, level_names: &[&str]) -> AccessClass {
        let rank = self.rank.max(other.rank);
        AccessClass {
            rank,
            level_name: level_names[rank].to_owned(),
            categories: self.categories.union(&other.categories).cloned().collect(),
        }
    }

    /// Greatest lower bound: min of ranks, intersection of categories.
    pub fn glb(&self, other: &AccessClass, level_names: &[&str]) -> AccessClass {
        let rank = self.rank.min(other.rank);
        AccessClass {
            rank,
            level_name: level_names[rank].to_owned(),
            categories: self
                .categories
                .intersection(&other.categories)
                .cloned()
                .collect(),
        }
    }

    /// Canonical label name, e.g. `S{Army,NATO}` or plain `S` when the
    /// category set is empty.
    pub fn label_name(&self) -> String {
        if self.categories.is_empty() {
            self.level_name.clone()
        } else {
            let cats: Vec<&str> = self.categories.iter().map(String::as_str).collect();
            format!("{}{{{}}}", self.level_name, cats.join(","))
        }
    }

    /// Enumerate the full product lattice `levels × 2^categories` into a
    /// [`SecurityLattice`], with cover edges of the Hasse diagram.
    ///
    /// The result has `levels.len() * 2.pow(categories.len())` labels, so
    /// keep the category universe small (≤ ~10).
    pub fn enumerate_lattice(levels: &[&str], categories: &[&str]) -> Result<SecurityLattice> {
        let ncat = categories.len();
        assert!(ncat <= 16, "category universe too large to enumerate");
        let class_name = |rank: usize, mask: usize| -> String {
            let cats: CategorySet = categories
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, c)| (*c).to_owned())
                .collect();
            AccessClass {
                rank,
                level_name: levels[rank].to_owned(),
                categories: cats,
            }
            .label_name()
        };
        let mut b = LatticeBuilder::new();
        for rank in 0..levels.len() {
            for mask in 0..(1usize << ncat) {
                b.add_level(class_name(rank, mask));
            }
        }
        // Cover edges: raise the rank by one with equal categories, or add
        // exactly one category at equal rank.
        for rank in 0..levels.len() {
            for mask in 0..(1usize << ncat) {
                let lo = class_name(rank, mask);
                if rank + 1 < levels.len() {
                    b.add_order(lo.clone(), class_name(rank + 1, mask));
                }
                for bit in 0..ncat {
                    if mask >> bit & 1 == 0 {
                        b.add_order(lo.clone(), class_name(rank, mask | (1 << bit)));
                    }
                }
            }
        }
        b.build()
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEVELS: [&str; 4] = ["U", "C", "S", "T"];

    #[test]
    fn dominance_requires_both_components() {
        let s_nato = AccessClass::new(2, "S", ["NATO"]);
        let c_nato = AccessClass::new(1, "C", ["NATO"]);
        let s_army = AccessClass::new(2, "S", ["Army"]);
        assert!(s_nato.dominates(&c_nato));
        assert!(!c_nato.dominates(&s_nato));
        assert!(!s_nato.dominates(&s_army)); // categories incomparable
        assert!(!s_nato.comparable(&s_army));
    }

    #[test]
    fn dominance_is_reflexive() {
        let c = AccessClass::new(1, "C", ["NATO", "Army"]);
        assert!(c.dominates(&c));
    }

    #[test]
    fn lub_glb_product() {
        let a = AccessClass::new(2, "S", ["NATO"]);
        let b = AccessClass::new(1, "C", ["Army"]);
        let names: Vec<&str> = LEVELS.to_vec();
        let lub = a.lub(&b, &names);
        assert_eq!(lub.rank, 2);
        assert_eq!(lub.categories.len(), 2);
        assert!(lub.dominates(&a) && lub.dominates(&b));
        let glb = a.glb(&b, &names);
        assert_eq!(glb.rank, 1);
        assert!(glb.categories.is_empty());
        assert!(a.dominates(&glb) && b.dominates(&glb));
    }

    #[test]
    fn label_name_formats() {
        assert_eq!(
            AccessClass::new(0, "U", Vec::<String>::new()).label_name(),
            "U"
        );
        assert_eq!(
            AccessClass::new(2, "S", ["NATO", "Army"]).label_name(),
            "S{Army,NATO}"
        );
    }

    #[test]
    fn enumerated_product_lattice_is_a_lattice() {
        let lat = AccessClass::enumerate_lattice(&["U", "S"], &["a", "b"]).unwrap();
        assert_eq!(lat.len(), 2 * 4);
        lat.is_lattice().unwrap();
        // S{a,b} dominates U (empty categories).
        assert!(lat.dominates_by_name("S{a,b}", "U").unwrap());
        // U{a} and U{b} are incomparable; their lub is U{a,b}.
        let ua = lat.label("U{a}").unwrap();
        let ub = lat.label("U{b}").unwrap();
        assert_eq!(lat.lub(ua, ub), lat.label("U{a,b}"));
    }

    #[test]
    fn enumerated_lattice_no_categories_is_chain() {
        let lat = AccessClass::enumerate_lattice(&LEVELS, &[]).unwrap();
        assert_eq!(lat.len(), 4);
        assert!(lat.is_total_order());
    }
}
