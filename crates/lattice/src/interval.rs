//! Intervals over a security poset, the abstract domain of the
//! lattice-flow analysis (`multilog_core::flow`).
//!
//! An interval `[glb, lub]` on a *lattice* is a pair of labels; on the
//! arbitrary finite posets this crate admits there is no unique
//! `lub`/`glb`, so a [`LabelInterval`] keeps two **antichain frontiers**
//! instead: `lo`, the minimal labels that have actually flowed in, and
//! `hi`, the maximal ones. On a true lattice this degenerates to the
//! classic two-point interval; on a poset it stays exact without
//! inventing bounds that no derivation achieves.
//!
//! The frontier members are always labels that were actually joined into
//! the interval (joins only ever keep members of the operand frontiers),
//! which the demand-pruning soundness argument relies on: if
//! [`LabelInterval::may_flow_below`] reports `false` for a clearance
//! `u`, then *no* label ever joined into the interval is dominated by
//! `u` — not merely no frontier label.

use crate::label::Label;
use crate::lattice::SecurityLattice;

/// A sound bound on the set of security labels a value may take,
/// represented by its minimal (`lo`) and maximal (`hi`) achieved labels.
///
/// The empty interval (`⊥`, no labels at all) is the bottom of the
/// abstract domain; [`LabelInterval::join`] is its least upper bound.
/// The domain is finite (antichains over a finite poset), so any
/// monotone fixpoint over it terminates without widening.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelInterval {
    /// Minimal achieved labels (an antichain, sorted by label index).
    lo: Vec<Label>,
    /// Maximal achieved labels (an antichain, sorted by label index).
    hi: Vec<Label>,
}

/// Keep only the elements of `labels` that are minimal (`minimal =
/// true`) or maximal (`minimal = false`) under `lat`'s order, deduped
/// and sorted by label index.
fn frontier(lat: &SecurityLattice, mut labels: Vec<Label>, minimal: bool) -> Vec<Label> {
    labels.sort_unstable();
    labels.dedup();
    let keep: Vec<Label> = labels
        .iter()
        .copied()
        .filter(|&a| {
            !labels.iter().any(|&b| {
                a != b
                    && if minimal {
                        lat.leq(b, a)
                    } else {
                        lat.leq(a, b)
                    }
            })
        })
        .collect();
    keep
}

impl LabelInterval {
    /// The empty interval: no label has flowed in yet.
    #[must_use]
    pub fn empty() -> Self {
        LabelInterval::default()
    }

    /// The interval containing exactly one label.
    #[must_use]
    pub fn point(label: Label) -> Self {
        LabelInterval {
            lo: vec![label],
            hi: vec![label],
        }
    }

    /// The interval covering every label of the lattice (the top of the
    /// abstract domain — used for label positions fed from unconstrained
    /// data).
    #[must_use]
    pub fn full(lat: &SecurityLattice) -> Self {
        LabelInterval {
            lo: lat.minimal(),
            hi: lat.maximal(),
        }
    }

    /// Whether no label has flowed in.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Whether the interval is a single point (exactly one achievable
    /// label).
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.lo.len() == 1 && self.lo == self.hi
    }

    /// The minimal achieved labels (an antichain).
    #[must_use]
    pub fn lo(&self) -> &[Label] {
        &self.lo
    }

    /// The maximal achieved labels (an antichain).
    #[must_use]
    pub fn hi(&self) -> &[Label] {
        &self.hi
    }

    /// Whether `x` lies inside the interval: some `lo` member is `⪯ x`
    /// and some `hi` member is `⪰ x`. Over-approximates the achieved
    /// set, as an abstract domain must.
    #[must_use]
    pub fn contains(&self, lat: &SecurityLattice, x: Label) -> bool {
        self.lo.iter().any(|&l| lat.leq(l, x)) && self.hi.iter().any(|&h| lat.leq(x, h))
    }

    /// Whether any achieved label is dominated by `clearance` — the
    /// visibility test demand pruning asks. Exact (not merely sound):
    /// every achieved label `x ⪯ clearance` dominates some `lo` frontier
    /// member, which is then itself `⪯ clearance`, and every frontier
    /// member is achieved.
    #[must_use]
    pub fn may_flow_below(&self, lat: &SecurityLattice, clearance: Label) -> bool {
        self.lo.iter().any(|&l| lat.leq(l, clearance))
    }

    /// Join one label into the interval. Returns `true` if the interval
    /// grew.
    pub fn join_label(&mut self, lat: &SecurityLattice, label: Label) -> bool {
        if self.spans(lat, &[label], &[label]) {
            return false;
        }
        self.join(
            lat,
            &LabelInterval {
                lo: vec![label],
                hi: vec![label],
            },
        )
    }

    /// Whether the frontiers already span the given `lo`/`hi` sets:
    /// every `lo` member sits above one of ours and every `hi` member
    /// below one of ours. Joining such an interval cannot move either
    /// frontier (a member above an existing minimal element is not
    /// minimal in the union, and `x ⪰ s, x ≺ s'` would order the
    /// antichain members `s ≺ s'`), so [`Self::join`] uses this as its
    /// allocation-free steady-state fast path.
    fn spans(&self, lat: &SecurityLattice, lo: &[Label], hi: &[Label]) -> bool {
        !self.is_empty()
            && lo.iter().all(|&o| self.lo.iter().any(|&s| lat.leq(s, o)))
            && hi.iter().all(|&o| self.hi.iter().any(|&s| lat.leq(o, s)))
    }

    /// Least upper bound in the abstract domain: the frontiers of the
    /// union of the two achieved sets. Returns `true` if `self` changed.
    pub fn join(&mut self, lat: &SecurityLattice, other: &LabelInterval) -> bool {
        if other.is_empty() {
            return false;
        }
        if self.spans(lat, &other.lo, &other.hi) {
            return false;
        }
        let mut lo = self.lo.clone();
        lo.extend_from_slice(&other.lo);
        let mut hi = self.hi.clone();
        hi.extend_from_slice(&other.hi);
        let next = LabelInterval {
            lo: frontier(lat, lo, true),
            hi: frontier(lat, hi, false),
        };
        if next == *self {
            false
        } else {
            *self = next;
            true
        }
    }

    /// The frontier label names, `lo` then `hi`, for rendering.
    #[must_use]
    pub fn names<'a>(&self, lat: &'a SecurityLattice) -> (Vec<&'a str>, Vec<&'a str>) {
        (
            self.lo.iter().map(|&l| lat.name(l)).collect(),
            self.hi.iter().map(|&l| lat.name(l)).collect(),
        )
    }
}

impl std::fmt::Display for LabelInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("⊥");
        }
        let row = |f: &mut std::fmt::Formatter<'_>, v: &[Label]| -> std::fmt::Result {
            if v.len() == 1 {
                write!(f, "#{}", v[0].index())
            } else {
                write!(f, "{{")?;
                for (i, l) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "#{}", l.index())?;
                }
                write!(f, "}}")
            }
        };
        write!(f, "[")?;
        row(f, &self.lo)?;
        write!(f, ", ")?;
        row(f, &self.hi)?;
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LatticeBuilder;

    /// A diamond: `bot ⪯ {a, b} ⪯ top` with `a`, `b` incomparable.
    fn diamond() -> SecurityLattice {
        let mut b = LatticeBuilder::new();
        for l in ["bot", "a", "b", "top"] {
            b.add_level(l);
        }
        b.add_order("bot", "a");
        b.add_order("bot", "b");
        b.add_order("a", "top");
        b.add_order("b", "top");
        b.build().unwrap()
    }

    #[test]
    fn empty_interval_contains_nothing() {
        let lat = diamond();
        let iv = LabelInterval::empty();
        assert!(iv.is_empty());
        for l in lat.labels() {
            assert!(!iv.contains(&lat, l));
            assert!(!iv.may_flow_below(&lat, l));
        }
    }

    #[test]
    fn point_and_join_grow_monotonically() {
        let lat = diamond();
        let a = lat.label("a").unwrap();
        let b = lat.label("b").unwrap();
        let bot = lat.label("bot").unwrap();
        let top = lat.label("top").unwrap();
        let mut iv = LabelInterval::point(a);
        assert!(iv.is_point());
        assert!(iv.contains(&lat, a));
        assert!(!iv.contains(&lat, b));
        assert!(iv.join_label(&lat, b));
        assert!(!iv.join_label(&lat, b), "join is idempotent");
        // `a` and `b` are incomparable: both survive on both frontiers.
        assert_eq!(iv.lo().len(), 2);
        assert_eq!(iv.hi().len(), 2);
        // The interval closure contains neither bot nor top.
        assert!(!iv.contains(&lat, bot));
        assert!(!iv.contains(&lat, top));
        assert!(iv.join_label(&lat, top));
        assert_eq!(iv.hi(), &[top]);
        assert!(iv.contains(&lat, top));
        // top entered hi, but bot is still outside.
        assert!(!iv.contains(&lat, bot));
    }

    #[test]
    fn full_covers_everything() {
        let lat = diamond();
        let iv = LabelInterval::full(&lat);
        for l in lat.labels() {
            assert!(iv.contains(&lat, l));
            assert!(iv.may_flow_below(&lat, l) || !lat.leq(lat.minimal()[0], l));
        }
    }

    #[test]
    fn may_flow_below_matches_achieved_labels() {
        let lat = diamond();
        let a = lat.label("a").unwrap();
        let b = lat.label("b").unwrap();
        let bot = lat.label("bot").unwrap();
        let top = lat.label("top").unwrap();
        let mut iv = LabelInterval::point(a);
        iv.join_label(&lat, top);
        // Achieved = {a, top}: visible at a and top, not at b or bot.
        assert!(iv.may_flow_below(&lat, a));
        assert!(iv.may_flow_below(&lat, top));
        assert!(!iv.may_flow_below(&lat, b));
        assert!(!iv.may_flow_below(&lat, bot));
    }

    #[test]
    fn display_is_compact() {
        let lat = diamond();
        assert_eq!(LabelInterval::empty().to_string(), "⊥");
        let p = LabelInterval::point(lat.label("a").unwrap());
        assert!(p.to_string().starts_with('['));
    }
}
