//! Security-label lattices for multilevel-secure (MLS) databases.
//!
//! The Bell–LaPadula model assigns every *object* a security classification
//! and every *subject* a clearance; both are drawn from a partially ordered
//! set of *access classes*. An access class has two components: a totally
//! ordered hierarchy level (e.g. `U < C < S < T`) and an unordered set of
//! categories (e.g. `{NATO, Army}`). Access classes form a lattice under
//! the product order: `c1 >= c2` iff `c1`'s level is at least `c2`'s and
//! `c1`'s categories are a superset of `c2`'s.
//!
//! MultiLog (Jamil, SIGMOD 1999) only requires a finite partial order of
//! security labels, declared by `level/1` and `order/2` facts. This crate
//! provides both views:
//!
//! * [`SecurityLattice`] — an arbitrary finite poset of named labels built
//!   from Hasse-diagram edges, with memoised transitive-closure dominance,
//!   least-upper-bound / greatest-lower-bound queries, and lattice-property
//!   checks. This is the substrate the MultiLog engine evaluates `⪯` over.
//! * [`AccessClass`] — the classic (hierarchy level, category set) pair with
//!   the Bell–LaPadula product order, convertible into a [`SecurityLattice`]
//!   by enumeration.
//!
//! # Example
//!
//! ```
//! use multilog_lattice::standard;
//!
//! let lat = standard::military(); // U < C < S < T
//! let u = lat.label("U").unwrap();
//! let s = lat.label("S").unwrap();
//! assert!(lat.dominates(s, u));
//! assert!(!lat.dominates(u, s));
//! assert_eq!(lat.lub(u, s), Some(s));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access_class;
mod bitset;
mod builder;
mod error;
mod interval;
mod label;
mod lattice;
pub mod standard;

pub use access_class::{AccessClass, CategorySet};
pub use builder::LatticeBuilder;
pub use error::LatticeError;
pub use interval::LabelInterval;
pub use label::Label;
pub use lattice::SecurityLattice;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LatticeError>;
