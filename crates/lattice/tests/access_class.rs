//! Property tests for Bell–LaPadula access classes and their enumeration
//! into explicit lattices.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_lattice::AccessClass;

const LEVELS: [&str; 4] = ["U", "C", "S", "T"];
const CATS: [&str; 4] = ["a", "b", "c", "d"];

fn arb_class() -> impl Strategy<Value = AccessClass> {
    (0usize..4, proptest::collection::btree_set(0usize..4, 0..=4)).prop_map(|(rank, cats)| {
        AccessClass::new(
            rank,
            LEVELS[rank],
            cats.into_iter().map(|i| CATS[i].to_owned()),
        )
    })
}

proptest! {
    #[test]
    fn dominance_is_a_partial_order(a in arb_class(), b in arb_class(), c in arb_class()) {
        // Reflexivity.
        prop_assert!(a.dominates(&a));
        // Antisymmetry.
        if a.dominates(&b) && b.dominates(&a) {
            prop_assert_eq!(&a.rank, &b.rank);
            prop_assert_eq!(&a.categories, &b.categories);
        }
        // Transitivity.
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
    }

    #[test]
    fn lub_is_least_upper_bound(a in arb_class(), b in arb_class()) {
        let names: Vec<&str> = LEVELS.to_vec();
        let lub = a.lub(&b, &names);
        prop_assert!(lub.dominates(&a));
        prop_assert!(lub.dominates(&b));
        // Least: any other upper bound dominates the lub.
        let top = AccessClass::new(3, "T", CATS.iter().copied());
        prop_assert!(top.dominates(&lub));
        // lub is idempotent and commutative.
        prop_assert_eq!(a.lub(&b, &names).label_name(), b.lub(&a, &names).label_name());
        prop_assert_eq!(a.lub(&a, &names).label_name(), a.label_name());
    }

    #[test]
    fn glb_is_greatest_lower_bound(a in arb_class(), b in arb_class()) {
        let names: Vec<&str> = LEVELS.to_vec();
        let glb = a.glb(&b, &names);
        prop_assert!(a.dominates(&glb));
        prop_assert!(b.dominates(&glb));
        let bottom = AccessClass::new(0, "U", Vec::<String>::new());
        prop_assert!(glb.dominates(&bottom));
    }

    #[test]
    fn lub_glb_absorption(a in arb_class(), b in arb_class()) {
        // a ∧ (a ∨ b) = a and a ∨ (a ∧ b) = a.
        let names: Vec<&str> = LEVELS.to_vec();
        let lub = a.lub(&b, &names);
        let absorbed = a.glb(&lub, &names);
        prop_assert_eq!(absorbed.label_name(), a.label_name());
        let glb = a.glb(&b, &names);
        let absorbed = a.lub(&glb, &names);
        prop_assert_eq!(absorbed.label_name(), a.label_name());
    }

    #[test]
    fn enumerated_lattice_agrees_with_direct_dominance(
        a in arb_class(),
        b in arb_class(),
    ) {
        // Dominance computed on AccessClass values must equal dominance in
        // the enumerated SecurityLattice.
        let lat = AccessClass::enumerate_lattice(&LEVELS[..2], &CATS[..2]).unwrap();
        // Project the random classes into the 2-level, 2-category space.
        let project = |x: &AccessClass| {
            AccessClass::new(
                x.rank.min(1),
                LEVELS[x.rank.min(1)],
                x.categories
                    .iter()
                    .filter(|c| ["a", "b"].contains(&c.as_str()))
                    .cloned(),
            )
        };
        let (pa, pb) = (project(&a), project(&b));
        let la = lat.label(&pa.label_name()).expect("projected class exists");
        let lb = lat.label(&pb.label_name()).expect("projected class exists");
        prop_assert_eq!(pa.dominates(&pb), lat.dominates(la, lb));
    }
}
