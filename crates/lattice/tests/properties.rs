//! Property-based tests for the lattice substrate.
//!
//! Strategy: generate random DAGs as "layered" posets (edges only go from a
//! lower layer to a higher one, which guarantees acyclicity), then check
//! the order axioms and the consistency of the derived query surfaces.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use multilog_lattice::{Label, LatticeBuilder, SecurityLattice};

/// A random layered poset: `layers` layers of up to `width` labels each,
/// with random upward edges.
fn arb_poset() -> impl Strategy<Value = SecurityLattice> {
    (2usize..5, 1usize..4, any::<u64>()).prop_map(|(layers, width, seed)| {
        let mut b = LatticeBuilder::new();
        let mut names: Vec<Vec<String>> = Vec::new();
        for layer in 0..layers {
            let mut row = Vec::new();
            for w in 0..width {
                let name = format!("n{layer}_{w}");
                b.add_level(name.clone());
                row.push(name);
            }
            names.push(row);
        }
        // Deterministic pseudo-random edges from the seed.
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for layer in 1..layers {
            for hi in &names[layer] {
                for lo in &names[layer - 1] {
                    if next() % 3 != 0 {
                        b.add_order(lo.clone(), hi.clone());
                    }
                }
            }
        }
        b.build().expect("layered construction is acyclic")
    })
}

proptest! {
    #[test]
    fn dominance_is_reflexive(lat in arb_poset()) {
        for l in lat.labels() {
            prop_assert!(lat.dominates(l, l));
        }
    }

    #[test]
    fn dominance_is_antisymmetric(lat in arb_poset()) {
        for a in lat.labels() {
            for b in lat.labels() {
                if a != b {
                    prop_assert!(!(lat.leq(a, b) && lat.leq(b, a)),
                        "both {} <= {} and converse", lat.name(a), lat.name(b));
                }
            }
        }
    }

    #[test]
    fn dominance_is_transitive(lat in arb_poset()) {
        let labels: Vec<Label> = lat.labels().collect();
        for &a in &labels {
            for &b in &labels {
                if !lat.leq(a, b) { continue; }
                for &c in &labels {
                    if lat.leq(b, c) {
                        prop_assert!(lat.leq(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn down_set_matches_dominates(lat in arb_poset()) {
        for hi in lat.labels() {
            let down = lat.down_set(hi);
            for lo in lat.labels() {
                prop_assert_eq!(down.contains(&lo), lat.dominates(hi, lo));
            }
        }
    }

    #[test]
    fn up_set_is_transpose_of_down_set(lat in arb_poset()) {
        for a in lat.labels() {
            for b in lat.labels() {
                prop_assert_eq!(
                    lat.up_set(a).contains(&b),
                    lat.down_set(b).contains(&a)
                );
            }
        }
    }

    #[test]
    fn minimal_upper_bounds_are_bounds_and_minimal(lat in arb_poset()) {
        let labels: Vec<Label> = lat.labels().collect();
        for &a in &labels {
            for &b in &labels {
                let mubs = lat.minimal_upper_bounds(a, b);
                for &m in &mubs {
                    prop_assert!(lat.leq(a, m) && lat.leq(b, m));
                }
                // Pairwise incomparable.
                for &m in &mubs {
                    for &n in &mubs {
                        if m != n {
                            prop_assert!(!lat.leq(m, n));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lub_is_unique_minimal_upper_bound(lat in arb_poset()) {
        for a in lat.labels() {
            for b in lat.labels() {
                let mubs = lat.minimal_upper_bounds(a, b);
                match lat.lub(a, b) {
                    Some(l) => prop_assert_eq!(mubs, vec![l]),
                    None => prop_assert_ne!(mubs.len(), 1),
                }
            }
        }
    }

    #[test]
    fn strict_pairs_are_strict_and_complete(lat in arb_poset()) {
        let pairs = lat.strict_pairs();
        for &(lo, hi) in &pairs {
            prop_assert!(lat.lt(lo, hi));
        }
        let count = lat
            .labels()
            .flat_map(|a| lat.labels().map(move |b| (a, b)))
            .filter(|&(a, b)| lat.lt(a, b))
            .count();
        prop_assert_eq!(pairs.len(), count);
    }

    #[test]
    fn comparable_is_symmetric(lat in arb_poset()) {
        for a in lat.labels() {
            for b in lat.labels() {
                prop_assert_eq!(lat.comparable(a, b), lat.comparable(b, a));
            }
        }
    }
}

#[test]
fn dominance_by_name_unknown_label_errors() {
    let lat = multilog_lattice::standard::military();
    assert!(lat.dominates_by_name("T", "nope").is_err());
    assert!(lat.require("nope").is_err());
}
