//! Multilevel relation schemes (Definition 2.1).

use std::fmt;
use std::sync::Arc;

use multilog_lattice::{Label, SecurityLattice};

use crate::{MlsError, Result};

/// A multilevel relation scheme `R(A1, C1, …, An, Cn, TC)`.
///
/// Attribute 0 is the apparent key `AK` (the paper assumes single-attribute
/// keys; §7 notes multi-attribute keys are an orthogonal extension). Each
/// attribute carries a classification range `[L_i, H_i]` restricting the
/// classes its values may take.
#[derive(Clone)]
pub struct MlsScheme {
    name: String,
    attrs: Vec<AttrDef>,
    lattice: Arc<SecurityLattice>,
    key_width: usize,
}

/// One data attribute with its classification range.
#[derive(Clone, Debug)]
pub struct AttrDef {
    /// The attribute name.
    pub name: String,
    /// Lowest admissible classification `L_i`.
    pub low: Label,
    /// Highest admissible classification `H_i`.
    pub high: Label,
}

impl MlsScheme {
    /// Construct a scheme. `attrs` lists `(name, low, high)` classification
    /// ranges; the first attribute is the apparent key.
    pub fn new(
        name: impl Into<String>,
        lattice: Arc<SecurityLattice>,
        attrs: Vec<(String, Label, Label)>,
    ) -> Result<Self> {
        assert!(!attrs.is_empty(), "scheme needs at least the key attribute");
        for (n, low, high) in &attrs {
            if !lattice.leq(*low, *high) {
                return Err(MlsError::EntityIntegrity {
                    detail: format!(
                        "attribute `{n}` has range [{}, {}] with low ⋠ high",
                        lattice.name(*low),
                        lattice.name(*high)
                    ),
                });
            }
        }
        Ok(MlsScheme {
            name: name.into(),
            attrs: attrs
                .into_iter()
                .map(|(name, low, high)| AttrDef { name, low, high })
                .collect(),
            lattice,
            key_width: 1,
        })
    }

    /// Construct a scheme where every attribute admits the full lattice
    /// range (from every minimal to every maximal label it is simply
    /// unconstrained — the common case in the paper's examples).
    pub fn unconstrained(
        name: impl Into<String>,
        lattice: Arc<SecurityLattice>,
        attr_names: &[&str],
    ) -> Self {
        assert!(
            !attr_names.is_empty(),
            "scheme needs at least the key attribute"
        );
        // Unconstrained = accept any label; model as per-attribute range
        // over the whole poset by storing (min, max) hints but skipping the
        // range check at validation time (low == high == the attribute's
        // own class is always within range when unconstrained).
        let attrs = attr_names
            .iter()
            .map(|&n| AttrDef {
                name: n.to_owned(),
                low: Label::from_index(0),
                high: Label::from_index(lattice.len() - 1),
            })
            .collect();
        MlsScheme {
            name: name.into(),
            attrs,
            lattice,
            key_width: 1,
        }
    }

    /// Widen the apparent key to the first `width` attributes (§7 of the
    /// paper relaxes the single-attribute-key assumption). Definition 5.4
    /// then requires the key attributes to be *uniformly classified*,
    /// which [`crate::integrity`] enforces.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= arity`.
    pub fn with_key_width(mut self, width: usize) -> Self {
        assert!(
            width >= 1 && width <= self.attrs.len(),
            "key width must be within 1..=arity"
        );
        self.key_width = width;
        self
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of data attributes (excluding `TC`).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute definitions.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// The attribute names.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name.as_str())
    }

    /// Index of the first apparent-key attribute (always 0).
    pub fn key_index(&self) -> usize {
        0
    }

    /// Number of attributes forming the apparent key (1 unless widened
    /// via [`MlsScheme::with_key_width`]).
    pub fn key_width(&self) -> usize {
        self.key_width
    }

    /// The indices of the apparent-key attributes.
    pub fn key_indices(&self) -> std::ops::Range<usize> {
        0..self.key_width
    }

    /// The apparent key's name.
    pub fn key_name(&self) -> &str {
        &self.attrs[0].name
    }

    /// Resolve an attribute name to its index.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| MlsError::UnknownAttribute(name.to_owned()))
    }

    /// The security lattice this scheme classifies over.
    pub fn lattice(&self) -> &Arc<SecurityLattice> {
        &self.lattice
    }
}

impl fmt::Debug for MlsScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}, C{}", a.name, i + 1)?;
        }
        write!(f, ", TC)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multilog_lattice::standard;

    fn lat() -> Arc<SecurityLattice> {
        Arc::new(standard::military())
    }

    #[test]
    fn scheme_accessors() {
        let l = lat();
        let s = MlsScheme::unconstrained("mission", l, &["starship", "objective", "destination"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key_name(), "starship");
        assert_eq!(s.attr_index("objective").unwrap(), 1);
        assert!(s.attr_index("missing").is_err());
        assert_eq!(
            format!("{s:?}"),
            "mission(starship, C1, objective, C2, destination, C3, TC)"
        );
    }

    #[test]
    fn explicit_ranges_validated() {
        let l = lat();
        let u = l.label("U").unwrap();
        let s = l.label("S").unwrap();
        let ok = MlsScheme::new("r", l.clone(), vec![("k".into(), u, s), ("a".into(), u, u)]);
        assert!(ok.is_ok());
        let bad = MlsScheme::new("r", l, vec![("k".into(), s, u)]);
        assert!(bad.is_err());
    }

    #[test]
    #[should_panic(expected = "at least the key attribute")]
    fn empty_scheme_panics() {
        let _ = MlsScheme::unconstrained("r", lat(), &[]);
    }
}
