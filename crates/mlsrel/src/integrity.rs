//! The core integrity properties of Definition 5.4 (carried over from
//! Jajodia–Sandhu):
//!
//! * **Entity integrity** — the apparent key is non-null, uniformly
//!   classified, and every non-key classification dominates the key
//!   classification.
//! * **Null integrity** — nulls are classified at the key class, and no
//!   two distinct tuples subsume one another.
//! * **Polyinstantiation integrity** — the functional dependency
//!   `AK, C_AK, C_i → A_i` holds for every data attribute.

use crate::relation::MlsRelation;
use crate::scheme::MlsScheme;
use crate::tuple::MlsTuple;
use crate::{MlsError, Result};

/// Per-tuple checks (entity integrity and the null-classification half of
/// null integrity). Called on every insert into a base relation.
pub fn check_tuple(scheme: &MlsScheme, t: &MlsTuple) -> Result<()> {
    let lat = scheme.lattice();
    let key_class = t.key_class();
    // Entity integrity: every key attribute non-null and uniformly
    // classified (Def 5.4: "AK is uniformly classified").
    for i in scheme.key_indices() {
        if t.values[i].is_null() {
            return Err(MlsError::EntityIntegrity {
                detail: format!("apparent key of {scheme:?} is ⊥"),
            });
        }
        if t.classes[i] != key_class {
            return Err(MlsError::EntityIntegrity {
                detail: format!(
                    "key attribute {} classified {} but the key class is {}",
                    scheme.attrs()[i].name,
                    lat.name(t.classes[i]),
                    lat.name(key_class)
                ),
            });
        }
    }
    // Entity integrity: c_i ⪰ c_AK for non-key attributes.
    for (i, (&c, v)) in t
        .classes
        .iter()
        .zip(&t.values)
        .enumerate()
        .skip(scheme.key_width())
    {
        if !lat.leq(key_class, c) {
            return Err(MlsError::EntityIntegrity {
                detail: format!(
                    "class of attribute {} ({}) does not dominate key class {}",
                    scheme.attrs()[i].name,
                    lat.name(c),
                    lat.name(key_class)
                ),
            });
        }
        // Null integrity: nulls classified at the key class.
        if v.is_null() && c != key_class {
            return Err(MlsError::NullIntegrity {
                detail: format!(
                    "⊥ in attribute {} classified {} instead of key class {}",
                    scheme.attrs()[i].name,
                    lat.name(c),
                    lat.name(key_class)
                ),
            });
        }
    }
    Ok(())
}

/// Instance-level checks: subsumption-freedom and polyinstantiation
/// integrity.
pub fn check_relation(rel: &MlsRelation) -> Result<()> {
    for t in rel.tuples() {
        check_tuple(rel.scheme(), t)?;
    }
    check_subsumption_free(rel)?;
    check_polyinstantiation(rel)
}

/// Null integrity, second half: no tuple strictly subsumes another.
///
/// Tuples with identical data but different `TC` (the same information
/// asserted at several levels, like Figure 1's t2/t6/t7) mutually subsume
/// but belong to different level instances, so only *strict* subsumption
/// is a violation of the stored relation.
pub fn check_subsumption_free(rel: &MlsRelation) -> Result<()> {
    let ts = rel.tuples();
    for (i, a) in ts.iter().enumerate() {
        for b in &ts[i + 1..] {
            if a.strictly_subsumes(b) || b.strictly_subsumes(a) {
                return Err(MlsError::NullIntegrity {
                    detail: format!("tuples {:?} and {:?} subsume one another", a, b),
                });
            }
        }
    }
    Ok(())
}

/// Polyinstantiation integrity: `AK, C_AK, C_i → A_i`.
pub fn check_polyinstantiation(rel: &MlsRelation) -> Result<()> {
    let ts = rel.tuples();
    for (i, a) in ts.iter().enumerate() {
        for b in &ts[i + 1..] {
            if a.key() != b.key() || a.key_class() != b.key_class() {
                continue;
            }
            for (idx, ((va, ca), (vb, cb))) in a
                .values
                .iter()
                .zip(&a.classes)
                .zip(b.values.iter().zip(&b.classes))
                .enumerate()
            {
                if ca == cb && va != vb {
                    return Err(MlsError::PolyinstantiationIntegrity {
                        detail: format!(
                            "key {} at class {} has two values for attribute {} at class {}: {} vs {}",
                            a.key(),
                            rel.lattice().name(a.key_class()),
                            rel.scheme().attrs()[idx].name,
                            rel.lattice().name(*ca),
                            va,
                            vb
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use multilog_lattice::standard;
    use std::sync::Arc;

    fn rel() -> MlsRelation {
        let lat = Arc::new(standard::mission_levels());
        MlsRelation::new(MlsScheme::unconstrained("r", lat, &["k", "a", "b"]))
    }

    fn tup(r: &MlsRelation, vals: [&str; 3], cls: [&str; 3], tc: &str) -> MlsTuple {
        let lat = r.lattice();
        MlsTuple::new(
            vals.iter()
                .map(|v| {
                    if *v == "_" {
                        Value::Null
                    } else {
                        Value::str(*v)
                    }
                })
                .collect(),
            cls.iter().map(|c| lat.label(c).unwrap()).collect(),
            lat.label(tc).unwrap(),
        )
    }

    #[test]
    fn null_key_rejected() {
        let mut r = rel();
        let t = tup(&r, ["_", "x", "y"], ["U", "U", "U"], "U");
        assert!(matches!(r.insert(t), Err(MlsError::EntityIntegrity { .. })));
    }

    #[test]
    fn attr_class_below_key_class_rejected() {
        let mut r = rel();
        let t = tup(&r, ["k1", "x", "y"], ["S", "U", "S"], "S");
        assert!(matches!(r.insert(t), Err(MlsError::EntityIntegrity { .. })));
    }

    #[test]
    fn null_misclassified_rejected() {
        let mut r = rel();
        let t = tup(&r, ["k1", "_", "y"], ["U", "S", "U"], "S");
        assert!(matches!(r.insert(t), Err(MlsError::NullIntegrity { .. })));
    }

    #[test]
    fn null_at_key_class_accepted() {
        let mut r = rel();
        let t = tup(&r, ["k1", "_", "y"], ["U", "U", "U"], "U");
        r.insert(t).unwrap();
        r.check_integrity().unwrap();
    }

    #[test]
    fn subsumed_pair_rejected() {
        let mut r = rel();
        r.insert(tup(&r.clone(), ["k1", "x", "y"], ["U", "U", "U"], "U"))
            .unwrap();
        r.insert(tup(&r.clone(), ["k1", "_", "y"], ["U", "U", "U"], "S"))
            .unwrap();
        assert!(matches!(
            r.check_integrity(),
            Err(MlsError::NullIntegrity { .. })
        ));
    }

    #[test]
    fn polyinstantiation_integrity_violation() {
        let mut r = rel();
        // Same key, same key class, same attr class, different values.
        r.insert(tup(&r.clone(), ["k1", "x", "y"], ["U", "C", "U"], "C"))
            .unwrap();
        r.insert(tup(&r.clone(), ["k1", "z", "y2"], ["U", "C", "C"], "C"))
            .unwrap();
        assert!(matches!(
            r.check_integrity(),
            Err(MlsError::PolyinstantiationIntegrity { .. })
        ));
    }

    #[test]
    fn polyinstantiated_at_different_classes_ok() {
        let mut r = rel();
        // Same key & key class, attribute differs at *different* classes:
        // legal polyinstantiation (a cover story).
        r.insert(tup(&r.clone(), ["k1", "x", "y"], ["U", "U", "U"], "U"))
            .unwrap();
        r.insert(tup(&r.clone(), ["k1", "z", "y"], ["U", "S", "U"], "S"))
            .unwrap();
        r.check_integrity().unwrap();
    }

    #[test]
    fn mission_relation_is_consistent() {
        // The paper asserts Figure 1 satisfies polyinstantiation integrity.
        let (_, m) = crate::mission::mission_relation();
        m.check_integrity().unwrap();
    }
}
