//! Error type for the MLS relational model.

use std::fmt;

use multilog_lattice::LatticeError;

/// Errors raised by scheme construction, integrity checking, and updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlsError {
    /// Underlying lattice error (unknown label, etc.).
    Lattice(LatticeError),
    /// A tuple has the wrong number of values/classes for its scheme.
    ArityMismatch {
        /// Scheme name.
        relation: String,
        /// Expected attribute count.
        expected: usize,
        /// Provided count.
        found: usize,
    },
    /// Entity integrity violation: null key, non-uniform key class, or a
    /// non-key class below the key class.
    EntityIntegrity {
        /// Description of the violation.
        detail: String,
    },
    /// Null integrity violation: a null classified away from the key
    /// class, or a relation containing subsumed tuples.
    NullIntegrity {
        /// Description of the violation.
        detail: String,
    },
    /// Polyinstantiation integrity violation: `AK, C_AK, C_i → A_i` fails.
    PolyinstantiationIntegrity {
        /// Description of the violation.
        detail: String,
    },
    /// An update addressed a tuple that is not visible at the subject's
    /// level (Bell–LaPadula simple security).
    NotVisible {
        /// The key that was addressed.
        key: String,
        /// The subject's level.
        level: String,
    },
    /// A write would violate the ★-property (no write down).
    WriteDown {
        /// The subject's level.
        subject: String,
        /// The object's level.
        object: String,
    },
    /// The named attribute does not exist in the scheme.
    UnknownAttribute(String),
    /// An insert collided with an existing tuple at the same key and key
    /// class without polyinstantiation being requested.
    DuplicateKey {
        /// The key value.
        key: String,
        /// The key class.
        class: String,
    },
}

impl fmt::Display for MlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlsError::Lattice(e) => write!(f, "lattice error: {e}"),
            MlsError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "tuple arity {found} does not match scheme `{relation}` ({expected} attributes)"
            ),
            MlsError::EntityIntegrity { detail } => {
                write!(f, "entity integrity violation: {detail}")
            }
            MlsError::NullIntegrity { detail } => {
                write!(f, "null integrity violation: {detail}")
            }
            MlsError::PolyinstantiationIntegrity { detail } => {
                write!(f, "polyinstantiation integrity violation: {detail}")
            }
            MlsError::NotVisible { key, level } => {
                write!(f, "no tuple with key `{key}` is visible at level {level}")
            }
            MlsError::WriteDown { subject, object } => write!(
                f,
                "★-property violation: subject at {subject} cannot write object at {object}"
            ),
            MlsError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            MlsError::DuplicateKey { key, class } => write!(
                f,
                "insert collides with existing tuple for key `{key}` at class {class}"
            ),
        }
    }
}

impl std::error::Error for MlsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlsError::Lattice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LatticeError> for MlsError {
    fn from(e: LatticeError) -> Self {
        MlsError::Lattice(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MlsError::WriteDown {
            subject: "S".into(),
            object: "U".into(),
        };
        assert!(e.to_string().contains("write"));
        let e: MlsError = LatticeError::Empty.into();
        assert!(e.to_string().contains("lattice"));
    }
}
