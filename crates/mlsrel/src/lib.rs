//! The multilevel-secure (MLS) relational model: schemes, instances,
//! views, polyinstantiation, and belief modes.
//!
//! This crate implements the relational substrate of *"Belief Reasoning in
//! MLS Deductive Databases"* (Jamil, SIGMOD 1999):
//!
//! * the Jajodia–Sandhu multilevel relational model of §2 — schemes with
//!   per-attribute classification, tuple class `TC`, apparent keys, the
//!   view at an access class `c` including the filter function σ and
//!   subsumption elimination ([`view`]);
//! * the core integrity properties (entity, null, subsumption-freedom,
//!   polyinstantiation integrity) of Definition 5.4 ([`integrity`]);
//! * update operations with *required polyinstantiation* so that the
//!   paper's `Mission` scenario — including the *surprise stories* t4/t5 —
//!   can be replayed from first principles ([`ops`]);
//! * the parametric belief function β of Definition 3.1 with the `firm`,
//!   `optimistic` and `cautious` modes ([`belief`]);
//! * the Jukic–Vrbsky belief-label model of §3 (Figures 4 and 5),
//!   reconstructed from assertion histories ([`jv`]);
//! * Cuppens' additive / suspicious / trusted views, which the paper
//!   claims are subsumed by the three MultiLog modes ([`cuppens`]);
//! * a small query layer with `believed <mode>` predicates implementing
//!   the §3.2 extended-SQL example ([`query`]);
//! * the `Mission` relation of Figure 1 and its update history
//!   ([`mission`]).
//!
//! # Example
//!
//! ```
//! use multilog_mlsrel::{mission, belief::{believe, BeliefMode}};
//!
//! let (lattice, rel) = mission::mission_relation();
//! let c = lattice.label("C").unwrap();
//! let firm = believe(&rel, c, BeliefMode::Firm).unwrap();
//! assert_eq!(firm.len(), 1); // Figure 6: only the Atlantis tuple
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod belief;
pub mod cuppens;
mod error;
pub mod integrity;
pub mod jv;
pub mod mission;
pub mod ops;
pub mod query;
mod relation;
mod scheme;
mod tuple;
mod value;
pub mod view;

pub use error::MlsError;
pub use relation::MlsRelation;
pub use scheme::MlsScheme;
pub use tuple::MlsTuple;
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MlsError>;
