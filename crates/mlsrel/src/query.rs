//! A small relational query layer with `believed <mode>` predicates —
//! the extended-SQL surface sketched in §3.2 of the paper.
//!
//! The §3.2 query
//!
//! ```sql
//! user context u
//! select starship from mission m where m.starship in
//!   (select starship from mission
//!    where destination = mars and objective = spying believed cautiously)
//!   intersect (… believed firmly)
//!   intersect (… believed optimistically)
//! ```
//!
//! is expressed as a [`Select`] per mode plus [`intersect_columns`], or in
//! one call with [`believed_in_all_modes`].

use multilog_lattice::Label;

use crate::belief::{believe, BeliefMode};
use crate::relation::MlsRelation;
use crate::value::Value;
use crate::Result;

/// A simple select over one relation: equality conditions, a projection,
/// and an optional belief mode. Without a mode the query runs against the
/// Jajodia–Sandhu view at the user's level (visibility only).
#[derive(Clone, Debug)]
pub struct Select {
    /// Attribute names to project, in order.
    pub projection: Vec<String>,
    /// `attr = value` conjunctive conditions.
    pub conditions: Vec<(String, Value)>,
    /// Belief mode; `None` = raw view semantics.
    pub mode: Option<BeliefMode>,
}

impl Select {
    /// A projection-only query.
    pub fn all(projection: &[&str]) -> Self {
        Select {
            projection: projection.iter().map(|s| (*s).to_owned()).collect(),
            conditions: Vec::new(),
            mode: None,
        }
    }

    /// Add an equality condition.
    pub fn filter(mut self, attr: &str, value: impl Into<Value>) -> Self {
        self.conditions.push((attr.to_owned(), value.into()));
        self
    }

    /// Set the belief mode (`believed <mode>`).
    pub fn believed(mut self, mode: BeliefMode) -> Self {
        self.mode = Some(mode);
        self
    }
}

/// Run a select at the given user level. Rows are deduplicated and sorted
/// for deterministic output.
pub fn select(rel: &MlsRelation, level: Label, q: &Select) -> Result<Vec<Vec<Value>>> {
    let base = match q.mode {
        Some(mode) => believe(rel, level, mode)?,
        None => crate::view::view_at(rel, level),
    };
    let scheme = base.scheme();
    let proj: Vec<usize> = q
        .projection
        .iter()
        .map(|a| scheme.attr_index(a))
        .collect::<Result<_>>()?;
    let conds: Vec<(usize, &Value)> = q
        .conditions
        .iter()
        .map(|(a, v)| Ok((scheme.attr_index(a)?, v)))
        .collect::<Result<_>>()?;
    let mut rows: Vec<Vec<Value>> = base
        .tuples()
        .iter()
        .filter(|t| conds.iter().all(|&(i, v)| &t.values[i] == v))
        .map(|t| proj.iter().map(|&i| t.values[i].clone()).collect())
        .collect();
    rows.sort();
    rows.dedup();
    Ok(rows)
}

/// Intersect single-column result sets (the SQL `intersect`).
pub fn intersect_columns(sets: &[Vec<Vec<Value>>]) -> Vec<Vec<Value>> {
    let Some((first, rest)) = sets.split_first() else {
        return Vec::new();
    };
    first
        .iter()
        .filter(|row| rest.iter().all(|s| s.contains(row)))
        .cloned()
        .collect()
}

/// The §3.2 pattern in one call: project `projection` from the tuples
/// matching `conditions` that are believed at `level` in **every** belief
/// mode ("without any doubt").
pub fn believed_in_all_modes(
    rel: &MlsRelation,
    level: Label,
    projection: &[&str],
    conditions: &[(&str, Value)],
) -> Result<Vec<Vec<Value>>> {
    let mut per_mode = Vec::with_capacity(3);
    for mode in BeliefMode::all() {
        let mut q = Select::all(projection).believed(mode);
        for (a, v) in conditions {
            q = q.filter(a, v.clone());
        }
        per_mode.push(select(rel, level, &q)?);
    }
    Ok(intersect_columns(&per_mode))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mission;

    #[test]
    fn spying_on_mars_without_any_doubt() {
        // The §3.2 example at user context S: only Voyager is believed to
        // be spying on Mars in all three modes.
        let (lat, rel) = mission::mission_relation();
        let s = lat.label("S").unwrap();
        let result = believed_in_all_modes(
            &rel,
            s,
            &["Starship"],
            &[
                ("Destination", Value::str("Mars")),
                ("Objective", Value::str("Spying")),
            ],
        )
        .unwrap();
        assert_eq!(result, vec![vec![Value::str("Voyager")]]);
    }

    #[test]
    fn spying_on_mars_at_u_is_empty() {
        // A U user cannot see the spying objective at all.
        let (lat, rel) = mission::mission_relation();
        let u = lat.label("U").unwrap();
        let result = believed_in_all_modes(
            &rel,
            u,
            &["Starship"],
            &[
                ("Destination", Value::str("Mars")),
                ("Objective", Value::str("Spying")),
            ],
        )
        .unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn per_mode_disagreement() {
        // "Training on Mars": firmly believed at U, but at S the cautious
        // mode overrides Training with Spying, so the intersection is
        // empty at S while the optimistic mode alone still returns it.
        let (lat, rel) = mission::mission_relation();
        let s = lat.label("S").unwrap();
        let opt = select(
            &rel,
            s,
            &Select::all(&["Starship"])
                .filter("Objective", Value::str("Training"))
                .believed(BeliefMode::Optimistic),
        )
        .unwrap();
        assert_eq!(opt, vec![vec![Value::str("Voyager")]]);
        let all = believed_in_all_modes(
            &rel,
            s,
            &["Starship"],
            &[("Objective", Value::str("Training"))],
        )
        .unwrap();
        assert!(all.is_empty());
    }

    #[test]
    fn view_semantics_without_mode() {
        let (lat, rel) = mission::mission_relation();
        let u = lat.label("U").unwrap();
        let q = Select::all(&["Starship"]);
        let rows = select(&rel, u, &q).unwrap();
        // Figure 2: Phantom, Atlantis, Voyager, Falcon, Eagle (sorted).
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn projection_of_multiple_columns() {
        let (lat, rel) = mission::mission_relation();
        let c = lat.label("C").unwrap();
        let q = Select::all(&["Starship", "Destination"]).believed(BeliefMode::Firm);
        let rows = select(&rel, c, &q).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::str("Atlantis"), Value::str("Vulcan")]]
        );
    }

    #[test]
    fn unknown_attribute_errors() {
        let (lat, rel) = mission::mission_relation();
        let u = lat.label("U").unwrap();
        let q = Select::all(&["Captain"]);
        assert!(select(&rel, u, &q).is_err());
    }

    #[test]
    fn intersect_empty_input() {
        assert!(intersect_columns(&[]).is_empty());
    }
}
