//! The Jajodia–Sandhu view at an access class `c` (Definition 2.3 plus
//! the filter function σ and subsumption elimination).
//!
//! A tuple belongs to the view at `c` iff its apparent-key classification
//! is dominated by `c`. Attribute values whose classification exceeds `c`
//! are replaced by `⊥` *classified at the key class* — this is the σ of
//! \[12\] and the mechanism that surfaces the paper's surprise stories
//! (Figure 3's t4/t5). The displayed tuple class is the stored `TC`
//! clipped to the view level. Finally, tuples strictly subsumed by another
//! view tuple are dropped, and data-identical tuples keep only the copy
//! with the highest (clipped) tuple class.

use multilog_lattice::Label;

use crate::relation::MlsRelation;
use crate::tuple::MlsTuple;
use crate::value::Value;

/// Options controlling view computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewOptions {
    /// Apply the filter function σ (null out invisible attributes). When
    /// `false`, tuples with any invisible attribute are dropped entirely —
    /// the behaviour MultiLog adopts by *not* implementing σ (§7).
    pub filter_sigma: bool,
    /// Apply subsumption elimination.
    pub eliminate_subsumed: bool,
}

impl Default for ViewOptions {
    fn default() -> Self {
        ViewOptions {
            filter_sigma: true,
            eliminate_subsumed: true,
        }
    }
}

/// Compute the view of `rel` at access class `c` with default options
/// (σ + subsumption) — the Jajodia–Sandhu semantics of Figures 2 and 3.
pub fn view_at(rel: &MlsRelation, c: Label) -> MlsRelation {
    view_at_with(rel, c, ViewOptions::default())
}

/// Compute the view of `rel` at access class `c` with explicit options.
pub fn view_at_with(rel: &MlsRelation, c: Label, opts: ViewOptions) -> MlsRelation {
    let lat = rel.lattice().clone();
    let mut out = MlsRelation::new(rel.scheme().clone());
    // (projected tuple, was the TC clipped?) in stored order.
    let mut candidates: Vec<(MlsTuple, bool)> = Vec::new();

    for t in rel.tuples() {
        // Key visibility gates the whole tuple.
        if !lat.leq(t.key_class(), c) {
            continue;
        }
        let mut values = Vec::with_capacity(t.arity());
        let mut classes = Vec::with_capacity(t.arity());
        let mut hidden = false;
        for (v, &cl) in t.values.iter().zip(&t.classes) {
            if lat.leq(cl, c) {
                values.push(v.clone());
                classes.push(cl);
            } else {
                hidden = true;
                // σ: null classified at the key class.
                values.push(Value::Null);
                classes.push(t.key_class());
            }
        }
        if hidden && !opts.filter_sigma {
            continue;
        }
        // Displayed TC: the stored class when visible, otherwise clipped
        // to the view level.
        let clipped = !lat.leq(t.tc, c);
        let tc = if clipped { c } else { t.tc };
        candidates.push((MlsTuple::new(values, classes, tc), clipped));
    }

    if opts.eliminate_subsumed {
        candidates = eliminate_subsumed(&lat, candidates);
    }
    for (t, _) in candidates {
        out.insert_unchecked(t);
    }
    out
}

/// Subsumption elimination within a view:
///
/// * drop tuples strictly subsumed by another candidate;
/// * among data-identical tuples (mutual subsumption — same values and
///   classes, possibly different `TC`) keep the copy whose displayed `TC`
///   is maximal, preferring a copy whose `TC` was not clipped (the copy
///   the paper labels as the surviving tuple id); incomparable `TC`s keep
///   all copies.
fn eliminate_subsumed(
    lat: &multilog_lattice::SecurityLattice,
    candidates: Vec<(MlsTuple, bool)>,
) -> Vec<(MlsTuple, bool)> {
    let mut keep: Vec<bool> = vec![true; candidates.len()];
    for (i, (a, a_clipped)) in candidates.iter().enumerate() {
        for (j, (b, b_clipped)) in candidates.iter().enumerate() {
            if i == j || !keep[i] {
                continue;
            }
            if b.strictly_subsumes(a) {
                keep[i] = false;
                continue;
            }
            if !(a.subsumes(b) && b.subsumes(a)) {
                continue;
            }
            // Data-identical copies: drop `a` when `b` is strictly
            // better (higher TC, or unclipped at equal TC), or when it is
            // a later pure duplicate.
            let b_better = lat.lt(a.tc, b.tc) || (a.tc == b.tc && *a_clipped && !b_clipped);
            let later_duplicate = a.tc == b.tc && *a_clipped == *b_clipped && i > j;
            if b_better || later_duplicate {
                keep[i] = false;
            }
        }
    }
    candidates
        .into_iter()
        .zip(keep)
        .filter_map(|(t, k)| k.then_some(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mission;

    /// Render a view for compact assertions: rows of `render()` output.
    fn rows(rel: &MlsRelation) -> Vec<String> {
        let lat = rel.lattice();
        rel.tuples().iter().map(|t| t.render(lat)).collect()
    }

    #[test]
    fn figure2_u_level_view() {
        let (lat, rel) = mission::mission_relation();
        let u = lat.label("U").unwrap();
        let v = view_at(&rel, u);
        let got = rows(&v);
        let expected = vec![
            "Phantom U | ⊥ U | Omega U | U",           // t4 (surprise story)
            "Atlantis U | Diplomacy U | Vulcan U | U", // t7 (subsumes t2, t6)
            "Voyager U | Training U | Mars U | U",     // t8 (subsumes t3)
            "Falcon U | Piracy U | Venus U | U",       // t9
            "Eagle U | Patrolling U | Degoba U | U",   // t10
        ];
        assert_eq!(got, expected, "view:\n{}", v.render());
    }

    #[test]
    fn figure3_c_level_view() {
        let (lat, rel) = mission::mission_relation();
        let c = lat.label("C").unwrap();
        let v = view_at(&rel, c);
        let got = rows(&v);
        let expected = vec![
            "Phantom U | ⊥ U | Omega U | C",           // t4
            "Phantom C | ⊥ C | ⊥ C | C",               // t5
            "Atlantis U | Diplomacy U | Vulcan U | C", // t6 (highest TC copy)
            "Voyager U | Training U | Mars U | U",     // t8 (subsumes t3's projection)
            "Falcon U | Piracy U | Venus U | U",       // t9
            "Eagle U | Patrolling U | Degoba U | U",   // t10
        ];
        assert_eq!(got, expected, "view:\n{}", v.render());
    }

    #[test]
    fn s_level_view_is_whole_relation() {
        // §3: "the following query … would produce the entire Mission
        // relation when submitted by an user with a S level clearance".
        // With subsumption elimination disabled the S view is exactly
        // Figure 1; the default view additionally collapses the three
        // data-identical Atlantis assertions (t2/t6/t7) onto the highest.
        let (lat, rel) = mission::mission_relation();
        let s = lat.label("S").unwrap();
        let raw = view_at_with(
            &rel,
            s,
            ViewOptions {
                filter_sigma: true,
                eliminate_subsumed: false,
            },
        );
        assert_eq!(raw.len(), rel.len());
        assert!(raw.same_tuples(&rel));
        let v = view_at(&rel, s);
        assert_eq!(v.len(), 8);
        assert_eq!(v.by_key(&crate::Value::str("Atlantis")).count(), 1);
    }

    #[test]
    fn without_sigma_surprise_stories_vanish() {
        let (lat, rel) = mission::mission_relation();
        let c = lat.label("C").unwrap();
        let v = view_at_with(
            &rel,
            c,
            ViewOptions {
                filter_sigma: false,
                eliminate_subsumed: true,
            },
        );
        // t4 and t5 (which would need σ-nulls) are gone; no nulls anywhere.
        assert!(v.tuples().iter().all(|t| !t.has_null()));
        assert_eq!(v.len(), 4); // Atlantis, Voyager(t8), Falcon, Eagle
    }

    #[test]
    fn without_subsumption_all_copies_visible() {
        let (lat, rel) = mission::mission_relation();
        let u = lat.label("U").unwrap();
        let v = view_at_with(
            &rel,
            u,
            ViewOptions {
                filter_sigma: true,
                eliminate_subsumed: false,
            },
        );
        // t2/t6/t7 clip to the same U tuple (deduplicated by set
        // semantics); t3's projection additionally survives.
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn view_tuples_tc_never_exceeds_level() {
        let (lat, rel) = mission::mission_relation();
        for level in ["U", "C", "S"] {
            let l = lat.label(level).unwrap();
            for t in view_at(&rel, l).tuples() {
                assert!(lat.leq(t.tc, l));
            }
        }
    }

    #[test]
    fn empty_relation_empty_view() {
        let (lat, scheme) = mission::mission_scheme();
        let rel = MlsRelation::new(scheme);
        let u = lat.label("U").unwrap();
        assert!(view_at(&rel, u).is_empty());
    }
}
