//! Cuppens' views of a multilevel database (§3.1 of the paper cites the
//! *additive*, *suspicious*, and *trusted* views of \[7\]) and the paper's
//! claim that MultiLog's three belief modes subsume them.
//!
//! Cuppens works at *tuple* granularity:
//!
//! * **additive** — a level believes everything every dominated level
//!   asserts;
//! * **suspicious** — a level believes only what was asserted at its own
//!   level (everything below might be a cover story);
//! * **trusted** — per entity, believe the assertion of the highest
//!   dominated level (the most trusted source).
//!
//! The correspondence exercised by the tests:
//!
//! * additive  = β optimistic (exactly);
//! * suspicious = β firm (exactly);
//! * trusted   = β cautious whenever classifications are uniform per
//!   tuple; β cautious is strictly finer-grained otherwise (it overrides
//!   per *attribute*), which is the sense in which MultiLog subsumes
//!   Cuppens.

use multilog_lattice::Label;

use crate::belief::{believe, BeliefMode};
use crate::relation::MlsRelation;
use crate::tuple::MlsTuple;
use crate::value::Value;
use crate::Result;

/// Cuppens' additive view at `s`: the union of all visible tuples,
/// re-tagged to `s`.
pub fn additive(rel: &MlsRelation, s: Label) -> MlsRelation {
    let lat = rel.lattice().clone();
    let mut out = MlsRelation::new(rel.scheme().clone());
    for t in rel.tuples() {
        if lat.leq(t.tc, s) {
            let mut b = t.clone();
            b.tc = s;
            out.insert_unchecked(b);
        }
    }
    out
}

/// Cuppens' suspicious view at `s`: own-level assertions only.
pub fn suspicious(rel: &MlsRelation, s: Label) -> MlsRelation {
    let mut out = MlsRelation::new(rel.scheme().clone());
    for t in rel.tuples() {
        if t.tc == s {
            out.insert_unchecked(t.clone());
        }
    }
    out
}

/// Cuppens' trusted view at `s`: per `(key, key class)`, keep the visible
/// tuples whose `TC` is maximal (not strictly dominated by another visible
/// tuple's `TC` for the same entity), re-tagged to `s`.
pub fn trusted(rel: &MlsRelation, s: Label) -> MlsRelation {
    let lat = rel.lattice().clone();
    let mut out = MlsRelation::new(rel.scheme().clone());
    let visible: Vec<&MlsTuple> = rel.visible_at(s).collect();
    let kw = rel.scheme().key_width();
    for t in &visible {
        let beaten = visible.iter().any(|w| {
            w.key_slice(kw) == t.key_slice(kw)
                && w.key_class() == t.key_class()
                && lat.lt(t.tc, w.tc)
        });
        if !beaten {
            let mut b = (*t).clone();
            b.tc = s;
            out.insert_unchecked(b);
        }
    }
    out
}

/// Convenience: compute the MultiLog mode that subsumes a Cuppens view.
pub fn subsuming_mode(view: &str) -> Option<BeliefMode> {
    match view {
        "additive" => Some(BeliefMode::Optimistic),
        "suspicious" => Some(BeliefMode::Firm),
        "trusted" => Some(BeliefMode::Cautious),
        _ => None,
    }
}

/// Check the subsumption claims on a concrete relation and level,
/// returning `(additive == optimistic, suspicious == firm)`. The trusted/
/// cautious relationship is exact only for uniformly classified tuples,
/// so it is checked separately by the tests.
pub fn check_subsumption(rel: &MlsRelation, s: Label) -> Result<(bool, bool)> {
    let add = additive(rel, s);
    let opt = believe(rel, s, BeliefMode::Optimistic)?;
    let sus = suspicious(rel, s);
    let fir = believe(rel, s, BeliefMode::Firm)?;
    Ok((add.same_tuples(&opt), sus.same_tuples(&fir)))
}

/// Whether every tuple of the relation is uniformly classified (all
/// columns at `TC`) — the fragment on which trusted == cautious.
pub fn uniformly_classified(rel: &MlsRelation) -> bool {
    rel.tuples()
        .iter()
        .all(|t| t.classes.iter().all(|&c| c == t.tc))
}

/// Restrict a relation to the distinct key values it mentions — helper
/// for comparing views entity-wise in tests.
pub fn keys(rel: &MlsRelation) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    for t in rel.tuples() {
        if !out.contains(t.key()) {
            out.push(t.key().clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mission;
    use crate::scheme::MlsScheme;
    use multilog_lattice::standard;
    use std::sync::Arc;

    #[test]
    fn additive_equals_optimistic_on_mission() {
        let (lat, rel) = mission::mission_relation();
        for level in ["U", "C", "S"] {
            let s = lat.label(level).unwrap();
            let (add_eq, sus_eq) = check_subsumption(&rel, s).unwrap();
            assert!(add_eq, "additive != optimistic at {level}");
            assert!(sus_eq, "suspicious != firm at {level}");
        }
    }

    #[test]
    fn trusted_equals_cautious_on_uniform_relations() {
        // A uniformly classified relation: every column classified at TC.
        let lat = Arc::new(standard::mission_levels());
        let scheme = MlsScheme::unconstrained("r", lat.clone(), &["k", "a"]);
        let mut rel = MlsRelation::new(scheme);
        let (u, c, s) = (
            lat.label("U").unwrap(),
            lat.label("C").unwrap(),
            lat.label("S").unwrap(),
        );
        rel.insert(MlsTuple::new(
            vec![Value::str("k1"), Value::str("low")],
            vec![u, u],
            u,
        ))
        .unwrap();
        rel.insert(MlsTuple::new(
            vec![Value::str("k1"), Value::str("high")],
            vec![u, c],
            c,
        ))
        .unwrap();
        rel.insert(MlsTuple::new(
            vec![Value::str("k2"), Value::str("solo")],
            vec![u, u],
            u,
        ))
        .unwrap();
        assert!(!uniformly_classified(&rel)); // the c tuple has key class u
        let t = trusted(&rel, s);
        let cau = believe(&rel, s, BeliefMode::Cautious).unwrap();
        // Entity k1: trusted keeps the C assertion; cautious overrides the
        // `a` attribute with the C-classified value — same result here
        // because the C tuple dominates attribute-wise too.
        assert_eq!(keys(&t), keys(&cau));
        let k1_trusted: Vec<_> = t.by_key(&Value::str("k1")).collect();
        let k1_cautious: Vec<_> = cau.by_key(&Value::str("k1")).collect();
        assert_eq!(k1_trusted.len(), 1);
        assert_eq!(k1_cautious.len(), 1);
        assert_eq!(k1_trusted[0].values[1], k1_cautious[0].values[1]);
    }

    #[test]
    fn cautious_is_finer_grained_than_trusted() {
        // Two tuples for the same entity where the *lower*-TC tuple holds
        // the higher-classified attribute value: tuple-granularity trusted
        // keeps the higher-TC tuple wholesale; attribute-granularity
        // cautious mixes, proving the modes are not equivalent — cautious
        // can express trusted's outcome plus attribute mixing.
        let lat = Arc::new(standard::mission_levels());
        let scheme = MlsScheme::unconstrained("r", lat.clone(), &["k", "a", "b"]);
        let mut rel = MlsRelation::new(scheme);
        let (u, c, s) = (
            lat.label("U").unwrap(),
            lat.label("C").unwrap(),
            lat.label("S").unwrap(),
        );
        // C-level tuple with an S-classified attribute `a`.
        rel.insert(MlsTuple::new(
            vec![
                Value::str("k1"),
                Value::str("secret_a"),
                Value::str("b_old"),
            ],
            vec![u, s, c],
            s,
        ))
        .unwrap();
        // A later S-level tuple with a C-classified `a`.
        rel.insert(MlsTuple::new(
            vec![Value::str("k1"), Value::str("weak_a"), Value::str("b_new")],
            vec![u, c, s],
            s,
        ))
        .unwrap();
        let cau = believe(&rel, s, BeliefMode::Cautious).unwrap();
        // Cautious at S picks `secret_a` (class S beats C) and `b_new`
        // (class S beats C) — a mix of the two tuples.
        let k1: Vec<_> = cau.by_key(&Value::str("k1")).collect();
        assert_eq!(k1.len(), 1);
        assert_eq!(k1[0].values[1], Value::str("secret_a"));
        assert_eq!(k1[0].values[2], Value::str("b_new"));
        // Trusted cannot produce that mixed tuple.
        let t = trusted(&rel, s);
        assert!(t.tuples().iter().all(|tt| {
            !(tt.values[1] == Value::str("secret_a") && tt.values[2] == Value::str("b_new"))
        }));
    }

    #[test]
    fn trusted_on_mission_at_c() {
        let (lat, rel) = mission::mission_relation();
        let c = lat.label("C").unwrap();
        let t = trusted(&rel, c);
        // Entities at C: Atlantis (C assertion wins), Voyager, Falcon,
        // Eagle (single U assertions).
        assert_eq!(keys(&t).len(), 4);
        let atlantis: Vec<_> = t.by_key(&Value::str("Atlantis")).collect();
        assert_eq!(atlantis.len(), 1);
    }

    #[test]
    fn subsuming_mode_mapping() {
        assert_eq!(subsuming_mode("additive"), Some(BeliefMode::Optimistic));
        assert_eq!(subsuming_mode("suspicious"), Some(BeliefMode::Firm));
        assert_eq!(subsuming_mode("trusted"), Some(BeliefMode::Cautious));
        assert_eq!(subsuming_mode("other"), None);
    }
}
