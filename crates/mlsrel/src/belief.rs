//! The parametric belief function β of Definition 3.1.
//!
//! `β : R × S × μ → R` computes, from a stored multilevel relation, the
//! relation a rational agent at level `s` *believes* under a mode `m`:
//!
//! * **firm** — believe only tuples asserted at exactly the agent's level
//!   (`t[TC] = s`). Figure 6.
//! * **optimistic** — believe everything visible (`t[TC] ⪯ s`), re-tagged
//!   to the agent's level. Figure 7.
//! * **cautious** — inheritance with overriding: per apparent key, each
//!   attribute takes the visible value whose column classification is not
//!   strictly dominated by any other visible value's classification for
//!   that attribute. Figure 8. On a partial order several incomparable
//!   maxima may survive, yielding multiple believed tuples (the multiple-
//!   models phenomenon of §3.1).
//!
//! β deliberately does **not** apply the filter function σ, so the
//! σ-generated surprise stories (t4/t5 with `⊥`s) never enter any believed
//! relation — the paper's point at the end of §3.2.

use multilog_lattice::Label;

use crate::relation::MlsRelation;
use crate::tuple::MlsTuple;
use crate::value::Value;
use crate::Result;

/// The belief modes μ of Definition 3.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BeliefMode {
    /// Strict belief: own-level data only.
    Firm,
    /// Greedy belief: accumulate everything visible.
    Optimistic,
    /// Conservative belief: highest column classification wins.
    Cautious,
}

impl BeliefMode {
    /// The paper's shorthand (`fir`, `opt`, `cau`).
    pub fn short_name(self) -> &'static str {
        match self {
            BeliefMode::Firm => "fir",
            BeliefMode::Optimistic => "opt",
            BeliefMode::Cautious => "cau",
        }
    }

    /// Parse either the long or the short mode name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fir" | "firm" | "firmly" => Some(BeliefMode::Firm),
            "opt" | "optimistic" | "optimistically" => Some(BeliefMode::Optimistic),
            "cau" | "cautious" | "cautiously" => Some(BeliefMode::Cautious),
            _ => None,
        }
    }

    /// All three modes.
    pub fn all() -> [BeliefMode; 3] {
        [
            BeliefMode::Firm,
            BeliefMode::Optimistic,
            BeliefMode::Cautious,
        ]
    }
}

impl std::fmt::Display for BeliefMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Compute `β(rel, s, mode)`.
pub fn believe(rel: &MlsRelation, s: Label, mode: BeliefMode) -> Result<MlsRelation> {
    match mode {
        BeliefMode::Firm => Ok(firm(rel, s)),
        BeliefMode::Optimistic => Ok(optimistic(rel, s)),
        BeliefMode::Cautious => Ok(cautious(rel, s)),
    }
}

fn firm(rel: &MlsRelation, s: Label) -> MlsRelation {
    let mut out = MlsRelation::new(rel.scheme().clone());
    for t in rel.tuples() {
        if t.tc == s {
            out.insert_unchecked(t.clone());
        }
    }
    out
}

fn optimistic(rel: &MlsRelation, s: Label) -> MlsRelation {
    let lat = rel.lattice().clone();
    let mut out = MlsRelation::new(rel.scheme().clone());
    for t in rel.tuples() {
        if lat.leq(t.tc, s) {
            let mut believed = t.clone();
            believed.tc = s;
            out.insert_unchecked(believed);
        }
    }
    out
}

fn cautious(rel: &MlsRelation, s: Label) -> MlsRelation {
    let lat = rel.lattice().clone();
    let mut out = MlsRelation::new(rel.scheme().clone());
    let visible: Vec<&MlsTuple> = rel.visible_at(s).collect();
    let kw = rel.scheme().key_width();

    // One candidate group per distinct (key values, key class) among the
    // visible tuples (Def 3.1: ∃u visible with t[AK, C_AK] = u[AK, C_AK]).
    let mut seen_keys: Vec<(Vec<Value>, Label)> = Vec::new();
    for u in &visible {
        let key = (u.key_slice(kw).to_vec(), u.key_class());
        if seen_keys.contains(&key) {
            continue;
        }
        seen_keys.push(key);
    }

    for (key_values, key_class) in seen_keys {
        // Per attribute: the set of (value, class) pairs from visible
        // tuples with this key value whose class is maximal (no visible w
        // with v[C_i] ≺ w[C_i]).
        let same_key: Vec<&&MlsTuple> = visible
            .iter()
            .filter(|t| t.key_slice(kw) == key_values.as_slice())
            .collect();
        let arity = rel.scheme().arity();
        let mut choices: Vec<Vec<(Value, Label)>> = Vec::with_capacity(arity);
        // Key attributes: fixed by the group, uniformly classified.
        for kv in &key_values {
            choices.push(vec![(kv.clone(), key_class)]);
        }
        for i in kw..arity {
            let mut maxima: Vec<(Value, Label)> = Vec::new();
            for v in &same_key {
                let beaten = same_key.iter().any(|w| lat.lt(v.classes[i], w.classes[i]));
                if beaten {
                    continue;
                }
                let pair = (v.values[i].clone(), v.classes[i]);
                if !maxima.contains(&pair) {
                    maxima.push(pair);
                }
            }
            choices.push(maxima);
        }
        // Cartesian product of the per-attribute maxima (usually singletons;
        // several only under incomparable classifications).
        let mut rows: Vec<(Vec<Value>, Vec<Label>)> = vec![(Vec::new(), Vec::new())];
        for attr_choices in &choices {
            let mut next = Vec::new();
            for (values, classes) in &rows {
                for (v, c) in attr_choices {
                    let mut values = values.clone();
                    let mut classes = classes.clone();
                    values.push(v.clone());
                    classes.push(*c);
                    next.push((values, classes));
                }
            }
            rows = next;
        }
        for (values, classes) in rows {
            out.insert_unchecked(MlsTuple::new(values, classes, s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mission;
    use crate::scheme::MlsScheme;
    use multilog_lattice::standard;
    use std::sync::Arc;

    fn rows(rel: &MlsRelation) -> Vec<String> {
        let lat = rel.lattice();
        rel.tuples().iter().map(|t| t.render(lat)).collect()
    }

    #[test]
    fn figure6_firm_view_at_c() {
        let (lat, rel) = mission::mission_relation();
        let c = lat.label("C").unwrap();
        let v = believe(&rel, c, BeliefMode::Firm).unwrap();
        assert_eq!(
            rows(&v),
            vec!["Atlantis U | Diplomacy U | Vulcan U | C"],
            "Figure 6: only t6"
        );
    }

    #[test]
    fn figure7_optimistic_view_at_c() {
        let (lat, rel) = mission::mission_relation();
        let c = lat.label("C").unwrap();
        let v = believe(&rel, c, BeliefMode::Optimistic).unwrap();
        // Figure 7 minus the σ-generated t4/t5 (the paper: "β will produce
        // the views in figure 6 through 8 except the tuples t4 and t5 in
        // figure 7"). t6/t7 merge once re-tagged to C.
        let expected = vec![
            "Atlantis U | Diplomacy U | Vulcan U | C",
            "Voyager U | Training U | Mars U | C",
            "Falcon U | Piracy U | Venus U | C",
            "Eagle U | Patrolling U | Degoba U | C",
        ];
        assert_eq!(rows(&v), expected);
    }

    #[test]
    fn figure8_cautious_view_at_c() {
        let (lat, rel) = mission::mission_relation();
        let c = lat.label("C").unwrap();
        let v = believe(&rel, c, BeliefMode::Cautious).unwrap();
        // Figure 8 minus the σ-generated t5.
        let expected = vec![
            "Atlantis U | Diplomacy U | Vulcan U | C",
            "Voyager U | Training U | Mars U | C",
            "Falcon U | Piracy U | Venus U | C",
            "Eagle U | Patrolling U | Degoba U | C",
        ];
        assert_eq!(rows(&v), expected);
    }

    #[test]
    fn cautious_overrides_at_s() {
        let (lat, rel) = mission::mission_relation();
        let s = lat.label("S").unwrap();
        let v = believe(&rel, s, BeliefMode::Cautious).unwrap();
        // Voyager: objective Spying (class S) overrides Training (class U).
        let voyager: Vec<_> = v.by_key(&Value::str("Voyager")).collect();
        assert_eq!(voyager.len(), 1);
        assert_eq!(voyager[0].values[1], Value::str("Spying"));
        assert_eq!(voyager[0].values[2], Value::str("Mars"));
        // Phantom: two key classes (U and C), and two S-classified
        // objective values (Spying from t4, Supply from t5) that tie at the
        // maximal classification — Def 3.1 believes every non-dominated
        // choice, so 2 key classes × 2 objectives = 4 tuples.
        let phantom: Vec<_> = v.by_key(&Value::str("Phantom")).collect();
        assert_eq!(phantom.len(), 4);
        for p in &phantom {
            assert_eq!(p.values[2], Value::str("Venus"), "S-classified dest wins");
            assert!(p.values[1] == Value::str("Spying") || p.values[1] == Value::str("Supply"));
        }
    }

    #[test]
    fn firm_at_u_is_u_tuples() {
        let (lat, rel) = mission::mission_relation();
        let u = lat.label("U").unwrap();
        let v = believe(&rel, u, BeliefMode::Firm).unwrap();
        assert_eq!(v.len(), 4); // t7, t8, t9, t10
        assert!(v.tuples().iter().all(|t| t.tc == u));
    }

    #[test]
    fn optimistic_at_u_equals_firm_at_u() {
        // At the bottom level nothing flows up, so opt == fir.
        let (lat, rel) = mission::mission_relation();
        let u = lat.label("U").unwrap();
        let f = believe(&rel, u, BeliefMode::Firm).unwrap();
        let o = believe(&rel, u, BeliefMode::Optimistic).unwrap();
        assert!(f.same_tuples(&o));
    }

    #[test]
    fn optimistic_at_s_retags_everything() {
        let (lat, rel) = mission::mission_relation();
        let s = lat.label("S").unwrap();
        let v = believe(&rel, s, BeliefMode::Optimistic).unwrap();
        assert!(v.tuples().iter().all(|t| t.tc == s));
        // t2 (already S) merges with t6/t7 re-tagged: 10 - 2 = 8 tuples.
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(BeliefMode::parse("cau"), Some(BeliefMode::Cautious));
        assert_eq!(
            BeliefMode::parse("optimistically"),
            Some(BeliefMode::Optimistic)
        );
        assert_eq!(BeliefMode::parse("firm"), Some(BeliefMode::Firm));
        assert_eq!(BeliefMode::parse("wild"), None);
        assert_eq!(BeliefMode::Cautious.to_string(), "cau");
    }

    #[test]
    fn cautious_incomparable_classes_yield_multiple_models() {
        // Diamond lattice: two incomparable middle levels each assert a
        // different objective for the same key; at the top both maxima
        // survive (§3.1's "multiple models and associated unpredictability").
        let lat = Arc::new(standard::diamond("bot", "left", "right", "top"));
        let scheme = MlsScheme::unconstrained("r", lat.clone(), &["k", "a"]);
        let mut rel = MlsRelation::new(scheme);
        let (bot, left, right, top) = (
            lat.label("bot").unwrap(),
            lat.label("left").unwrap(),
            lat.label("right").unwrap(),
            lat.label("top").unwrap(),
        );
        rel.insert(MlsTuple::new(
            vec![Value::str("k1"), Value::str("from_left")],
            vec![bot, left],
            left,
        ))
        .unwrap();
        rel.insert(MlsTuple::new(
            vec![Value::str("k1"), Value::str("from_right")],
            vec![bot, right],
            right,
        ))
        .unwrap();
        let v = believe(&rel, top, BeliefMode::Cautious).unwrap();
        assert_eq!(
            v.len(),
            2,
            "both incomparable maxima believed:\n{}",
            v.render()
        );
    }

    #[test]
    fn empty_relation_all_modes_empty() {
        let (lat, scheme) = mission::mission_scheme();
        let rel = MlsRelation::new(scheme);
        for mode in BeliefMode::all() {
            let v = believe(&rel, lat.label("S").unwrap(), mode).unwrap();
            assert!(v.is_empty());
        }
    }
}
