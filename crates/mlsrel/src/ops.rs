//! Update operations under the Jajodia–Sandhu semantics with *required
//! polyinstantiation*.
//!
//! Subjects operate at their clearance level. Bell–LaPadula restricts
//! writes: a subject can never modify an object below its level, so an
//! update addressed at lower-classified data spawns a *polyinstantiated*
//! tuple at the subject's level while the lower original survives as a
//! cover story. Deleting the lower original afterwards leaves the higher
//! tuple's lower-classified key dangling — the paper's *surprise stories*
//! (tuples t4/t5 of Figure 1).

use crate::relation::MlsRelation;
use crate::scheme::MlsScheme;
use crate::tuple::MlsTuple;
use crate::value::Value;
use crate::{MlsError, Result};

/// One operation by a subject at a clearance level.
///
/// Levels and classes are carried as label *names* so operation scripts
/// are self-describing and serializable; they are resolved against the
/// scheme's lattice at replay time.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Insert a fresh tuple: every classification and `TC` become the
    /// subject's level.
    Insert {
        /// Subject level name.
        level: String,
        /// Data values, key first.
        values: Vec<Value>,
    },
    /// Re-assert data visible from below at the subject's own level: a
    /// copy with unchanged classifications but `TC` = the subject level
    /// (how Figure 1's t2/t6 arise from t7).
    Assert {
        /// Subject level name.
        level: String,
        /// The exact data values being re-asserted.
        values: Vec<Value>,
        /// Key class of the variant being asserted.
        key_class: String,
    },
    /// Update attributes of the tuple identified by `(key, key_class)`.
    /// If the best visible version lives below the subject's level, the
    /// write polyinstantiates (required polyinstantiation).
    Update {
        /// Subject level name.
        level: String,
        /// Apparent-key value of the target.
        key: Value,
        /// Key class of the target.
        key_class: String,
        /// `(attribute, new value (None = keep), new class)` assignments.
        assignments: Vec<(String, Option<Value>, String)>,
    },
    /// Delete tuples with the given key and key class that are visible at
    /// the subject's level. Higher (invisible) polyinstantiated tuples
    /// survive — the mechanism behind surprise stories.
    Delete {
        /// Subject level name.
        level: String,
        /// Apparent-key value of the target.
        key: Value,
        /// Key class of the target.
        key_class: String,
    },
    /// Assert that visible data is *false* without replacing it. A no-op
    /// for the stored relation (Jajodia–Sandhu has no such operation); the
    /// Jukic–Vrbsky belief model (Figure 5) renders it as a *mirage*.
    AssertFalse {
        /// Subject level name.
        level: String,
        /// Apparent-key value of the target.
        key: Value,
        /// Key class of the target.
        key_class: String,
    },
}

impl Op {
    /// The subject level name of the operation.
    pub fn level(&self) -> &str {
        match self {
            Op::Insert { level, .. }
            | Op::Assert { level, .. }
            | Op::Update { level, .. }
            | Op::Delete { level, .. }
            | Op::AssertFalse { level, .. } => level,
        }
    }
}

/// Replay a history of operations into a relation instance.
pub fn replay(scheme: MlsScheme, ops: &[Op]) -> Result<MlsRelation> {
    let mut rel = MlsRelation::new(scheme);
    for op in ops {
        apply(&mut rel, op)?;
    }
    Ok(rel)
}

/// Apply one operation.
pub fn apply(rel: &mut MlsRelation, op: &Op) -> Result<()> {
    let lat = rel.lattice().clone();
    match op {
        Op::Insert { level, values } => {
            let l = lat.require(level)?;
            if values.len() != rel.scheme().arity() {
                return Err(MlsError::ArityMismatch {
                    relation: rel.scheme().name().to_owned(),
                    expected: rel.scheme().arity(),
                    found: values.len(),
                });
            }
            // Reject a second tuple for the same (key, key class = level)
            // visible at the subject's level: that would violate
            // polyinstantiation integrity (same classes, different values).
            let clash = rel
                .tuples()
                .iter()
                .any(|t| t.key() == &values[0] && t.key_class() == l && t.tc == l);
            if clash {
                return Err(MlsError::DuplicateKey {
                    key: values[0].to_string(),
                    class: level.clone(),
                });
            }
            let t = MlsTuple::new(values.clone(), vec![l; values.len()], l);
            rel.insert(t)?;
            Ok(())
        }
        Op::Assert {
            level,
            values,
            key_class,
        } => {
            let l = lat.require(level)?;
            let kc = lat.require(key_class)?;
            // Find a visible tuple carrying exactly these values.
            let source = rel
                .tuples()
                .iter()
                .find(|t| t.key_class() == kc && &t.values == values && lat.leq(t.tc, l))
                .cloned()
                .ok_or_else(|| MlsError::NotVisible {
                    key: values[0].to_string(),
                    level: level.clone(),
                })?;
            let t = MlsTuple::new(source.values, source.classes, l);
            rel.insert(t)?;
            Ok(())
        }
        Op::Update {
            level,
            key,
            key_class,
            assignments,
        } => {
            let l = lat.require(level)?;
            let kc = lat.require(key_class)?;
            // Best visible version: maximal TC ⪯ level among tuples with
            // this key and key class.
            let target = rel
                .tuples()
                .iter()
                .filter(|t| t.key() == key && t.key_class() == kc && lat.leq(t.tc, l))
                .max_by(|a, b| {
                    // TCs of visible same-key-class tuples are comparable
                    // on a chain; on a poset, prefer any maximal one.
                    if lat.leq(a.tc, b.tc) {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                })
                .cloned()
                .ok_or_else(|| MlsError::NotVisible {
                    key: key.to_string(),
                    level: level.clone(),
                })?;
            let mut updated = target.clone();
            for (attr, value, class) in assignments {
                let i = rel.scheme().attr_index(attr)?;
                if i == rel.scheme().key_index() {
                    return Err(MlsError::EntityIntegrity {
                        detail: "the apparent key cannot be updated in place".into(),
                    });
                }
                if let Some(v) = value {
                    updated.values[i] = v.clone();
                }
                updated.classes[i] = lat.require(class)?;
            }
            updated.tc = l;
            if target.tc == l {
                // In-place update of the subject's own tuple.
                rel.retain(|t| t != &target);
            }
            // Otherwise: required polyinstantiation — the lower original
            // stays as a cover story.
            rel.insert(updated)?;
            Ok(())
        }
        Op::Delete {
            level,
            key,
            key_class,
        } => {
            let l = lat.require(level)?;
            let kc = lat.require(key_class)?;
            let removed =
                rel.retain(|t| !(t.key() == key && t.key_class() == kc && lat.leq(t.tc, l)));
            if removed == 0 {
                return Err(MlsError::NotVisible {
                    key: key.to_string(),
                    level: level.clone(),
                });
            }
            Ok(())
        }
        Op::AssertFalse { level, .. } => {
            // Belief-only operation: validate the level name, change nothing.
            lat.require(level)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mission;

    #[test]
    fn replaying_history_reproduces_figure1() {
        let (_, scheme) = mission::mission_scheme();
        let replayed = replay(scheme, &mission::mission_history()).unwrap();
        let (_, fig1) = mission::mission_relation();
        assert!(
            replayed.same_tuples(&fig1),
            "replayed:\n{}\nexpected:\n{}",
            replayed.render(),
            fig1.render()
        );
    }

    #[test]
    fn insert_duplicate_key_at_same_level_rejected() {
        let (_, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let values = vec![
            Value::str("Falcon"),
            Value::str("Piracy"),
            Value::str("Venus"),
        ];
        apply(
            &mut rel,
            &Op::Insert {
                level: "U".into(),
                values: values.clone(),
            },
        )
        .unwrap();
        let err = apply(
            &mut rel,
            &Op::Insert {
                level: "U".into(),
                values,
            },
        );
        assert!(matches!(err, Err(MlsError::DuplicateKey { .. })));
    }

    #[test]
    fn polyinstantiating_insert_at_other_level_allowed() {
        let (_, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let v1 = vec![
            Value::str("Phantom"),
            Value::str("Spying"),
            Value::str("Omega"),
        ];
        let v2 = vec![
            Value::str("Phantom"),
            Value::str("Supply"),
            Value::str("Venus"),
        ];
        apply(
            &mut rel,
            &Op::Insert {
                level: "U".into(),
                values: v1,
            },
        )
        .unwrap();
        apply(
            &mut rel,
            &Op::Insert {
                level: "C".into(),
                values: v2,
            },
        )
        .unwrap();
        assert_eq!(rel.len(), 2);
        rel.check_integrity().unwrap();
    }

    #[test]
    fn update_of_lower_tuple_polyinstantiates() {
        let (lat, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let v = vec![
            Value::str("Voyager"),
            Value::str("Training"),
            Value::str("Mars"),
        ];
        apply(
            &mut rel,
            &Op::Insert {
                level: "U".into(),
                values: v,
            },
        )
        .unwrap();
        apply(
            &mut rel,
            &Op::Update {
                level: "S".into(),
                key: Value::str("Voyager"),
                key_class: "U".into(),
                assignments: vec![("Objective".into(), Some(Value::str("Spying")), "S".into())],
            },
        )
        .unwrap();
        assert_eq!(rel.len(), 2, "original must survive as a cover story");
        let s = lat.label("S").unwrap();
        let high = rel.tuples().iter().find(|t| t.tc == s).unwrap();
        assert_eq!(high.values[1], Value::str("Spying"));
        assert_eq!(high.values[2], Value::str("Mars"), "untouched attr kept");
    }

    #[test]
    fn update_own_tuple_is_in_place() {
        let (_, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let v = vec![
            Value::str("Eagle"),
            Value::str("Patrolling"),
            Value::str("Degoba"),
        ];
        apply(
            &mut rel,
            &Op::Insert {
                level: "U".into(),
                values: v,
            },
        )
        .unwrap();
        apply(
            &mut rel,
            &Op::Update {
                level: "U".into(),
                key: Value::str("Eagle"),
                key_class: "U".into(),
                assignments: vec![("Destination".into(), Some(Value::str("Hoth")), "U".into())],
            },
        )
        .unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].values[2], Value::str("Hoth"));
    }

    #[test]
    fn update_invisible_tuple_fails() {
        let (_, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let v = vec![
            Value::str("Avenger"),
            Value::str("Shipping"),
            Value::str("Pluto"),
        ];
        apply(
            &mut rel,
            &Op::Insert {
                level: "S".into(),
                values: v,
            },
        )
        .unwrap();
        let err = apply(
            &mut rel,
            &Op::Update {
                level: "U".into(),
                key: Value::str("Avenger"),
                key_class: "S".into(),
                assignments: vec![("Destination".into(), Some(Value::str("Mars")), "U".into())],
            },
        );
        assert!(matches!(err, Err(MlsError::NotVisible { .. })));
    }

    #[test]
    fn delete_leaves_higher_polyinstantiated_tuple() {
        let (lat, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let v = vec![
            Value::str("Phantom"),
            Value::str("Spying"),
            Value::str("Omega"),
        ];
        apply(
            &mut rel,
            &Op::Insert {
                level: "U".into(),
                values: v,
            },
        )
        .unwrap();
        apply(
            &mut rel,
            &Op::Update {
                level: "S".into(),
                key: Value::str("Phantom"),
                key_class: "U".into(),
                assignments: vec![("Objective".into(), None, "S".into())],
            },
        )
        .unwrap();
        apply(
            &mut rel,
            &Op::Delete {
                level: "U".into(),
                key: Value::str("Phantom"),
                key_class: "U".into(),
            },
        )
        .unwrap();
        // The surprise story: the S tuple with a U key class survives.
        assert_eq!(rel.len(), 1);
        let t = &rel.tuples()[0];
        assert_eq!(t.tc, lat.label("S").unwrap());
        assert_eq!(t.key_class(), lat.label("U").unwrap());
    }

    #[test]
    fn delete_of_nothing_visible_fails() {
        let (_, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let err = apply(
            &mut rel,
            &Op::Delete {
                level: "U".into(),
                key: Value::str("Ghost"),
                key_class: "U".into(),
            },
        );
        assert!(matches!(err, Err(MlsError::NotVisible { .. })));
    }

    #[test]
    fn assert_false_changes_nothing() {
        let (_, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let v = vec![
            Value::str("Falcon"),
            Value::str("Piracy"),
            Value::str("Venus"),
        ];
        apply(
            &mut rel,
            &Op::Insert {
                level: "U".into(),
                values: v,
            },
        )
        .unwrap();
        apply(
            &mut rel,
            &Op::AssertFalse {
                level: "S".into(),
                key: Value::str("Falcon"),
                key_class: "U".into(),
            },
        )
        .unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn key_update_rejected() {
        let (_, scheme) = mission::mission_scheme();
        let mut rel = MlsRelation::new(scheme);
        let v = vec![
            Value::str("Eagle"),
            Value::str("Patrolling"),
            Value::str("Degoba"),
        ];
        apply(
            &mut rel,
            &Op::Insert {
                level: "U".into(),
                values: v,
            },
        )
        .unwrap();
        let err = apply(
            &mut rel,
            &Op::Update {
                level: "U".into(),
                key: Value::str("Eagle"),
                key_class: "U".into(),
                assignments: vec![("Starship".into(), Some(Value::str("Hawk")), "U".into())],
            },
        );
        assert!(matches!(err, Err(MlsError::EntityIntegrity { .. })));
    }
}
