//! The `Mission` relation of Figure 1 and the update history that
//! produces it.
//!
//! Figure 1 is the *stored state* of the relation after a sequence of
//! inserts, updates (with required polyinstantiation), and deletes by
//! subjects at U, C, and S. The deletes are what make tuples t4 and t5
//! *surprise stories*: their lower-classified keys outlive the lower-level
//! data they once anchored. [`mission_history`] reconstructs that sequence
//! (§3 of the paper describes it informally); a test in [`crate::ops`]
//! replays it and checks the result is exactly Figure 1.

use std::sync::Arc;

use multilog_lattice::{standard, SecurityLattice};

use crate::ops::Op;
use crate::relation::MlsRelation;
use crate::scheme::MlsScheme;
use crate::tuple::MlsTuple;
use crate::value::Value;

/// Attribute names of the Mission scheme.
pub const ATTRS: [&str; 3] = ["Starship", "Objective", "Destination"];

/// Tuple ids of Figure 1, in order, for labelling output.
pub const TIDS: [&str; 10] = ["t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10"];

/// Build the Mission scheme over the `U < C < S` lattice.
pub fn mission_scheme() -> (Arc<SecurityLattice>, MlsScheme) {
    let lat = Arc::new(standard::mission_levels());
    let scheme = MlsScheme::unconstrained("Mission", lat.clone(), &ATTRS);
    (lat, scheme)
}

/// The `Mission` relation exactly as printed in Figure 1 (10 tuples).
pub fn mission_relation() -> (Arc<SecurityLattice>, MlsRelation) {
    let (lat, scheme) = mission_scheme();
    let mut rel = MlsRelation::new(scheme);
    let rows: [(&str, &str, &str, [&str; 3], &str); 10] = [
        ("Avenger", "Shipping", "Pluto", ["S", "S", "S"], "S"), // t1
        ("Atlantis", "Diplomacy", "Vulcan", ["U", "U", "U"], "S"), // t2
        ("Voyager", "Spying", "Mars", ["U", "S", "U"], "S"),    // t3
        ("Phantom", "Spying", "Omega", ["U", "S", "U"], "S"),   // t4
        ("Phantom", "Supply", "Venus", ["C", "S", "S"], "S"),   // t5
        ("Atlantis", "Diplomacy", "Vulcan", ["U", "U", "U"], "C"), // t6
        ("Atlantis", "Diplomacy", "Vulcan", ["U", "U", "U"], "U"), // t7
        ("Voyager", "Training", "Mars", ["U", "U", "U"], "U"),  // t8
        ("Falcon", "Piracy", "Venus", ["U", "U", "U"], "U"),    // t9
        ("Eagle", "Patrolling", "Degoba", ["U", "U", "U"], "U"), // t10
    ];
    for (ship, obj, dest, classes, tc) in rows {
        let t = MlsTuple::new(
            vec![Value::str(ship), Value::str(obj), Value::str(dest)],
            classes
                .iter()
                .map(|c| lat.label(c).expect("mission labels exist"))
                .collect(),
            lat.label(tc).expect("mission labels exist"),
        );
        rel.insert(t)
            .expect("Figure 1 satisfies per-tuple integrity");
    }
    (lat, rel)
}

/// The update history that yields Figure 1 under the Jajodia–Sandhu update
/// semantics with required polyinstantiation (see [`crate::ops`]).
///
/// Reconstruction, per the paper's narrative in §3:
///
/// 1. U inserts the five unclassified missions (t7–t10 plus the original
///    Phantom row).
/// 2. C re-asserts the Atlantis mission (t6) and creates its own Phantom
///    entity instance (key class C) on a supply run to Venus.
/// 3. S re-asserts Atlantis (t2), inserts Avenger (t1), updates Voyager's
///    objective to `Spying` classified S (t3; t8 becomes a cover story),
///    reclassifies the U-level Phantom's objective to S (t4), and hides
///    the C-level Phantom's objective/destination at S (t5).
/// 4. U deletes its Phantom row and C deletes its Phantom row — leaving
///    the S-level polyinstantiated rows t4 and t5 whose lower-classified
///    keys now dangle: the *surprise stories*.
pub fn mission_history() -> Vec<Op> {
    use Op::*;
    fn row(ship: &str, obj: &str, dest: &str) -> Vec<Value> {
        vec![Value::str(ship), Value::str(obj), Value::str(dest)]
    }
    vec![
        // Step 1: U-level inserts.
        Insert {
            level: "U".into(),
            values: row("Atlantis", "Diplomacy", "Vulcan"),
        },
        Insert {
            level: "U".into(),
            values: row("Voyager", "Training", "Mars"),
        },
        Insert {
            level: "U".into(),
            values: row("Falcon", "Piracy", "Venus"),
        },
        Insert {
            level: "U".into(),
            values: row("Eagle", "Patrolling", "Degoba"),
        },
        Insert {
            level: "U".into(),
            values: row("Phantom", "Spying", "Omega"),
        },
        // Step 2: C-level activity.
        Assert {
            level: "C".into(),
            values: row("Atlantis", "Diplomacy", "Vulcan"),
            key_class: "U".into(),
        },
        Insert {
            level: "C".into(),
            values: row("Phantom", "Supply", "Venus"),
        },
        // Step 3: S-level activity.
        Assert {
            level: "S".into(),
            values: row("Atlantis", "Diplomacy", "Vulcan"),
            key_class: "U".into(),
        },
        Insert {
            level: "S".into(),
            values: row("Avenger", "Shipping", "Pluto"),
        },
        Update {
            level: "S".into(),
            key: Value::str("Voyager"),
            key_class: "U".into(),
            assignments: vec![("Objective".into(), Some(Value::str("Spying")), "S".into())],
        },
        Update {
            level: "S".into(),
            key: Value::str("Phantom"),
            key_class: "U".into(),
            assignments: vec![("Objective".into(), None, "S".into())],
        },
        Update {
            level: "S".into(),
            key: Value::str("Phantom"),
            key_class: "C".into(),
            assignments: vec![
                ("Objective".into(), None, "S".into()),
                ("Destination".into(), None, "S".into()),
            ],
        },
        // S verified that Falcon is not actually pirating, without planting
        // a replacement: Figure 5 renders this as a *mirage* at S. The
        // stored relation is unaffected.
        AssertFalse {
            level: "S".into(),
            key: Value::str("Falcon"),
            key_class: "U".into(),
        },
        // Step 4: the deletions that create the surprise stories.
        Delete {
            level: "U".into(),
            key: Value::str("Phantom"),
            key_class: "U".into(),
        },
        Delete {
            level: "C".into(),
            key: Value::str("Phantom"),
            key_class: "C".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_ten_tuples() {
        let (_, rel) = mission_relation();
        assert_eq!(rel.len(), 10);
    }

    #[test]
    fn figure1_tuple_classes_spot_checks() {
        let (lat, rel) = mission_relation();
        let s = lat.label("S").unwrap();
        let u = lat.label("U").unwrap();
        let c = lat.label("C").unwrap();
        let t4 = &rel.tuples()[3];
        assert_eq!(t4.key(), &Value::str("Phantom"));
        assert_eq!(t4.key_class(), u);
        assert_eq!(t4.classes[1], s);
        assert_eq!(t4.tc, s);
        let t5 = &rel.tuples()[4];
        assert_eq!(t5.key_class(), c);
        assert_eq!(t5.tc, s);
    }

    #[test]
    fn figure1_passes_integrity() {
        let (_, rel) = mission_relation();
        rel.check_integrity().unwrap();
    }

    #[test]
    fn history_has_all_phases() {
        let h = mission_history();
        assert_eq!(h.len(), 15);
        assert!(matches!(h[0], Op::Insert { .. }));
        assert!(matches!(h[14], Op::Delete { .. }));
    }

    #[test]
    fn render_matches_figure1_layout() {
        let (_, rel) = mission_relation();
        let shown = rel.render();
        assert!(shown.contains("Avenger S | Shipping S | Pluto S | S"));
        assert!(shown.contains("Phantom C | Supply S | Venus S | S"));
        assert!(shown.contains("Eagle U | Patrolling U | Degoba U | U"));
    }
}
