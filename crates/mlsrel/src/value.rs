//! Attribute values, including the distinguished null `⊥`.

use std::fmt;
use std::sync::Arc;

/// A data-attribute value in a multilevel relation.
///
/// `Null` is the distinguished `⊥` of the model: it appears when the
/// filter function σ hides a higher-classified value from a lower view,
/// or when polyinstantiation leaves a higher tuple whose lower-classified
/// key outlives its data (the paper's *surprise stories*).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The null value `⊥`.
    Null,
    /// A symbolic value, e.g. `Voyager`.
    Str(Arc<str>),
    /// An integer value.
    Int(i64),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Whether this is `⊥`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string content, if a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("⊥"),
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "⊥");
        assert_eq!(Value::str("Voyager").to_string(), "Voyager");
        assert_eq!(Value::int(7).to_string(), "7");
    }

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(!Value::str("x").is_null());
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(3), Value::int(3));
    }
}
