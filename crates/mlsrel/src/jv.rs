//! The Jukic–Vrbsky belief-label model of §3 (Figures 4 and 5).
//!
//! Jukic and Vrbsky \[16\] replace the stored-state view of a multilevel
//! relation with *belief labels*: every value records which levels assert
//! it, and every tuple variant receives a fixed interpretation at each
//! level — one of `true`, `invisible`, `irrelevant`, `cover story`, or
//! `mirage`.
//!
//! The stored relation of Figure 1 cannot reconstruct those labels (the
//! deletions of the Phantom rows already destroyed the history), so this
//! module computes the J-V representation from the *operation history*
//! ([`crate::ops::Op`]) instead:
//!
//! * `Insert`/`Assert` create or endorse a variant — the asserting level
//!   *believes* it;
//! * `Update` creates a replacing variant, turning the replaced one into a
//!   deliberate *cover story* for every level that can see the
//!   replacement;
//! * `AssertFalse` brands a variant a *mirage* at the asserting level;
//! * `Delete` is ignored — J-V labels record beliefs, which deletion of
//!   the stored row does not retract.
//!
//! Label rendering (Figure 4) is reconstructed as: for each row and
//! attribute, the concatenated (lattice-ordered) levels that believe that
//! `(key, attribute, value, class)` combination across variants, followed
//! by `-X` for each level `X` at which the row is known false (cover
//! story or mirage) and the attribute value is not independently believed.

use std::fmt;

use multilog_lattice::{Label, SecurityLattice};

use crate::ops::Op;
use crate::scheme::MlsScheme;
use crate::value::Value;
use crate::{MlsError, Result};

/// The five Jukic–Vrbsky interpretations of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interpretation {
    /// The level believes the tuple.
    True,
    /// The level cannot see the tuple.
    Invisible,
    /// Visible lower-level data with no bearing on the level's beliefs.
    Irrelevant,
    /// The level knows the tuple is a deliberately planted lie.
    CoverStory,
    /// The level knows the tuple is false, with no replacement planted.
    Mirage,
}

impl fmt::Display for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Interpretation::True => "true",
            Interpretation::Invisible => "invisible",
            Interpretation::Irrelevant => "irrelevant",
            Interpretation::CoverStory => "cover story",
            Interpretation::Mirage => "mirage",
        })
    }
}

/// One tuple variant in the J-V representation: a full row of values with
/// their classifications, the levels asserting it, and provenance links.
#[derive(Clone, Debug)]
pub struct Variant {
    /// The data values, key first.
    pub values: Vec<Value>,
    /// Per-attribute classifications.
    pub classes: Vec<Label>,
    /// The level that created the variant.
    pub creator: Label,
    /// Every level that asserted (believes) the variant, creator included.
    pub believers: Vec<Label>,
    /// Levels that asserted the variant false without replacement.
    pub asserted_false: Vec<Label>,
    /// Index of the variant this one replaced via an update, if any.
    pub replaces: Option<usize>,
}

impl Variant {
    /// The apparent-key value.
    pub fn key(&self) -> &Value {
        &self.values[0]
    }

    /// The apparent-key classification.
    pub fn key_class(&self) -> Label {
        self.classes[0]
    }
}

/// The Jukic–Vrbsky view of a relation history.
#[derive(Clone, Debug)]
pub struct JvRelation {
    scheme: MlsScheme,
    variants: Vec<Variant>,
}

impl JvRelation {
    /// Build the J-V representation from an operation history.
    pub fn from_history(scheme: MlsScheme, ops: &[Op]) -> Result<Self> {
        let lat = scheme.lattice().clone();
        let mut jv = JvRelation {
            scheme,
            variants: Vec::new(),
        };
        for op in ops {
            jv.apply(&lat, op)?;
        }
        Ok(jv)
    }

    fn apply(&mut self, lat: &SecurityLattice, op: &Op) -> Result<()> {
        match op {
            Op::Insert { level, values } => {
                let l = lat.require(level)?;
                self.variants.push(Variant {
                    values: values.clone(),
                    classes: vec![l; values.len()],
                    creator: l,
                    believers: vec![l],
                    asserted_false: Vec::new(),
                    replaces: None,
                });
                Ok(())
            }
            Op::Assert {
                level,
                values,
                key_class,
            } => {
                let l = lat.require(level)?;
                let kc = lat.require(key_class)?;
                let v = self
                    .variants
                    .iter_mut()
                    .find(|v| v.key_class() == kc && &v.values == values)
                    .ok_or_else(|| MlsError::NotVisible {
                        key: values[0].to_string(),
                        level: level.clone(),
                    })?;
                if !v.believers.contains(&l) {
                    v.believers.push(l);
                }
                Ok(())
            }
            Op::Update {
                level,
                key,
                key_class,
                assignments,
            } => {
                let l = lat.require(level)?;
                let kc = lat.require(key_class)?;
                // The replaced variant: the latest visible one for the key.
                let target_idx = self
                    .variants
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.key() == key && v.key_class() == kc && lat.leq(v.creator, l))
                    .map(|(i, _)| i)
                    .next_back()
                    .ok_or_else(|| MlsError::NotVisible {
                        key: key.to_string(),
                        level: level.clone(),
                    })?;
                let mut updated = self.variants[target_idx].clone();
                for (attr, value, class) in assignments {
                    let i = self.scheme.attr_index(attr)?;
                    if let Some(v) = value {
                        updated.values[i] = v.clone();
                    }
                    updated.classes[i] = lat.require(class)?;
                }
                updated.creator = l;
                updated.believers = vec![l];
                updated.asserted_false = Vec::new();
                updated.replaces = Some(target_idx);
                self.variants.push(updated);
                Ok(())
            }
            Op::Delete { level, .. } => {
                // Deletion of the stored row does not retract beliefs.
                lat.require(level)?;
                Ok(())
            }
            Op::AssertFalse {
                level,
                key,
                key_class,
            } => {
                let l = lat.require(level)?;
                let kc = lat.require(key_class)?;
                let v = self
                    .variants
                    .iter_mut()
                    .find(|v| v.key() == key && v.key_class() == kc)
                    .ok_or_else(|| MlsError::NotVisible {
                        key: key.to_string(),
                        level: level.clone(),
                    })?;
                if !v.asserted_false.contains(&l) {
                    v.asserted_false.push(l);
                }
                Ok(())
            }
        }
    }

    /// The variants, in creation order.
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }

    /// The scheme.
    pub fn scheme(&self) -> &MlsScheme {
        &self.scheme
    }

    /// Figure 5: the interpretation of variant `idx` at `level`.
    pub fn interpret(&self, idx: usize, level: Label) -> Interpretation {
        let lat = self.scheme.lattice();
        let v = &self.variants[idx];
        if !lat.leq(v.creator, level) {
            return Interpretation::Invisible;
        }
        if v.believers.contains(&level) {
            return Interpretation::True;
        }
        if v.asserted_false.contains(&level) {
            return Interpretation::Mirage;
        }
        // Cover story: some visible variant replaces this one (directly or
        // transitively).
        let replaced_by_visible = self
            .variants
            .iter()
            .any(|w| lat.leq(w.creator, level) && self.replaces_transitively(w, idx));
        if replaced_by_visible {
            Interpretation::CoverStory
        } else {
            Interpretation::Irrelevant
        }
    }

    fn replaces_transitively(&self, w: &Variant, idx: usize) -> bool {
        let mut cur = w.replaces;
        while let Some(i) = cur {
            if i == idx {
                return true;
            }
            cur = self.variants[i].replaces;
        }
        false
    }

    /// The levels believing the `(key, attribute, value, class)` of variant
    /// `idx` at attribute `attr`, merged across variants, lattice-ordered
    /// bottom-up.
    pub fn value_believers(&self, idx: usize, attr: usize) -> Vec<Label> {
        let lat = self.scheme.lattice();
        let v = &self.variants[idx];
        let mut out: Vec<Label> = Vec::new();
        for w in &self.variants {
            if w.key() == v.key()
                && w.values[attr] == v.values[attr]
                && w.classes[attr] == v.classes[attr]
            {
                for &b in &w.believers {
                    if !out.contains(&b) {
                        out.push(b);
                    }
                }
            }
        }
        // Order bottom-up: count of dominated labels is a cheap rank.
        out.sort_by_key(|&l| (lat.down_set(l).len(), l.index()));
        out
    }

    /// Figure 4: render the label of variant `idx` at attribute `attr`
    /// (e.g. `US`, `U-S`, `UCS`, `C-S`).
    pub fn attr_label(&self, idx: usize, attr: usize) -> String {
        let lat = self.scheme.lattice();
        let believers = self.value_believers(idx, attr);
        let mut label: String = believers.iter().map(|&l| lat.name(l)).collect();
        for level in lat.labels() {
            let interp = self.interpret(idx, level);
            let known_false =
                interp == Interpretation::CoverStory || interp == Interpretation::Mirage;
            if known_false && !believers.contains(&level) {
                label.push('-');
                label.push_str(lat.name(level));
            }
        }
        label
    }

    /// Figure 4: the row-level (TC) label of variant `idx`.
    pub fn row_label(&self, idx: usize) -> String {
        let lat = self.scheme.lattice();
        let v = &self.variants[idx];
        let mut believers = v.believers.clone();
        believers.sort_by_key(|&l| (lat.down_set(l).len(), l.index()));
        let mut label: String = believers.iter().map(|&l| lat.name(l)).collect();
        for level in lat.labels() {
            let interp = self.interpret(idx, level);
            if (interp == Interpretation::CoverStory || interp == Interpretation::Mirage)
                && !believers.contains(&level)
            {
                label.push('-');
                label.push_str(lat.name(level));
            }
        }
        label
    }

    /// Render the full Figure 4 table: one line per variant,
    /// `value label | … | row-label`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, v) in self.variants.iter().enumerate() {
            let mut parts: Vec<String> = (0..v.values.len())
                .map(|a| format!("{} {}", v.values[a], self.attr_label(i, a)))
                .collect();
            parts.push(self.row_label(i));
            out.push_str(&parts.join(" | "));
            out.push('\n');
        }
        out
    }

    /// Render the full Figure 5 table: interpretations per level for each
    /// variant, for the given level names.
    pub fn render_interpretations(&self, levels: &[&str]) -> String {
        let lat = self.scheme.lattice().clone();
        let mut out = String::new();
        for (i, v) in self.variants.iter().enumerate() {
            let cells: Vec<String> = levels
                .iter()
                .map(|name| {
                    let l = lat.label(name).expect("level exists");
                    self.interpret(i, l).to_string()
                })
                .collect();
            out.push_str(&format!("{}: {}\n", v.key(), cells.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mission;

    fn jv() -> JvRelation {
        let (_, scheme) = mission::mission_scheme();
        JvRelation::from_history(scheme, &mission::mission_history()).unwrap()
    }

    fn find(jv: &JvRelation, key: &str, creator: &str) -> usize {
        let lat = jv.scheme().lattice().clone();
        let c = lat.label(creator).unwrap();
        jv.variants()
            .iter()
            .position(|v| v.key() == &Value::str(key) && v.creator == c)
            .unwrap()
    }

    #[test]
    fn figure5_interpretations_reproduced() {
        let jv = jv();
        let lat = jv.scheme().lattice().clone();
        let (u, c, s) = (
            lat.label("U").unwrap(),
            lat.label("C").unwrap(),
            lat.label("S").unwrap(),
        );
        use Interpretation::*;
        // (key, creator level) → expected (U, C, S) interpretations.
        let expectations = [
            ("Avenger", "S", [Invisible, Invisible, True]),   // t1
            ("Atlantis", "U", [True, True, True]),            // t2 (merged)
            ("Voyager", "S", [Invisible, Invisible, True]),   // t3
            ("Phantom", "U", [True, Irrelevant, CoverStory]), // t4
            ("Eagle", "U", [True, Irrelevant, Irrelevant]),   // t10
            ("Falcon", "U", [True, Irrelevant, Mirage]),      // t9
            ("Voyager", "U", [True, Irrelevant, CoverStory]), // t8
            ("Phantom", "C", [Invisible, True, CoverStory]),  // t5'
        ];
        for (key, creator, [eu, ec, es]) in expectations {
            let i = find(&jv, key, creator);
            assert_eq!(jv.interpret(i, u), eu, "{key}@{creator} at U");
            assert_eq!(jv.interpret(i, c), ec, "{key}@{creator} at C");
            assert_eq!(jv.interpret(i, s), es, "{key}@{creator} at S");
        }
        // The two S-created Phantom variants (t4' replacing the U row, t5
        // replacing the C row) are both true at S, invisible below.
        let s_phantoms: Vec<usize> = jv
            .variants()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.key() == &Value::str("Phantom") && v.creator == s)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(s_phantoms.len(), 2);
        for i in s_phantoms {
            assert_eq!(jv.interpret(i, u), Invisible);
            assert_eq!(jv.interpret(i, c), Invisible);
            assert_eq!(jv.interpret(i, s), True);
        }
    }

    #[test]
    fn figure4_labels_reproduced() {
        let jv = jv();
        // t2 (merged Atlantis): believed at U, C and S → UCS everywhere.
        let t2 = find(&jv, "Atlantis", "U");
        for a in 0..3 {
            assert_eq!(jv.attr_label(t2, a), "UCS");
        }
        assert_eq!(jv.row_label(t2), "UCS");

        // t4 (U's Phantom): Starship shared with t4' → US; Objective
        // believed only at U and branded a cover story at S → U-S.
        let t4 = find(&jv, "Phantom", "U");
        assert_eq!(jv.attr_label(t4, 0), "US");
        assert_eq!(jv.attr_label(t4, 1), "U-S");
        assert_eq!(jv.attr_label(t4, 2), "US");
        assert_eq!(jv.row_label(t4), "U-S");

        // t8: Voyager shared with t3 → US; Training is U's story, known
        // false at S → U-S.
        let t8 = find(&jv, "Voyager", "U");
        assert_eq!(jv.attr_label(t8, 0), "US");
        assert_eq!(jv.attr_label(t8, 1), "U-S");
        assert_eq!(jv.attr_label(t8, 2), "US");
        assert_eq!(jv.row_label(t8), "U-S");

        // t9 (mirage at S): U-S on every attribute.
        let t9 = find(&jv, "Falcon", "U");
        for a in 0..3 {
            assert_eq!(jv.attr_label(t9, a), "U-S");
        }

        // t10: plain U.
        let t10 = find(&jv, "Eagle", "U");
        for a in 0..3 {
            assert_eq!(jv.attr_label(t10, a), "U");
        }

        // t5' (C's Phantom): Starship survives into t5 → CS; the hidden
        // attributes are C's story, cover story at S → C-S.
        let t5p = find(&jv, "Phantom", "C");
        assert_eq!(jv.attr_label(t5p, 0), "CS");
        assert_eq!(jv.attr_label(t5p, 1), "C-S");
        assert_eq!(jv.attr_label(t5p, 2), "C-S");
        assert_eq!(jv.row_label(t5p), "C-S");

        // t3: Voyager US | Spying S | Mars US | S.
        let t3 = find(&jv, "Voyager", "S");
        assert_eq!(jv.attr_label(t3, 0), "US");
        assert_eq!(jv.attr_label(t3, 1), "S");
        assert_eq!(jv.attr_label(t3, 2), "US");
        assert_eq!(jv.row_label(t3), "S");

        // t1: S everywhere.
        let t1 = find(&jv, "Avenger", "S");
        for a in 0..3 {
            assert_eq!(jv.attr_label(t1, a), "S");
        }
    }

    #[test]
    fn figure4_has_ten_variants() {
        // t1, t2(merged), t3, t4, t4', t5, t5', t8, t9, t10.
        assert_eq!(jv().variants().len(), 10);
    }

    #[test]
    fn render_produces_tables() {
        let jv = jv();
        let fig4 = jv.render();
        assert!(fig4.contains("Atlantis UCS | Diplomacy UCS | Vulcan UCS | UCS"));
        let fig5 = jv.render_interpretations(&["U", "C", "S"]);
        assert!(fig5.contains("Falcon: true | irrelevant | mirage"));
    }

    #[test]
    fn update_of_unknown_variant_errors() {
        let (_, scheme) = mission::mission_scheme();
        let err = JvRelation::from_history(
            scheme,
            &[Op::Update {
                level: "S".into(),
                key: Value::str("Ghost"),
                key_class: "U".into(),
                assignments: vec![],
            }],
        );
        assert!(matches!(err, Err(MlsError::NotVisible { .. })));
    }
}
