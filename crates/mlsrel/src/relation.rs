//! Multilevel relation instances.

use std::fmt;
use std::sync::Arc;

use multilog_lattice::{Label, SecurityLattice};

use crate::integrity;
use crate::scheme::MlsScheme;
use crate::tuple::MlsTuple;
use crate::value::Value;
use crate::{MlsError, Result};

/// A multilevel relation instance: a scheme plus a set of tuples.
///
/// Tuples are kept in insertion order (the paper's figures are ordered by
/// tuple id); equality of instances is set-based via [`MlsRelation::same_tuples`].
#[derive(Clone)]
pub struct MlsRelation {
    scheme: MlsScheme,
    tuples: Vec<MlsTuple>,
}

impl MlsRelation {
    /// Create an empty instance over a scheme.
    pub fn new(scheme: MlsScheme) -> Self {
        MlsRelation {
            scheme,
            tuples: Vec::new(),
        }
    }

    /// The scheme.
    pub fn scheme(&self) -> &MlsScheme {
        &self.scheme
    }

    /// The security lattice.
    pub fn lattice(&self) -> &Arc<SecurityLattice> {
        self.scheme.lattice()
    }

    /// The tuples, in insertion order.
    pub fn tuples(&self) -> &[MlsTuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Add a tuple after validating arity and the per-tuple entity/null
    /// integrity conditions. Duplicates are ignored (set semantics).
    pub fn insert(&mut self, tuple: MlsTuple) -> Result<bool> {
        if tuple.arity() != self.scheme.arity() {
            return Err(MlsError::ArityMismatch {
                relation: self.scheme.name().to_owned(),
                expected: self.scheme.arity(),
                found: tuple.arity(),
            });
        }
        integrity::check_tuple(&self.scheme, &tuple)?;
        if self.tuples.contains(&tuple) {
            return Ok(false);
        }
        self.tuples.push(tuple);
        Ok(true)
    }

    /// Add a tuple without integrity validation. Used by view/belief
    /// computations whose outputs deliberately contain σ-nulls that violate
    /// base-relation integrity (e.g. Figure 3's surprise stories).
    pub fn insert_unchecked(&mut self, tuple: MlsTuple) -> bool {
        if self.tuples.contains(&tuple) {
            return false;
        }
        self.tuples.push(tuple);
        true
    }

    /// Remove tuples matching a predicate; returns how many were removed.
    pub fn retain(&mut self, keep: impl Fn(&MlsTuple) -> bool) -> usize {
        let before = self.tuples.len();
        self.tuples.retain(|t| keep(t));
        before - self.tuples.len()
    }

    /// Tuples whose apparent key equals `key`.
    pub fn by_key(&self, key: &Value) -> impl Iterator<Item = &MlsTuple> + '_ {
        let key = key.clone();
        self.tuples.iter().filter(move |t| t.key() == &key)
    }

    /// Tuples visible at level `s` (those with `TC ⪯ s`).
    pub fn visible_at(&self, s: Label) -> impl Iterator<Item = &MlsTuple> {
        let lat = self.lattice().clone();
        self.tuples.iter().filter(move |t| lat.leq(t.tc, s))
    }

    /// Set equality of tuples, ignoring order.
    pub fn same_tuples(&self, other: &MlsRelation) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.tuples.iter().all(|t| other.tuples.contains(t))
    }

    /// Run the full instance-level integrity suite of Definition 5.4.
    pub fn check_integrity(&self) -> Result<()> {
        integrity::check_relation(self)
    }

    /// Render the instance as a text table in the layout of the paper's
    /// figures: one line per tuple, `value class | … | TC`.
    pub fn render(&self) -> String {
        let lat = self.lattice();
        let mut header: Vec<String> = self.scheme.attr_names().map(|a| format!("{a} C")).collect();
        header.push("TC".to_owned());
        let mut out = header.join(" | ");
        out.push('\n');
        for t in &self.tuples {
            out.push_str(&t.render(lat));
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for MlsRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples]", self.scheme.name(), self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multilog_lattice::standard;

    fn scheme() -> MlsScheme {
        let lat = Arc::new(standard::mission_levels());
        MlsScheme::unconstrained("r", lat, &["k", "a"])
    }

    fn t(rel: &MlsRelation, k: &str, a: &str, kc: &str, ac: &str, tc: &str) -> MlsTuple {
        let lat = rel.lattice();
        MlsTuple::new(
            vec![Value::str(k), Value::str(a)],
            vec![lat.label(kc).unwrap(), lat.label(ac).unwrap()],
            lat.label(tc).unwrap(),
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut r = MlsRelation::new(scheme());
        let lat = r.lattice().clone();
        let u = lat.label("U").unwrap();
        let bad = MlsTuple::new(vec![Value::str("x")], vec![u], u);
        assert!(matches!(r.insert(bad), Err(MlsError::ArityMismatch { .. })));
    }

    #[test]
    fn insert_dedups() {
        let mut r = MlsRelation::new(scheme());
        let tu = t(&r, "x", "y", "U", "U", "U");
        assert!(r.insert(tu.clone()).unwrap());
        assert!(!r.insert(tu).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn visible_at_filters_by_tc() {
        let mut r = MlsRelation::new(scheme());
        r.insert(t(&r.clone(), "x", "y", "U", "U", "U")).unwrap();
        r.insert(t(&r.clone(), "z", "w", "U", "S", "S")).unwrap();
        let lat = r.lattice();
        let u = lat.label("U").unwrap();
        let s = lat.label("S").unwrap();
        assert_eq!(r.visible_at(u).count(), 1);
        assert_eq!(r.visible_at(s).count(), 2);
    }

    #[test]
    fn by_key_filters() {
        let mut r = MlsRelation::new(scheme());
        r.insert(t(&r.clone(), "x", "y", "U", "U", "U")).unwrap();
        r.insert(t(&r.clone(), "x", "q", "U", "S", "S")).unwrap();
        r.insert(t(&r.clone(), "z", "w", "U", "U", "U")).unwrap();
        assert_eq!(r.by_key(&Value::str("x")).count(), 2);
    }

    #[test]
    fn same_tuples_ignores_order() {
        let mut a = MlsRelation::new(scheme());
        let mut b = MlsRelation::new(scheme());
        let t1 = t(&a, "x", "y", "U", "U", "U");
        let t2 = t(&a, "z", "w", "U", "U", "U");
        a.insert(t1.clone()).unwrap();
        a.insert(t2.clone()).unwrap();
        b.insert(t2).unwrap();
        b.insert(t1).unwrap();
        assert!(a.same_tuples(&b));
    }

    #[test]
    fn render_includes_header_and_rows() {
        let mut r = MlsRelation::new(scheme());
        r.insert(t(&r.clone(), "x", "y", "U", "U", "U")).unwrap();
        let s = r.render();
        assert!(s.contains("k C | a C | TC"));
        assert!(s.contains("x U | y U | U"));
    }
}
