//! Multilevel tuples (Definition 2.2) and subsumption (Definition 5.4).

use std::fmt;

use multilog_lattice::{Label, SecurityLattice};

use crate::value::Value;

/// A multilevel tuple `(a1, c1, …, an, cn, tc)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MlsTuple {
    /// The data values `a_i`.
    pub values: Vec<Value>,
    /// The per-attribute classifications `c_i`.
    pub classes: Vec<Label>,
    /// The tuple class `TC` — the access class where the tuple was
    /// inserted/updated.
    pub tc: Label,
}

impl MlsTuple {
    /// Construct a tuple.
    pub fn new(values: Vec<Value>, classes: Vec<Label>, tc: Label) -> Self {
        assert_eq!(values.len(), classes.len(), "values and classes must align");
        MlsTuple {
            values,
            classes,
            tc,
        }
    }

    /// The apparent-key value (attribute 0).
    pub fn key(&self) -> &Value {
        &self.values[0]
    }

    /// The apparent-key classification `C_AK`.
    ///
    /// For multi-attribute keys the key is uniformly classified (entity
    /// integrity), so the first key attribute's class stands for all.
    pub fn key_class(&self) -> Label {
        self.classes[0]
    }

    /// The composite apparent-key values (the first `width` attributes).
    pub fn key_slice(&self, width: usize) -> &[Value] {
        &self.values[..width]
    }

    /// Number of data attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether any data value is `⊥`.
    pub fn has_null(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }

    /// Definition 5.4 subsumption: `self` subsumes `other` iff for every
    /// attribute either the `(value, class)` pairs are equal, or `self`
    /// has a non-null value where `other` has `⊥`.
    ///
    /// `TC` does not participate in subsumption.
    pub fn subsumes(&self, other: &MlsTuple) -> bool {
        if self.arity() != other.arity() {
            return false;
        }
        self.values
            .iter()
            .zip(&self.classes)
            .zip(other.values.iter().zip(&other.classes))
            .all(|((v, c), (v2, c2))| (v == v2 && c == c2) || (!v.is_null() && v2.is_null()))
    }

    /// Strict subsumption: subsumes but is not mutually subsumed.
    pub fn strictly_subsumes(&self, other: &MlsTuple) -> bool {
        self.subsumes(other) && !other.subsumes(self)
    }

    /// Render the tuple against a lattice, matching the paper's tables:
    /// `value class | … | TC`.
    pub fn render(&self, lattice: &SecurityLattice) -> String {
        let mut parts: Vec<String> = self
            .values
            .iter()
            .zip(&self.classes)
            .map(|(v, c)| format!("{v} {}", lattice.name(*c)))
            .collect();
        parts.push(lattice.name(self.tc).to_owned());
        parts.join(" | ")
    }
}

impl fmt::Debug for MlsTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (v, c)) in self.values.iter().zip(&self.classes).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}:{}", c.index())?;
        }
        write!(f, " @{})", self.tc.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multilog_lattice::standard;

    fn labels() -> (SecurityLattice, Label, Label, Label) {
        let lat = standard::mission_levels();
        let u = lat.label("U").unwrap();
        let c = lat.label("C").unwrap();
        let s = lat.label("S").unwrap();
        (lat, u, c, s)
    }

    #[test]
    fn key_accessors() {
        let (_, u, c, s) = labels();
        let t = MlsTuple::new(vec![Value::str("Phantom"), Value::Null], vec![c, u], s);
        assert_eq!(t.key(), &Value::str("Phantom"));
        assert_eq!(t.key_class(), c);
        assert!(t.has_null());
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn subsumption_fills_nulls() {
        let (_, u, _, s) = labels();
        let full = MlsTuple::new(
            vec![Value::str("Voyager"), Value::str("Training")],
            vec![u, u],
            u,
        );
        let nulled = MlsTuple::new(vec![Value::str("Voyager"), Value::Null], vec![u, u], s);
        assert!(full.subsumes(&nulled));
        assert!(!nulled.subsumes(&full));
        assert!(full.strictly_subsumes(&nulled));
    }

    #[test]
    fn subsumption_requires_equal_classes_on_values() {
        let (_, u, c, s) = labels();
        // Same values, different class on attribute 0: no subsumption.
        let a = MlsTuple::new(vec![Value::str("Phantom"), Value::Null], vec![u, u], s);
        let b = MlsTuple::new(vec![Value::str("Phantom"), Value::Null], vec![c, c], s);
        assert!(!a.subsumes(&b));
        assert!(!b.subsumes(&a));
    }

    #[test]
    fn identical_tuples_mutually_subsume() {
        let (_, u, _, _) = labels();
        let a = MlsTuple::new(vec![Value::str("x")], vec![u], u);
        assert!(a.subsumes(&a));
        assert!(!a.strictly_subsumes(&a));
    }

    #[test]
    fn paper_t4_t5_do_not_subsume() {
        // §3: "tuples t4 and t5 do not subsume each other".
        let (_, u, c, _) = labels();
        let t4 = MlsTuple::new(
            vec![Value::str("Phantom"), Value::Null, Value::str("Omega")],
            vec![u, u, u],
            c,
        );
        let t5 = MlsTuple::new(
            vec![Value::str("Phantom"), Value::Null, Value::Null],
            vec![c, c, c],
            c,
        );
        assert!(!t4.subsumes(&t5));
        assert!(!t5.subsumes(&t4));
    }

    #[test]
    fn render_matches_paper_layout() {
        let (lat, u, _, s) = labels();
        let t = MlsTuple::new(
            vec![Value::str("Voyager"), Value::str("Spying")],
            vec![u, s],
            s,
        );
        assert_eq!(t.render(&lat), "Voyager U | Spying S | S");
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_tuple_panics() {
        let (_, u, _, _) = labels();
        let _ = MlsTuple::new(vec![Value::str("x")], vec![u, u], u);
    }
}
