//! Property tests for the update semantics: random operation sequences
//! keep the stored relation integrity-clean, and the Bell–LaPadula
//! invariants hold after every step.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use std::sync::Arc;

use multilog_lattice::standard;
use multilog_mlsrel::ops::{apply, Op};
use multilog_mlsrel::view::view_at;
use multilog_mlsrel::{MlsRelation, MlsScheme, Value};

#[derive(Clone, Debug)]
enum Step {
    Insert {
        level: usize,
        entity: usize,
        val: usize,
    },
    Update {
        level: usize,
        entity: usize,
        kc: usize,
        val: usize,
    },
    Delete {
        level: usize,
        entity: usize,
        kc: usize,
    },
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        (0usize..3, 0usize..4, 0usize..5).prop_map(|(level, entity, val)| Step::Insert {
            level,
            entity,
            val
        }),
        (0usize..3, 0usize..4, 0usize..3, 0usize..5).prop_map(|(level, entity, kc, val)| {
            Step::Update {
                level,
                entity,
                kc,
                val,
            }
        }),
        (0usize..3, 0usize..4, 0usize..3).prop_map(|(level, entity, kc)| Step::Delete {
            level,
            entity,
            kc
        }),
    ];
    proptest::collection::vec(step, 1..30)
}

fn level_name(i: usize) -> String {
    ["U", "C", "S"][i].to_owned()
}

fn run_history(steps: &[Step]) -> MlsRelation {
    let lat = Arc::new(standard::mission_levels());
    let scheme = MlsScheme::unconstrained("r", lat, &["k", "a"]);
    let mut rel = MlsRelation::new(scheme);
    for s in steps {
        // Operations that are invalid in the current state (duplicate
        // keys, invisible targets) are simply skipped: the generator
        // produces arbitrary scripts, the engine enforces legality.
        let op = match s {
            Step::Insert { level, entity, val } => Op::Insert {
                level: level_name(*level),
                values: vec![
                    Value::str(format!("k{entity}")),
                    Value::str(format!("v{val}")),
                ],
            },
            Step::Update {
                level,
                entity,
                kc,
                val,
            } => Op::Update {
                level: level_name(*level),
                key: Value::str(format!("k{entity}")),
                key_class: level_name(*kc),
                assignments: vec![(
                    "a".to_owned(),
                    Some(Value::str(format!("w{val}"))),
                    level_name(*level),
                )],
            },
            Step::Delete { level, entity, kc } => Op::Delete {
                level: level_name(*level),
                key: Value::str(format!("k{entity}")),
                key_class: level_name(*kc),
            },
        };
        let _ = apply(&mut rel, &op);
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Integrity is an invariant of the update engine.
    #[test]
    fn updates_preserve_integrity(steps in arb_steps()) {
        let rel = run_history(&steps);
        rel.check_integrity().expect("update engine must preserve Def 5.4");
    }

    /// Updates never write below the subject: every tuple's TC dominates
    /// its key class (writes at a level stamp that level's TC), and every
    /// stored class is dominated by the TC or was inherited unchanged.
    #[test]
    fn updates_respect_write_rules(steps in arb_steps()) {
        let rel = run_history(&steps);
        let lat = rel.lattice().clone();
        for t in rel.tuples() {
            prop_assert!(
                lat.leq(t.key_class(), t.tc),
                "tuple {:?}: key class above TC",
                t
            );
        }
    }

    /// Views of any update-produced state never leak values classified
    /// above the viewer.
    #[test]
    fn views_of_updated_state_never_leak(steps in arb_steps()) {
        let rel = run_history(&steps);
        let lat = rel.lattice().clone();
        for level in lat.labels() {
            let v = view_at(&rel, level);
            for t in v.tuples() {
                for (val, &cl) in t.values.iter().zip(&t.classes) {
                    if !val.is_null() {
                        prop_assert!(lat.leq(cl, level));
                    }
                }
            }
        }
    }

    /// A deleted entity stays visible only through higher-level
    /// polyinstantiated rows (the surprise-story mechanism), never
    /// through rows at or below the deleter's level.
    #[test]
    fn delete_removes_all_visible_rows(steps in arb_steps()) {
        let lat = Arc::new(standard::mission_levels());
        // Apply the random prefix.
        let mut rel = run_history(&steps);
        // Now delete k0 at S (the top): afterwards no tuple for k0 with
        // key class U/C/S and TC ⪯ S may remain — i.e. none at all.
        let op = Op::Delete {
            level: "S".into(),
            key: Value::str("k0"),
            key_class: "U".into(),
        };
        let _ = apply(&mut rel, &op);
        let s = lat.label("S").unwrap();
        let u = lat.label("U").unwrap();
        let survivors = rel
            .by_key(&Value::str("k0"))
            .filter(|t| t.key_class() == u && lat.leq(t.tc, s))
            .count();
        prop_assert_eq!(survivors, 0);
    }
}
