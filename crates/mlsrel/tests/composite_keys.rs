//! Multi-attribute apparent keys — the §7 extension: schemes may widen
//! the key to the first `n` attributes; entity integrity then requires
//! the key to be uniformly classified, and belief/view computations group
//! entities by the composite key.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use multilog_lattice::standard;
use multilog_mlsrel::belief::{believe, BeliefMode};
use multilog_mlsrel::cuppens;
use multilog_mlsrel::view::view_at;
use multilog_mlsrel::{MlsError, MlsRelation, MlsScheme, MlsTuple, Value};

/// Flight legs keyed by (airline, flight number): two airlines may share
/// a flight number, so a single-attribute key would conflate them.
fn flights() -> (Arc<multilog_lattice::SecurityLattice>, MlsRelation) {
    let lat = Arc::new(standard::mission_levels());
    let scheme =
        MlsScheme::unconstrained("flight", lat.clone(), &["airline", "number", "destination"])
            .with_key_width(2);
    let mut rel = MlsRelation::new(scheme);
    let (u, c, s) = (
        lat.label("U").unwrap(),
        lat.label("C").unwrap(),
        lat.label("S").unwrap(),
    );
    let t = |vals: [&str; 3], cls: [multilog_lattice::Label; 3], tc| {
        MlsTuple::new(
            vals.iter().map(|v| Value::str(*v)).collect(),
            cls.to_vec(),
            tc,
        )
    };
    rel.insert(t(["acme", "ml100", "geneva"], [u, u, u], u))
        .unwrap();
    // Same number, different airline: a distinct entity.
    rel.insert(t(["globex", "ml100", "lagos"], [u, u, u], u))
        .unwrap();
    // A classified override of acme/ml100's destination.
    rel.insert(t(["acme", "ml100", "baghdad"], [u, u, s], s))
        .unwrap();
    let _ = c;
    (lat, rel)
}

#[test]
fn composite_entities_stay_distinct_in_cautious_views() {
    let (lat, rel) = flights();
    let s = lat.label("S").unwrap();
    let cau = believe(&rel, s, BeliefMode::Cautious).unwrap();
    // Two entities → two believed tuples; acme/ml100 takes the S
    // destination, globex/ml100 keeps its own.
    assert_eq!(cau.len(), 2, "{}", cau.render());
    let acme = cau
        .tuples()
        .iter()
        .find(|t| t.values[0] == Value::str("acme"))
        .expect("acme entity believed");
    assert_eq!(acme.values[2], Value::str("baghdad"));
    let globex = cau
        .tuples()
        .iter()
        .find(|t| t.values[0] == Value::str("globex"))
        .expect("globex entity believed");
    assert_eq!(globex.values[2], Value::str("lagos"));
}

#[test]
fn composite_entities_in_trusted_view() {
    let (lat, rel) = flights();
    let s = lat.label("S").unwrap();
    let t = cuppens::trusted(&rel, s);
    // acme/ml100: the S assertion wins; globex/ml100 survives unchanged.
    assert_eq!(t.len(), 2, "{}", t.render());
}

#[test]
fn views_respect_composite_visibility() {
    let (lat, rel) = flights();
    let u = lat.label("U").unwrap();
    let v = view_at(&rel, u);
    // The S tuple's destination hides, the key stays visible: a σ row for
    // acme/ml100 appears with ⊥ but is subsumed by the U original.
    assert_eq!(v.len(), 2, "{}", v.render());
    assert!(v.tuples().iter().all(|t| !t.has_null()));
}

#[test]
fn nonuniform_key_classification_rejected() {
    let lat = Arc::new(standard::mission_levels());
    let scheme = MlsScheme::unconstrained("flight", lat.clone(), &["airline", "number", "dest"])
        .with_key_width(2);
    let mut rel = MlsRelation::new(scheme);
    let (u, s) = (lat.label("U").unwrap(), lat.label("S").unwrap());
    let bad = MlsTuple::new(
        vec![Value::str("acme"), Value::str("ml100"), Value::str("x")],
        vec![u, s, s],
        s,
    );
    assert!(matches!(
        rel.insert(bad),
        Err(MlsError::EntityIntegrity { .. })
    ));
}

#[test]
fn null_in_any_key_attribute_rejected() {
    let lat = Arc::new(standard::mission_levels());
    let scheme = MlsScheme::unconstrained("flight", lat.clone(), &["airline", "number", "dest"])
        .with_key_width(2);
    let mut rel = MlsRelation::new(scheme);
    let u = lat.label("U").unwrap();
    let bad = MlsTuple::new(
        vec![Value::str("acme"), Value::Null, Value::str("x")],
        vec![u, u, u],
        u,
    );
    assert!(matches!(
        rel.insert(bad),
        Err(MlsError::EntityIntegrity { .. })
    ));
}

#[test]
fn key_width_accessors() {
    let lat = Arc::new(standard::mission_levels());
    let scheme = MlsScheme::unconstrained("r", lat, &["a", "b", "c"]).with_key_width(2);
    assert_eq!(scheme.key_width(), 2);
    assert_eq!(scheme.key_indices(), 0..2);
}

#[test]
#[should_panic(expected = "key width")]
fn oversized_key_width_panics() {
    let lat = Arc::new(standard::mission_levels());
    let _ = MlsScheme::unconstrained("r", lat, &["a", "b"]).with_key_width(3);
}

#[test]
fn single_attribute_keys_unchanged() {
    // Default width is 1; the Mission figures still hold (smoke check).
    let (lat, rel) = multilog_mlsrel::mission::mission_relation();
    assert_eq!(rel.scheme().key_width(), 1);
    let c = lat.label("C").unwrap();
    assert_eq!(believe(&rel, c, BeliefMode::Firm).unwrap().len(), 1);
}
