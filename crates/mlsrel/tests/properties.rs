//! Property-based tests for the MLS relational model: security
//! (no-leak) invariants, β mode relationships, and view laws over
//! randomly generated multilevel relations.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use std::sync::Arc;

use multilog_lattice::{standard, Label, SecurityLattice};
use multilog_mlsrel::belief::{believe, BeliefMode};
use multilog_mlsrel::view::{view_at, view_at_with, ViewOptions};
use multilog_mlsrel::{MlsRelation, MlsScheme, MlsTuple, Value};

/// A random multilevel relation over a chain lattice of the given depth:
/// entities get a base tuple plus optional polyinstantiated variants, all
/// satisfying per-tuple entity/null integrity by construction.
fn arb_relation() -> impl Strategy<Value = (Arc<SecurityLattice>, MlsRelation)> {
    let depth = 2usize..5;
    let rows = proptest::collection::vec(
        // (entity, key-class rank, per-attr class bumps, tc bump, use_null)
        (
            0usize..6,
            0usize..4,
            [0usize..3, 0usize..3],
            0usize..3,
            any::<bool>(),
        ),
        1..24,
    );
    (depth, rows).prop_map(|(depth, rows)| {
        let lat = Arc::new(standard::chain(depth));
        let labels: Vec<Label> = lat.labels().collect();
        let clamp = |i: usize| labels[i.min(depth - 1)];
        let scheme = MlsScheme::unconstrained("r", lat.clone(), &["k", "a", "b"]);
        let mut rel = MlsRelation::new(scheme);
        for (ent, kc, [ca, cb], tcb, use_null) in rows {
            let key_class = clamp(kc);
            let a_class = clamp(kc + ca);
            let b_class = clamp(kc + cb);
            let tc = clamp(kc + ca.max(cb) + tcb);
            // Null integrity: ⊥ must sit at the key class.
            let a_val = if use_null && a_class == key_class {
                Value::Null
            } else {
                Value::str(format!("a{ent}_{ca}"))
            };
            let t = MlsTuple::new(
                vec![
                    Value::str(format!("k{ent}")),
                    a_val,
                    Value::str(format!("b{ent}_{cb}")),
                ],
                vec![key_class, a_class, b_class],
                tc,
            );
            // Insert may be a duplicate; per-tuple integrity holds by
            // construction.
            rel.insert(t).expect("constructed tuples satisfy integrity");
        }
        (lat, rel)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Simple security: a view at `c` never exposes a value classified
    /// above `c`, and never includes a tuple whose key class exceeds `c`.
    #[test]
    fn views_never_leak((lat, rel) in arb_relation()) {
        for c in lat.labels() {
            let v = view_at(&rel, c);
            for t in v.tuples() {
                prop_assert!(lat.leq(t.key_class(), c));
                prop_assert!(lat.leq(t.tc, c));
                for (val, &cl) in t.values.iter().zip(&t.classes) {
                    if !val.is_null() {
                        prop_assert!(lat.leq(cl, c), "leaked class above {:?}", c);
                    }
                }
            }
        }
    }

    /// Monotonicity of visibility: a higher clearance sees at least as
    /// many entities as a lower one.
    #[test]
    fn views_grow_with_clearance((lat, rel) in arb_relation()) {
        let labels: Vec<Label> = lat.labels().collect();
        for w in labels.windows(2) {
            let lo = view_at(&rel, w[0]);
            let hi = view_at(&rel, w[1]);
            let keys = |r: &MlsRelation| {
                let mut ks: Vec<Value> = r.tuples().iter().map(|t| t.key().clone()).collect();
                ks.sort();
                ks.dedup();
                ks
            };
            for k in keys(&lo) {
                prop_assert!(keys(&hi).contains(&k), "entity lost at higher level");
            }
        }
    }

    /// β never exposes values classified above the believer.
    #[test]
    fn beliefs_never_leak((lat, rel) in arb_relation()) {
        for s in lat.labels() {
            for mode in BeliefMode::all() {
                let b = believe(&rel, s, mode).unwrap();
                for t in b.tuples() {
                    for &cl in &t.classes {
                        prop_assert!(
                            lat.leq(cl, s),
                            "mode {:?} leaked class at {:?}",
                            mode,
                            s
                        );
                    }
                }
            }
        }
    }

    /// Firm ⊆ optimistic (after TC retagging).
    #[test]
    fn firm_subset_of_optimistic((lat, rel) in arb_relation()) {
        for s in lat.labels() {
            let firm = believe(&rel, s, BeliefMode::Firm).unwrap();
            let opt = believe(&rel, s, BeliefMode::Optimistic).unwrap();
            for t in firm.tuples() {
                let mut retagged = t.clone();
                retagged.tc = s;
                prop_assert!(opt.tuples().contains(&retagged));
            }
        }
    }

    /// Every cautiously believed (key, attr, value, class) comes from a
    /// visible stored tuple, and its class is maximal among visible
    /// same-key same-attr values.
    #[test]
    fn cautious_values_are_visible_maxima((lat, rel) in arb_relation()) {
        for s in lat.labels() {
            let cau = believe(&rel, s, BeliefMode::Cautious).unwrap();
            let visible: Vec<&MlsTuple> = rel.visible_at(s).collect();
            for t in cau.tuples() {
                for i in 0..t.arity() {
                    // Source exists.
                    prop_assert!(
                        visible.iter().any(|v| v.key() == t.key()
                            && v.values[i] == t.values[i]
                            && v.classes[i] == t.classes[i]),
                        "cautious value without a visible source"
                    );
                    // Maximality — for non-key attributes only: Def 3.1
                    // quantifies over A_i ∉ AK, so polyinstantiated keys
                    // legitimately appear once per visible key class.
                    if i != 0 {
                        prop_assert!(
                            !visible.iter().any(|w| w.key() == t.key()
                                && lat.lt(t.classes[i], w.classes[i])),
                            "cautious value beaten by a higher classification"
                        );
                    }
                }
            }
        }
    }

    /// The believed relations are deterministic.
    #[test]
    fn belief_is_deterministic((lat, rel) in arb_relation()) {
        for s in lat.labels() {
            for mode in BeliefMode::all() {
                let a = believe(&rel, s, mode).unwrap();
                let b = believe(&rel, s, mode).unwrap();
                prop_assert!(a.same_tuples(&b));
            }
        }
    }

    /// σ-free views never contain ⊥ introduced by filtering (only
    /// stored nulls), and never contain a tuple with a hidden column.
    #[test]
    fn sigma_free_views_have_no_surprise_stories((lat, rel) in arb_relation()) {
        for c in lat.labels() {
            let v = view_at_with(
                &rel,
                c,
                ViewOptions { filter_sigma: false, eliminate_subsumed: true },
            );
            for t in v.tuples() {
                for &cl in &t.classes {
                    prop_assert!(lat.leq(cl, c));
                }
            }
        }
    }

    /// Subsumption elimination only removes tuples; every surviving tuple
    /// was a candidate of the unfiltered view.
    #[test]
    fn subsumption_only_filters((lat, rel) in arb_relation()) {
        for c in lat.labels() {
            let full = view_at_with(
                &rel,
                c,
                ViewOptions { filter_sigma: true, eliminate_subsumed: false },
            );
            let pruned = view_at(&rel, c);
            prop_assert!(pruned.len() <= full.len());
            for t in pruned.tuples() {
                prop_assert!(full.tuples().contains(t), "subsumption invented a tuple");
            }
        }
    }

    /// At the bottom of the lattice, firm, optimistic and cautious all
    /// coincide (nothing can flow up from below the bottom).
    #[test]
    fn modes_coincide_at_bottom((lat, rel) in arb_relation()) {
        let bottom = lat.minimal()[0];
        let fir = believe(&rel, bottom, BeliefMode::Firm).unwrap();
        let opt = believe(&rel, bottom, BeliefMode::Optimistic).unwrap();
        let mut fir_retagged = Vec::new();
        for t in fir.tuples() {
            let mut t = t.clone();
            t.tc = bottom;
            fir_retagged.push(t);
        }
        for t in opt.tuples() {
            prop_assert!(fir_retagged.contains(t));
        }
    }
}
