//! σ filter invariants across the update semantics: the Mission history
//! of §3 is replayed operation by operation, and after *every* op the
//! Jajodia–Sandhu views (Figures 2–3) and the belief views of
//! Figures 6–8 are checked against an independent re-implementation of
//! the σ projection rule — key visibility gates the tuple, invisible
//! attributes are nulled at the key class, and the displayed `TC` clips
//! to the viewing level.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;

use multilog_lattice::{Label, SecurityLattice};
use multilog_mlsrel::belief::{believe, BeliefMode};
use multilog_mlsrel::mission;
use multilog_mlsrel::ops::{apply, Op};
use multilog_mlsrel::view::{view_at, view_at_with, ViewOptions};
use multilog_mlsrel::{MlsRelation, MlsTuple, Value};

/// Independent oracle for the σ projection of one stored tuple at view
/// class `c` (`None` when the key itself is invisible).
fn sigma_project(lat: &SecurityLattice, t: &MlsTuple, c: Label) -> Option<MlsTuple> {
    if !lat.leq(t.key_class(), c) {
        return None;
    }
    let mut values = Vec::with_capacity(t.arity());
    let mut classes = Vec::with_capacity(t.arity());
    for (v, &cl) in t.values.iter().zip(&t.classes) {
        if lat.leq(cl, c) {
            values.push(v.clone());
            classes.push(cl);
        } else {
            values.push(Value::Null);
            classes.push(t.key_class());
        }
    }
    let tc = if lat.leq(t.tc, c) { t.tc } else { c };
    Some(MlsTuple::new(values, classes, tc))
}

/// Canonical rendering of a relation's tuple set for set comparison.
fn tuple_set(lat: &SecurityLattice, rel: &MlsRelation) -> BTreeSet<String> {
    rel.tuples().iter().map(|t| t.render(lat)).collect()
}

/// Assert every σ/view/belief invariant of the current stored state, at
/// every level of the lattice.
fn assert_sigma_invariants(lat: &SecurityLattice, rel: &MlsRelation) {
    rel.check_integrity()
        .expect("stored state passes Definition 5.4 integrity");
    for level in ["U", "C", "S"] {
        let c = lat.label(level).unwrap();

        // The raw σ view (no subsumption) must equal the oracle exactly.
        let raw = view_at_with(
            rel,
            c,
            ViewOptions {
                filter_sigma: true,
                eliminate_subsumed: false,
            },
        );
        let expected: BTreeSet<String> = rel
            .tuples()
            .iter()
            .filter_map(|t| sigma_project(lat, t, c))
            .map(|t| t.render(lat))
            .collect();
        assert_eq!(
            tuple_set(lat, &raw),
            expected,
            "σ view at {level} diverged from the projection oracle"
        );

        // No read-up: everything displayed at c is classified ⪯ c.
        for t in raw.tuples() {
            assert!(lat.leq(t.tc, c), "view TC leaks above {level}");
            assert!(lat.leq(t.key_class(), c), "key class leaks above {level}");
            assert!(
                t.classes.iter().all(|&cl| lat.leq(cl, c)),
                "attribute class leaks above {level}"
            );
        }

        // Subsumption elimination only ever drops candidates.
        let cooked = view_at(rel, c);
        assert!(
            tuple_set(lat, &cooked).is_subset(&tuple_set(lat, &raw)),
            "subsumption at {level} invented a tuple"
        );

        // The belief views of Figures 6–8 never leak σ-invisible data:
        // every believed non-null attribute value is visible somewhere in
        // the stored relation at a class ⪯ c.
        for mode in BeliefMode::all() {
            let believed = believe(rel, c, mode).expect("belief view computes");
            for bt in believed.tuples() {
                for (i, v) in bt.values.iter().enumerate() {
                    if *v == Value::Null {
                        continue;
                    }
                    let witnessed = rel.tuples().iter().any(|st| {
                        st.values[i] == *v
                            && lat.leq(st.classes[i], c)
                            && lat.leq(st.key_class(), c)
                    });
                    assert!(
                        witnessed,
                        "{mode:?} belief at {level} leaked `{v:?}` for attribute {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn mission_history_preserves_sigma_invariants_after_every_op() {
    let (lat, scheme) = mission::mission_scheme();
    let mut rel = MlsRelation::new(scheme);
    assert_sigma_invariants(&lat, &rel);
    for op in mission::mission_history() {
        apply(&mut rel, &op).expect("mission history replays");
        assert_sigma_invariants(&lat, &rel);
    }
    // The replay ends at Figure 1, whose C-level belief views are
    // Figures 6–8 (modulo the σ-generated t4/t5, which β omits).
    let (_, fig1) = mission::mission_relation();
    assert!(rel.same_tuples(&fig1));
    let c = lat.label("C").unwrap();
    let firm = believe(&rel, c, BeliefMode::Firm).unwrap();
    assert_eq!(firm.len(), 1, "Figure 6: only the re-asserted Atlantis");
    assert_eq!(firm.tuples()[0].key(), &Value::str("Atlantis"));
}

#[test]
fn polyinstantiating_update_keeps_cover_story_under_sigma() {
    let (lat, scheme) = mission::mission_scheme();
    let mut rel = MlsRelation::new(scheme);
    apply(
        &mut rel,
        &Op::Insert {
            level: "U".into(),
            values: vec![
                Value::str("Voyager"),
                Value::str("Training"),
                Value::str("Mars"),
            ],
        },
    )
    .unwrap();
    assert_sigma_invariants(&lat, &rel);

    // The S-subject update polyinstantiates: the U cover story survives
    // next to the new S-classified objective.
    apply(
        &mut rel,
        &Op::Update {
            level: "S".into(),
            key: Value::str("Voyager"),
            key_class: "U".into(),
            assignments: vec![("Objective".into(), Some(Value::str("Spying")), "S".into())],
        },
    )
    .unwrap();
    assert_eq!(rel.len(), 2);
    assert_sigma_invariants(&lat, &rel);

    // At U, σ shows only the cover story — never a null for the hidden
    // S objective, because the U tuple is untouched.
    let u = lat.label("U").unwrap();
    let at_u = view_at(&rel, u);
    assert_eq!(at_u.len(), 1);
    assert_eq!(at_u.tuples()[0].values[1], Value::str("Training"));

    // At S, the cautious believer takes the S objective over the beaten
    // cover story (Figure 8's overriding rule).
    let s = lat.label("S").unwrap();
    let cau = believe(&rel, s, BeliefMode::Cautious).unwrap();
    assert_eq!(cau.len(), 1);
    assert_eq!(cau.tuples()[0].values[1], Value::str("Spying"));
}

#[test]
fn delete_below_leaves_surprise_story_sigma_clean() {
    let (lat, scheme) = mission::mission_scheme();
    let mut rel = MlsRelation::new(scheme);
    apply(
        &mut rel,
        &Op::Insert {
            level: "U".into(),
            values: vec![
                Value::str("Phantom"),
                Value::str("Spying"),
                Value::str("Omega"),
            ],
        },
    )
    .unwrap();
    apply(
        &mut rel,
        &Op::Update {
            level: "S".into(),
            key: Value::str("Phantom"),
            key_class: "U".into(),
            assignments: vec![(
                "Objective".into(),
                Some(Value::str("Smuggling")),
                "S".into(),
            )],
        },
    )
    .unwrap();
    assert_sigma_invariants(&lat, &rel);

    // U deletes its row; the S polyinstantiated row outlives it — the
    // surprise story of §3 — and σ must now null its objective for U.
    apply(
        &mut rel,
        &Op::Delete {
            level: "U".into(),
            key: Value::str("Phantom"),
            key_class: "U".into(),
        },
    )
    .unwrap();
    assert_sigma_invariants(&lat, &rel);
    assert_eq!(rel.len(), 1);
    let u = lat.label("U").unwrap();
    let at_u = view_at(&rel, u);
    assert_eq!(at_u.len(), 1, "the dangling U key is still visible at U");
    assert_eq!(at_u.tuples()[0].values[1], Value::Null);
}
