//! Jukic–Vrbsky interpretations on histories beyond the paper's Mission
//! example: each test builds a small update history and checks the
//! five-way interpretation grid.

// Test code: unwraps are the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use multilog_lattice::standard;
use multilog_mlsrel::jv::{Interpretation, JvRelation};
use multilog_mlsrel::ops::Op;
use multilog_mlsrel::{MlsScheme, Value};

fn scheme() -> MlsScheme {
    let lat = Arc::new(standard::mission_levels());
    MlsScheme::unconstrained("r", lat, &["k", "a"])
}

fn insert(level: &str, key: &str, val: &str) -> Op {
    Op::Insert {
        level: level.into(),
        values: vec![Value::str(key), Value::str(val)],
    }
}

fn update(level: &str, key: &str, kc: &str, val: &str) -> Op {
    Op::Update {
        level: level.into(),
        key: Value::str(key),
        key_class: kc.into(),
        assignments: vec![("a".into(), Some(Value::str(val)), level.into())],
    }
}

fn interp(jv: &JvRelation, idx: usize, level: &str) -> Interpretation {
    let l = jv.scheme().lattice().label(level).unwrap();
    jv.interpret(idx, l)
}

#[test]
fn plain_insert_is_true_at_creator_irrelevant_above() {
    let jv = JvRelation::from_history(scheme(), &[insert("U", "k1", "x")]).unwrap();
    assert_eq!(jv.variants().len(), 1);
    assert_eq!(interp(&jv, 0, "U"), Interpretation::True);
    assert_eq!(interp(&jv, 0, "C"), Interpretation::Irrelevant);
    assert_eq!(interp(&jv, 0, "S"), Interpretation::Irrelevant);
}

#[test]
fn update_creates_cover_story_at_and_above_the_updater() {
    let jv = JvRelation::from_history(
        scheme(),
        &[insert("U", "k1", "x"), update("C", "k1", "U", "y")],
    )
    .unwrap();
    assert_eq!(jv.variants().len(), 2);
    // The original: true at U; known cover story at C and S (the
    // replacement is visible from C up).
    assert_eq!(interp(&jv, 0, "U"), Interpretation::True);
    assert_eq!(interp(&jv, 0, "C"), Interpretation::CoverStory);
    assert_eq!(interp(&jv, 0, "S"), Interpretation::CoverStory);
    // The replacement: invisible below C, true at C, irrelevant at S
    // (S has not asserted it).
    assert_eq!(interp(&jv, 1, "U"), Interpretation::Invisible);
    assert_eq!(interp(&jv, 1, "C"), Interpretation::True);
    assert_eq!(interp(&jv, 1, "S"), Interpretation::Irrelevant);
}

#[test]
fn chained_updates_mark_all_ancestors() {
    let jv = JvRelation::from_history(
        scheme(),
        &[
            insert("U", "k1", "x"),
            update("C", "k1", "U", "y"),
            update("S", "k1", "U", "z"),
        ],
    )
    .unwrap();
    assert_eq!(jv.variants().len(), 3);
    // Transitive replacement: both earlier variants are cover stories at S.
    assert_eq!(interp(&jv, 0, "S"), Interpretation::CoverStory);
    assert_eq!(interp(&jv, 1, "S"), Interpretation::CoverStory);
    assert_eq!(interp(&jv, 2, "S"), Interpretation::True);
}

#[test]
fn reassertion_merges_believers() {
    let jv = JvRelation::from_history(
        scheme(),
        &[
            insert("U", "k1", "x"),
            Op::Assert {
                level: "S".into(),
                values: vec![Value::str("k1"), Value::str("x")],
                key_class: "U".into(),
            },
        ],
    )
    .unwrap();
    assert_eq!(
        jv.variants().len(),
        1,
        "re-assertion merges, not duplicates"
    );
    assert_eq!(interp(&jv, 0, "U"), Interpretation::True);
    assert_eq!(interp(&jv, 0, "C"), Interpretation::Irrelevant);
    assert_eq!(interp(&jv, 0, "S"), Interpretation::True);
    assert_eq!(jv.row_label(0), "US");
}

#[test]
fn assert_false_is_a_mirage_only_at_the_asserter() {
    let jv = JvRelation::from_history(
        scheme(),
        &[
            insert("U", "k1", "x"),
            Op::AssertFalse {
                level: "S".into(),
                key: Value::str("k1"),
                key_class: "U".into(),
            },
        ],
    )
    .unwrap();
    assert_eq!(interp(&jv, 0, "U"), Interpretation::True);
    assert_eq!(interp(&jv, 0, "C"), Interpretation::Irrelevant);
    assert_eq!(interp(&jv, 0, "S"), Interpretation::Mirage);
    assert_eq!(jv.attr_label(0, 1), "U-S");
}

#[test]
fn delete_does_not_retract_beliefs() {
    let jv = JvRelation::from_history(
        scheme(),
        &[
            insert("U", "k1", "x"),
            Op::Delete {
                level: "U".into(),
                key: Value::str("k1"),
                key_class: "U".into(),
            },
        ],
    )
    .unwrap();
    assert_eq!(jv.variants().len(), 1);
    assert_eq!(interp(&jv, 0, "U"), Interpretation::True);
}

#[test]
fn labels_order_levels_bottom_up() {
    let jv = JvRelation::from_history(
        scheme(),
        &[
            insert("U", "k1", "x"),
            Op::Assert {
                level: "C".into(),
                values: vec![Value::str("k1"), Value::str("x")],
                key_class: "U".into(),
            },
            Op::Assert {
                level: "S".into(),
                values: vec![Value::str("k1"), Value::str("x")],
                key_class: "U".into(),
            },
        ],
    )
    .unwrap();
    assert_eq!(jv.row_label(0), "UCS");
}
