//! Recursive-descent parser for the textual Datalog syntax.
//!
//! Grammar (conventional):
//!
//! ```text
//! program  := clause*
//! clause   := head ( ":-" body )? "."
//! query    := "?-" body "."
//! head     := IDENT ( "(" headterm ("," headterm)* ")" )?
//! headterm := term | ("count"|"sum"|"min"|"max") "(" VARIABLE ")"
//! body     := literal ("," literal)*
//! literal  := "not" atom | atom | algocall | term cmp term
//!           | term "=" term ("+" | "-" | "*" | "/" | "%") term
//! algocall := "@" IDENT "(" IDENT ("," term)* ")"
//! atom     := IDENT ( "(" term ("," term)* ")" )?
//! term     := VARIABLE | IDENT | INTEGER | STRING
//! cmp      := "=" | "!=" | "<" | "<=" | ">" | ">="
//! ```
//!
//! Identifiers starting with a lowercase letter are symbols; identifiers
//! starting with an uppercase letter or `_` are variables; `%` starts a
//! line comment. Quoted strings are symbols that need not lex as bare
//! identifiers. An `@name(input, …)` body literal calls a native
//! algorithm operator ([`crate::algo`]) over the `input` relation; it
//! parses to a positive literal whose predicate is the synthetic call
//! name `@name(input)`. A head term `count(V)`/`sum(V)`/`min(V)`/`max(V)`
//! makes the clause an aggregate rule over the group-by key formed by
//! the remaining head terms.

use crate::algo;
use crate::atom::{ArithOp, Atom, CmpOp, Literal};
use crate::clause::{AggFunc, Aggregate, Clause};
use crate::program::Program;
use crate::term::Term;
use crate::{DatalogError, Result};

/// Parse a full program.
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut clauses = Vec::new();
    while !p.at_end() {
        clauses.push(p.clause()?);
    }
    Program::from_clauses(clauses)
}

/// Parse a single clause (must consume all input).
pub fn parse_clause(src: &str) -> Result<Clause> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let c = p.clause()?;
    p.expect_end()?;
    Ok(c)
}

/// Parse a single atom, e.g. for queries: `path(X, b)`.
pub fn parse_atom(src: &str) -> Result<Atom> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let a = p.atom()?;
    p.expect_end()?;
    Ok(a)
}

/// Parse a query body: `?- p(X), not q(X).` (the `?-` and `.` optional).
pub fn parse_query(src: &str) -> Result<Vec<Literal>> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    if p.peek_is(&TokenKind::QueryArrow) {
        p.advance();
    }
    let body = p.body()?;
    if p.peek_is(&TokenKind::Dot) {
        p.advance();
    }
    p.expect_end()?;
    Ok(body)
}

#[derive(Debug, Clone, PartialEq)]
enum TokenKind {
    Ident(String),    // lowercase-leading
    Variable(String), // uppercase/underscore-leading
    Integer(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Rule,       // :-
    QueryArrow, // ?-
    Cmp(CmpOp),
    Arith(ArithOp),
    Not,
    AlgoName(String), // @bfs, @cc, …
}

#[derive(Debug, Clone)]
struct Token {
    kind: TokenKind,
    line: usize,
    column: usize,
}

fn lex(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;
    let mut col = 1usize;
    let err = |line: usize, column: usize, message: String| DatalogError::Parse {
        line,
        column,
        message,
    };

    while let Some(&(_, ch)) = chars.peek() {
        let (tl, tc) = (line, col);
        let bump = |c: char, line: &mut usize, col: &mut usize| {
            if c == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        };
        match ch {
            c if c.is_whitespace() => {
                chars.next();
                bump(c, &mut line, &mut col);
            }
            '%' => {
                // Line comment.
                for (_, c) in chars.by_ref() {
                    bump(c, &mut line, &mut col);
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' | ',' | '.' => {
                chars.next();
                bump(ch, &mut line, &mut col);
                let kind = match ch {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    ',' => TokenKind::Comma,
                    _ => TokenKind::Dot,
                };
                tokens.push(Token {
                    kind,
                    line: tl,
                    column: tc,
                });
            }
            ':' => {
                chars.next();
                bump(':', &mut line, &mut col);
                match chars.peek() {
                    Some(&(_, '-')) => {
                        chars.next();
                        bump('-', &mut line, &mut col);
                        tokens.push(Token {
                            kind: TokenKind::Rule,
                            line: tl,
                            column: tc,
                        });
                    }
                    _ => return Err(err(tl, tc, "expected `:-`".into())),
                }
            }
            '?' => {
                chars.next();
                bump('?', &mut line, &mut col);
                match chars.peek() {
                    Some(&(_, '-')) => {
                        chars.next();
                        bump('-', &mut line, &mut col);
                        tokens.push(Token {
                            kind: TokenKind::QueryArrow,
                            line: tl,
                            column: tc,
                        });
                    }
                    _ => return Err(err(tl, tc, "expected `?-`".into())),
                }
            }
            '=' => {
                chars.next();
                bump('=', &mut line, &mut col);
                tokens.push(Token {
                    kind: TokenKind::Cmp(CmpOp::Eq),
                    line: tl,
                    column: tc,
                });
            }
            '!' => {
                chars.next();
                bump('!', &mut line, &mut col);
                match chars.peek() {
                    Some(&(_, '=')) => {
                        chars.next();
                        bump('=', &mut line, &mut col);
                        tokens.push(Token {
                            kind: TokenKind::Cmp(CmpOp::Ne),
                            line: tl,
                            column: tc,
                        });
                    }
                    _ => return Err(err(tl, tc, "expected `!=`".into())),
                }
            }
            '<' | '>' => {
                chars.next();
                bump(ch, &mut line, &mut col);
                let eq = matches!(chars.peek(), Some(&(_, '=')));
                if eq {
                    chars.next();
                    bump('=', &mut line, &mut col);
                }
                let op = if ch == '<' {
                    if eq {
                        CmpOp::Le
                    } else {
                        CmpOp::Lt
                    }
                } else if eq {
                    CmpOp::Ge
                } else {
                    CmpOp::Gt
                };
                tokens.push(Token {
                    kind: TokenKind::Cmp(op),
                    line: tl,
                    column: tc,
                });
            }
            '"' => {
                chars.next();
                bump('"', &mut line, &mut col);
                let mut s = String::new();
                let mut closed = false;
                while let Some(&(_, c)) = chars.peek() {
                    chars.next();
                    bump(c, &mut line, &mut col);
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            let esc = chars
                                .peek()
                                .map(|&(_, e)| e)
                                .ok_or_else(|| err(line, col, "unterminated escape".into()))?;
                            chars.next();
                            bump(esc, &mut line, &mut col);
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                        }
                        other => s.push(other),
                    }
                }
                if !closed {
                    return Err(err(tl, tc, "unterminated string literal".into()));
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: tl,
                    column: tc,
                });
            }
            '+' | '*' | '/' => {
                chars.next();
                bump(ch, &mut line, &mut col);
                let op = match ch {
                    '+' => ArithOp::Add,
                    '*' => ArithOp::Mul,
                    _ => ArithOp::Div,
                };
                tokens.push(Token {
                    kind: TokenKind::Arith(op),
                    line: tl,
                    column: tc,
                });
            }
            c if c.is_ascii_digit() || c == '-' => {
                chars.next();
                bump(c, &mut line, &mut col);
                // A `-` directly after a value-like token is subtraction;
                // otherwise it introduces a negative integer literal.
                if c == '-' {
                    let after_value = matches!(
                        tokens.last().map(|t| &t.kind),
                        Some(
                            TokenKind::Integer(_)
                                | TokenKind::Ident(_)
                                | TokenKind::Variable(_)
                                | TokenKind::RParen
                        )
                    );
                    if after_value || !chars.peek().is_some_and(|&(_, d)| d.is_ascii_digit()) {
                        tokens.push(Token {
                            kind: TokenKind::Arith(ArithOp::Sub),
                            line: tl,
                            column: tc,
                        });
                        continue;
                    }
                }
                let mut text = String::new();
                text.push(c);
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        chars.next();
                        bump(d, &mut line, &mut col);
                    } else {
                        break;
                    }
                }
                if text == "-" {
                    return Err(err(tl, tc, "`-` is not a token; expected integer".into()));
                }
                let i: i64 = text
                    .parse()
                    .map_err(|_| err(tl, tc, format!("integer out of range: {text}")))?;
                tokens.push(Token {
                    kind: TokenKind::Integer(i),
                    line: tl,
                    column: tc,
                });
            }
            '@' => {
                chars.next();
                bump('@', &mut line, &mut col);
                let mut text = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        text.push(d);
                        chars.next();
                        bump(d, &mut line, &mut col);
                    } else {
                        break;
                    }
                }
                if text.is_empty() || !text.starts_with(|c: char| c.is_lowercase()) {
                    return Err(err(
                        tl,
                        tc,
                        "expected a lowercase algorithm operator name after `@`".into(),
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::AlgoName(text),
                    line: tl,
                    column: tc,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        text.push(d);
                        chars.next();
                        bump(d, &mut line, &mut col);
                    } else {
                        break;
                    }
                }
                let kind = if text == "not" {
                    TokenKind::Not
                } else if text == "mod" {
                    // `mod` is reserved as the remainder operator (`%`
                    // already starts comments in this syntax).
                    TokenKind::Arith(ArithOp::Rem)
                } else if text.starts_with(|c: char| c.is_uppercase() || c == '_') {
                    TokenKind::Variable(text)
                } else {
                    TokenKind::Ident(text)
                };
                tokens.push(Token {
                    kind,
                    line: tl,
                    column: tc,
                });
            }
            other => {
                return Err(err(tl, tc, format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_is(&self, kind: &TokenKind) -> bool {
        self.peek().is_some_and(|t| &t.kind == kind)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> DatalogError {
        let (line, column) = self
            .peek()
            .or_else(|| self.tokens.last())
            .map_or((1, 1), |t| (t.line, t.column));
        DatalogError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<()> {
        if self.peek_is(&kind) {
            self.advance();
            Ok(())
        } else {
            Err(self.error_here(format!("expected {what}")))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.error_here("expected end of input"))
        }
    }

    fn clause(&mut self) -> Result<Clause> {
        let span = self.peek().map_or_else(crate::clause::Span::unknown, |t| {
            crate::clause::Span::new(t.line, t.column)
        });
        let (head, agg) = self.head_atom()?;
        let body = if self.peek_is(&TokenKind::Rule) {
            self.advance();
            self.body()?
        } else {
            Vec::new()
        };
        self.expect(TokenKind::Dot, "`.` at end of clause")?;
        let mut clause = Clause::new(head, body).with_span(span);
        if let Some(agg) = agg {
            clause = clause.with_aggregate(agg);
        }
        Ok(clause)
    }

    /// A clause head: like [`Parser::atom`], but one argument position
    /// may be an aggregate term `count(V)`/`sum(V)`/`min(V)`/`max(V)`.
    fn head_atom(&mut self) -> Result<(Atom, Option<Aggregate>)> {
        let name = match self.advance() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => name.clone(),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error_here("expected predicate name"));
            }
        };
        let mut terms = Vec::new();
        let mut agg: Option<Aggregate> = None;
        if self.peek_is(&TokenKind::LParen) {
            self.advance();
            loop {
                // `func(` with a known aggregate name is an aggregate
                // term; anything else (including `func` as a plain
                // symbol) parses as an ordinary term.
                let func = match self.peek() {
                    Some(Token {
                        kind: TokenKind::Ident(f),
                        ..
                    }) => AggFunc::from_name(f),
                    _ => None,
                };
                match func {
                    Some(func)
                        if self
                            .tokens
                            .get(self.pos + 1)
                            .is_some_and(|t| t.kind == TokenKind::LParen) =>
                    {
                        if agg.is_some() {
                            return Err(self.error_here("at most one aggregate per head"));
                        }
                        self.advance(); // the function name
                        self.advance(); // `(`
                        let arg = self.term()?;
                        if arg.as_var().is_none() {
                            return Err(self.error_here(format!(
                                "`{func}(...)` takes a variable to aggregate"
                            )));
                        }
                        self.expect(TokenKind::RParen, "`)` after aggregate variable")?;
                        agg = Some(Aggregate {
                            func,
                            position: terms.len(),
                        });
                        terms.push(arg);
                    }
                    _ => terms.push(self.term()?),
                }
                if self.peek_is(&TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(TokenKind::RParen, "`)`")?;
        }
        Ok((Atom::new(name, terms), agg))
    }

    fn body(&mut self) -> Result<Vec<Literal>> {
        let mut out = vec![self.literal()?];
        while self.peek_is(&TokenKind::Comma) {
            self.advance();
            out.push(self.literal()?);
        }
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal> {
        if self.peek_is(&TokenKind::Not) {
            self.advance();
            return Ok(Literal::Neg(self.atom()?));
        }
        if let Some(Token {
            kind: TokenKind::AlgoName(name),
            ..
        }) = self.peek()
        {
            let name = name.clone();
            self.advance();
            return self.algo_call(&name);
        }
        // Could be an atom or a comparison; a comparison starts with a term
        // followed by an operator. An atom starts with an identifier; if the
        // identifier is followed by a comparison operator, it was a term.
        let start = self.pos;
        if let Ok(term) = self.term() {
            if let Some(Token {
                kind: TokenKind::Cmp(op),
                ..
            }) = self.peek()
            {
                let op = *op;
                self.advance();
                let rhs = self.term()?;
                // `T = X op Y` is an arithmetic built-in.
                if op == CmpOp::Eq {
                    if let Some(Token {
                        kind: TokenKind::Arith(aop),
                        ..
                    }) = self.peek()
                    {
                        let aop = *aop;
                        self.advance();
                        let rhs2 = self.term()?;
                        return Ok(Literal::Arith {
                            target: term,
                            lhs: rhs,
                            op: aop,
                            rhs: rhs2,
                        });
                    }
                }
                return Ok(Literal::Cmp { op, lhs: term, rhs });
            }
        }
        self.pos = start;
        Ok(Literal::Pos(self.atom()?))
    }

    /// `@name(input, t1, …, tn)` — an algorithm operator call, parsed
    /// into a positive literal over the synthetic predicate
    /// `@name(input)` with `t1..tn` as its argument terms.
    fn algo_call(&mut self, name: &str) -> Result<Literal> {
        self.expect(TokenKind::LParen, "`(` after algorithm operator")?;
        let input = match self.advance() {
            Some(Token {
                kind: TokenKind::Ident(input),
                ..
            }) => input.clone(),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error_here("expected input predicate name in algorithm call"));
            }
        };
        let mut terms = Vec::new();
        while self.peek_is(&TokenKind::Comma) {
            self.advance();
            terms.push(self.term()?);
        }
        self.expect(TokenKind::RParen, "`)` at end of algorithm call")?;
        Ok(Literal::Pos(Atom::new(
            algo::call_predicate(name, &input),
            terms,
        )))
    }

    fn atom(&mut self) -> Result<Atom> {
        let name = match self.advance() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => name.clone(),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error_here("expected predicate name"));
            }
        };
        let mut terms = Vec::new();
        if self.peek_is(&TokenKind::LParen) {
            self.advance();
            terms.push(self.term()?);
            while self.peek_is(&TokenKind::Comma) {
                self.advance();
                terms.push(self.term()?);
            }
            self.expect(TokenKind::RParen, "`)`")?;
        }
        Ok(Atom::new(name, terms))
    }

    fn term(&mut self) -> Result<Term> {
        match self.peek().cloned() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => {
                self.advance();
                // An identifier followed by `(` is an atom, not a term.
                if self.peek_is(&TokenKind::LParen) {
                    self.pos -= 1;
                    return Err(self.error_here("expected term, found atom"));
                }
                Ok(Term::sym(s))
            }
            Some(Token {
                kind: TokenKind::Variable(v),
                ..
            }) => {
                self.advance();
                Ok(Term::var(v))
            }
            Some(Token {
                kind: TokenKind::Integer(i),
                ..
            }) => {
                self.advance();
                Ok(Term::int(i))
            }
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => {
                self.advance();
                Ok(Term::sym(s))
            }
            _ => Err(self.error_here("expected term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_and_rules() {
        let p = parse_program(
            r#"
            % the classic
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.arity("path"), Some(2));
    }

    #[test]
    fn parses_negation_and_comparisons() {
        let c = parse_clause("p(X) :- q(X, Y), not r(Y), X != Y, Y >= 3.").unwrap();
        assert_eq!(c.body.len(), 4);
        assert_eq!(c.to_string(), "p(X) :- q(X, Y), not r(Y), X != Y, Y >= 3.");
    }

    #[test]
    fn parses_zero_arity() {
        let c = parse_clause("halt :- done.").unwrap();
        assert_eq!(c.head.arity(), 0);
    }

    #[test]
    fn parses_strings_and_negatives() {
        let c = parse_clause(r#"p("Outer Space", -42)."#).unwrap();
        assert_eq!(c.head.terms[0], Term::sym("Outer Space"));
        assert_eq!(c.head.terms[1], Term::int(-42));
    }

    #[test]
    fn parses_query() {
        let q = parse_query("?- path(X, c), not edge(X, c).").unwrap();
        assert_eq!(q.len(), 2);
        let q = parse_query("path(X, c)").unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn parse_atom_standalone() {
        let a = parse_atom("bel(P, K, A, V, C, H, cau)").unwrap();
        assert_eq!(a.arity(), 7);
    }

    #[test]
    fn error_positions() {
        let err = parse_program("p(a)\nq(b).").unwrap_err();
        match err {
            DatalogError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(parse_program(r#"p("oops)."#).is_err());
    }

    #[test]
    fn rejects_lone_colon() {
        assert!(parse_program("p(a) : q(b).").is_err());
    }

    #[test]
    fn rejects_bad_char() {
        assert!(parse_program("p(a) & q(b).").is_err());
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse_clause("p(a)").is_err());
    }

    #[test]
    fn rejects_trailing_tokens_in_clause() {
        assert!(parse_clause("p(a). q(b).").is_err());
    }

    #[test]
    fn escapes_in_strings() {
        let c = parse_clause(r#"p("a\"b\nc")."#).unwrap();
        assert_eq!(c.head.terms[0], Term::sym("a\"b\nc"));
    }

    #[test]
    fn variable_and_underscore() {
        let c = parse_clause("p(X) :- q(X, _Ignored).").unwrap();
        assert_eq!(c.body[0].variables(), vec!["X", "_Ignored"]);
    }

    #[test]
    fn comment_at_eof() {
        let p = parse_program("p(a). % trailing comment").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn comparison_between_constants() {
        let c = parse_clause("p(X) :- q(X), 1 < 2.").unwrap();
        assert!(matches!(c.body[1], Literal::Cmp { op: CmpOp::Lt, .. }));
    }

    #[test]
    fn parses_algo_call() {
        let c = parse_clause("reach(X, Y) :- @bfs(edge, X, Y).").unwrap();
        let a = c.body[0].atom().unwrap();
        assert_eq!(a.predicate.as_str(), "@bfs(edge)");
        assert_eq!(a.arity(), 2);
        assert_eq!(c.to_string(), "reach(X, Y) :- @bfs(edge, X, Y).");
    }

    #[test]
    fn parses_algo_call_with_constants() {
        let c = parse_clause("best(X, S) :- @topk(score, 3, X, S).").unwrap();
        let a = c.body[0].atom().unwrap();
        assert_eq!(a.predicate.as_str(), "@topk(score)");
        assert_eq!(a.terms[0], Term::int(3));
        assert_eq!(c.to_string(), "best(X, S) :- @topk(score, 3, X, S).");
    }

    #[test]
    fn rejects_malformed_algo_calls() {
        assert!(parse_clause("p(X) :- @bfs.").is_err());
        assert!(parse_clause("p(X) :- @bfs(X, Y).").is_err()); // input must be an identifier
        assert!(parse_clause("p(X) :- @Bfs(edge, X, X).").is_err());
        assert!(parse_clause("p(X) :- not @bfs(edge, X, X).").is_err());
    }

    #[test]
    fn parses_aggregate_head() {
        let c = parse_clause("dash(H, count(K)) :- vis(H, K).").unwrap();
        let agg = c.agg.unwrap();
        assert_eq!(agg.func, crate::clause::AggFunc::Count);
        assert_eq!(agg.position, 1);
        assert_eq!(c.head.terms[1], Term::var("K"));
        assert_eq!(c.to_string(), "dash(H, count(K)) :- vis(H, K).");
    }

    #[test]
    fn aggregate_display_reparses() {
        for src in [
            "t(sum(V)) :- p(V).",
            "m(G, min(V)) :- p(G, V).",
            "m(max(V), G) :- p(G, V).",
        ] {
            let c = parse_clause(src).unwrap();
            assert_eq!(parse_clause(&c.to_string()).unwrap(), c);
        }
    }

    #[test]
    fn aggregate_names_stay_plain_symbols_elsewhere() {
        // `count` with no parens is an ordinary symbol or predicate.
        let c = parse_clause("p(count) :- q(count).").unwrap();
        assert!(c.agg.is_none());
        let c = parse_clause("count(X) :- q(X).").unwrap();
        assert!(c.agg.is_none());
        assert_eq!(c.head.predicate.as_str(), "count");
    }

    #[test]
    fn rejects_malformed_aggregates() {
        assert!(parse_clause("t(count(K), sum(V)) :- p(K, V).").is_err());
        assert!(parse_clause("t(count(3)) :- p(X).").is_err());
        assert!(parse_clause("p(X) :- q(count(X)).").is_err());
    }
}
