//! Magic-sets (demand transformation) rewriting: evaluate only the
//! sub-fixpoint a partially-bound goal actually demands.
//!
//! [`crate::Engine::run_for_query`] trims evaluation to the goal's
//! dependency *cone*, but still materializes every tuple of every
//! predicate inside the cone. For a point query like `path(a, X)` that is
//! quadratically too much work: only the paths starting at `a` matter.
//! The classic fix is the magic-sets rewrite — specialize the program to
//! the query's bound/free argument pattern so bottom-up evaluation
//! simulates top-down goal-directed search:
//!
//! 1. **Adorn** each derived predicate reached from the goal with a
//!    binding pattern (`b`ound/`f`ree per argument), propagated sideways
//!    through rule bodies in textual order: an argument is bound when it
//!    is a constant or a variable bound by the rule's demanded head
//!    positions or an earlier body literal.
//! 2. For every adorned predicate `p^α`, introduce a **magic predicate**
//!    `__mg_α__p` holding the demanded bound-argument tuples, seeded from
//!    the goal's constants and propagated by **demand rules** built from
//!    rule-body prefixes.
//! 3. Replace each rule for `p` by a **guarded variant** whose body is
//!    prefixed with the magic literal, so the rule only fires for
//!    demanded bindings.
//! 4. Collect the goal's answers with a dedicated `__goal__` rule, and
//!    restratify the rewritten program (the existing Kosaraju-based
//!    [`crate::Program::stratify`] pass) before handing it to the
//!    semi-naive engine.
//!
//! **Negation.** Predicates consulted under negation (transitively) are
//! never adorned: the stratified `¬∃` semantics needs the negated
//! relation complete, so their entire dependency cone is included
//! verbatim ("plain"). Plain predicates only depend on plain predicates,
//! and negative edges only point *into* the plain layer — hence the
//! rewritten program is stratifiable whenever the original is.
//!
//! **Extensional predicates.** Facts-only predicates are included
//! verbatim (index probes already make their selection cheap). A
//! predicate with both facts and rules routes its facts through a single
//! `__edb__p` copy plus one guarded bridge rule per adornment, so the
//! fact set is filtered by demand without compiling one plan per fact.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::atom::{Atom, Literal};
use crate::clause::Clause;
use crate::program::Program;
use crate::query::{Bindings, QueryAnswer};
use crate::storage::Database;
use crate::term::{SymId, Term};

/// The reserved predicate collecting the goal's answers in a rewritten
/// program: `__goal__(projected vars) :- <rewritten goal body>`.
pub const GOAL_PREDICATE: &str = "__goal__";

/// A magic-sets rewrite of one program for one goal.
#[derive(Debug)]
pub struct MagicProgram {
    /// The rewritten program: magic seeds, demand rules, guarded rule
    /// variants, plain (negation-reached and facts-only) cones, and the
    /// [`GOAL_PREDICATE`] collection rule.
    pub program: Program,
    /// The goal's projected variables — positively bound, in first
    /// occurrence order, exactly the projection [`crate::run_query`]
    /// uses.
    pub answer_variables: Vec<String>,
    /// Names of the generated magic (demand) predicates.
    pub magic_predicates: Vec<String>,
    /// Number of adorned predicate variants the rewrite generated — the
    /// *adorned cone size*, reported next to the plain cone size in
    /// evaluation statistics.
    pub adorned_predicates: usize,
    /// Predicates included verbatim (facts-only predicates plus the full
    /// cones of negated predicates).
    pub plain_predicates: usize,
}

impl MagicProgram {
    /// Read the goal's answers out of an evaluated rewritten database,
    /// shaped identically to [`crate::run_query`] over a full fixpoint.
    pub fn answers(&self, db: &Database) -> QueryAnswer {
        let mut answers: Vec<Bindings> = db
            .relation(GOAL_PREDICATE)
            .map(|rel| {
                rel.iter()
                    .map(|f| {
                        self.answer_variables
                            .iter()
                            .cloned()
                            .zip(f.iter().copied())
                            .collect()
                    })
                    .collect()
            })
            .unwrap_or_default();
        answers.sort();
        answers.dedup();
        QueryAnswer {
            variables: self.answer_variables.clone(),
            answers,
        }
    }
}

/// Whether a goal binds any argument of a positive literal — the
/// precondition for the magic rewrite to prune anything. Goals failing
/// this check degenerate to full cone evaluation (lint ML0007).
pub fn goal_binds_arguments(goal: &[Literal]) -> bool {
    goal.iter()
        .any(|l| matches!(l, Literal::Pos(a) if a.terms.iter().any(|t| !t.is_var())))
}

/// Rewrite `program` for `goal`. Returns `None` when the rewrite cannot
/// help or cannot be built soundly — no positive goal argument is bound,
/// or the rewritten clause set fails validation — in which case the
/// caller falls back to dependency-cone restriction.
pub fn rewrite(program: &Program, goal: &[Literal]) -> Option<MagicProgram> {
    if !goal_binds_arguments(goal) {
        return None;
    }

    // The goal's dependency cone, and the sub-cones reached through
    // negation anywhere inside it. The latter are evaluated in full
    // ("plain") so the stratified ¬∃ reading stays correct.
    let seeds: Vec<&str> = goal
        .iter()
        .filter_map(Literal::atom)
        .map(|a| a.predicate.as_str())
        .collect();
    let cone = program.dependencies_of(seeds);
    let mut neg_seeds: HashSet<&str> = goal
        .iter()
        .filter_map(|l| match l {
            Literal::Neg(a) => Some(a.predicate.as_str()),
            _ => None,
        })
        .collect();
    for c in program.clauses() {
        if !cone.contains(c.head.predicate.as_str()) {
            continue;
        }
        for l in &c.body {
            if let Literal::Neg(a) = l {
                neg_seeds.insert(a.predicate.as_str());
            }
        }
    }
    let full = program.dependencies_of(neg_seeds);

    let mut clauses_by_pred: HashMap<SymId, Vec<&Clause>> = HashMap::new();
    for c in program.clauses() {
        clauses_by_pred.entry(c.head.predicate).or_default().push(c);
    }
    // Adornable: derived by at least one rule and not needed in full.
    let adornable: HashSet<SymId> = clauses_by_pred
        .iter()
        .filter(|(p, cs)| !full.contains(p.as_str()) && cs.iter().any(|c| !c.is_fact()))
        .map(|(&p, _)| p)
        .collect();

    let mut rw = Rewriter {
        program,
        clauses_by_pred,
        adornable,
        out: Vec::new(),
        seen: HashSet::new(),
        queue: VecDeque::new(),
        done: HashSet::new(),
        plain: HashSet::new(),
        edb_done: HashSet::new(),
        magic_preds: Vec::new(),
    };

    // The goal rule, projecting the positively bound variables in first
    // occurrence order (run_query's projection).
    let mut positive: Vec<String> = Vec::new();
    for l in goal {
        if let Literal::Pos(a) = l {
            for v in a.variables() {
                if !positive.iter().any(|x| x == v) {
                    positive.push(v.to_owned());
                }
            }
        }
    }
    let body = rw.process_body(goal, HashSet::new(), Vec::new());
    let head = Atom::new(
        GOAL_PREDICATE,
        positive.iter().map(|v| Term::var(v.clone())).collect(),
    );
    rw.push(Clause::new(head, body));

    // Drain the demand worklist, specializing every demanded adornment.
    while let Some((pred, adornment)) = rw.queue.pop_front() {
        rw.emit_adorned(pred, &adornment);
    }

    let adorned_predicates = rw.done.len();
    let plain_predicates = rw.plain.len();
    let magic_predicates = rw.magic_preds;
    // A rewritten clause failing validation (e.g. a goal whose arity
    // disagrees with the program) means no sound rewrite exists here;
    // fall back to cone evaluation, which reproduces run_query behaviour.
    let program = Program::from_clauses(rw.out).ok()?;
    Some(MagicProgram {
        program,
        answer_variables: positive,
        magic_predicates,
        adorned_predicates,
        plain_predicates,
    })
}

fn adorned_name(pred: &str, adornment: &str) -> String {
    format!("__ad_{adornment}__{pred}")
}

fn magic_name(pred: &str, adornment: &str) -> String {
    format!("__mg_{adornment}__{pred}")
}

fn edb_name(pred: &str) -> String {
    format!("__edb__{pred}")
}

/// The binding pattern of an atom under a set of bound variables: `b`
/// for constants and bound variables, `f` otherwise.
fn adornment_of(atom: &Atom, bound: &HashSet<String>) -> String {
    atom.terms
        .iter()
        .map(|t| match t.as_var() {
            Some(v) if !bound.contains(v) => 'f',
            _ => 'b',
        })
        .collect()
}

/// The terms at the bound positions of `adornment`.
fn bound_terms(terms: &[Term], adornment: &str) -> Vec<Term> {
    terms
        .iter()
        .zip(adornment.bytes())
        .filter(|&(_, b)| b == b'b')
        .map(|(t, _)| t.clone())
        .collect()
}

struct Rewriter<'p> {
    program: &'p Program,
    clauses_by_pred: HashMap<SymId, Vec<&'p Clause>>,
    adornable: HashSet<SymId>,
    out: Vec<Clause>,
    /// Rendered-clause dedup (identical demand rules arise repeatedly).
    seen: HashSet<String>,
    queue: VecDeque<(SymId, String)>,
    done: HashSet<(SymId, String)>,
    /// Predicates whose original cones are included verbatim.
    plain: HashSet<SymId>,
    edb_done: HashSet<SymId>,
    magic_preds: Vec<String>,
}

impl Rewriter<'_> {
    fn push(&mut self, clause: Clause) {
        if self.seen.insert(clause.to_string()) {
            self.out.push(clause);
        }
    }

    /// Record demand for `(pred, adornment)`, scheduling its rules.
    fn demand(&mut self, pred: SymId, adornment: String) {
        if self.done.insert((pred, adornment.clone())) {
            self.magic_preds.push(magic_name(pred.as_str(), &adornment));
            self.queue.push_back((pred, adornment));
        }
    }

    /// Include `pred`'s entire original dependency cone verbatim.
    fn include_plain(&mut self, pred: SymId) {
        if self.plain.contains(&pred) {
            return;
        }
        let mut cone: Vec<String> = self
            .program
            .dependencies_of([pred.as_str()])
            .into_iter()
            .collect();
        cone.sort_unstable();
        for name in &cone {
            let sym = SymId::intern(name);
            if !self.plain.insert(sym) {
                continue;
            }
            if let Some(clauses) = self.clauses_by_pred.get(&sym) {
                for c in clauses.clone() {
                    self.push(c.clone());
                }
            }
        }
    }

    /// Rewrite one rule body left-to-right: adorn positive derived
    /// literals, emit their demand rules from the prefix accumulated so
    /// far, and return the rewritten body for the guarded rule.
    ///
    /// `prefix` holds the literals every demand rule may assume — the
    /// guarding magic literal plus the prefix literals that are safe on
    /// their own (comparisons and arithmetic whose operands a demand rule
    /// cannot yet bind are *dropped* from prefixes, which only widens the
    /// demand and stays sound).
    fn process_body(
        &mut self,
        body: &[Literal],
        mut bound: HashSet<String>,
        mut prefix: Vec<Literal>,
    ) -> Vec<Literal> {
        let mut out = Vec::with_capacity(body.len());
        for lit in body {
            match lit {
                Literal::Pos(a) => {
                    if self.adornable.contains(&a.predicate) {
                        let adornment = adornment_of(a, &bound);
                        let magic_head = Atom::new(
                            magic_name(a.predicate.as_str(), &adornment),
                            bound_terms(&a.terms, &adornment),
                        );
                        self.push_demand(magic_head, &prefix);
                        self.demand(a.predicate, adornment.clone());
                        let renamed = Atom::new(
                            adorned_name(a.predicate.as_str(), &adornment),
                            a.terms.clone(),
                        );
                        prefix.push(Literal::Pos(renamed.clone()));
                        out.push(Literal::Pos(renamed));
                    } else {
                        self.include_plain(a.predicate);
                        prefix.push(lit.clone());
                        out.push(lit.clone());
                    }
                    for v in a.variables() {
                        bound.insert(v.to_owned());
                    }
                }
                Literal::Neg(a) => {
                    self.include_plain(a.predicate);
                    prefix.push(lit.clone());
                    out.push(lit.clone());
                }
                Literal::Cmp { .. } => {
                    if lit.variables().iter().all(|v| bound.contains(*v)) {
                        prefix.push(lit.clone());
                    }
                    out.push(lit.clone());
                }
                Literal::Arith {
                    target, lhs, rhs, ..
                } => {
                    let operands_bound = lhs
                        .as_var()
                        .into_iter()
                        .chain(rhs.as_var())
                        .all(|v| bound.contains(v));
                    if operands_bound {
                        prefix.push(lit.clone());
                        if let Some(v) = target.as_var() {
                            bound.insert(v.to_owned());
                        }
                    }
                    out.push(lit.clone());
                }
            }
        }
        out
    }

    /// Emit the demand rule `magic_head :- prefix`, eliding the trivial
    /// self-propagation `m(X̄) :- m(X̄)`.
    fn push_demand(&mut self, magic_head: Atom, prefix: &[Literal]) {
        if let [Literal::Pos(only)] = prefix {
            if *only == magic_head {
                return;
            }
        }
        let clause = if prefix.is_empty() {
            // With an empty prefix every bound argument is a constant
            // (nothing could have bound a variable yet): a seed fact.
            Clause::fact(magic_head)
        } else {
            Clause::new(magic_head, prefix.to_vec())
        };
        self.push(clause);
    }

    /// Specialize every clause of `pred` for one demanded adornment.
    fn emit_adorned(&mut self, pred: SymId, adornment: &str) {
        let Some(clauses) = self.clauses_by_pred.get(&pred).cloned() else {
            return;
        };
        let arity = clauses[0].head.arity();
        let magic = magic_name(pred.as_str(), adornment);
        let adorned = adorned_name(pred.as_str(), adornment);
        if clauses.iter().any(|c| c.is_fact()) {
            self.emit_edb(pred, &clauses);
            // Bridge the shared fact copy into this adornment, filtered
            // by demand.
            let vars: Vec<Term> = (0..arity).map(|i| Term::var(format!("X{i}"))).collect();
            let magic_lit = Literal::Pos(Atom::new(&magic, bound_terms(&vars, adornment)));
            let body = vec![
                magic_lit,
                Literal::Pos(Atom::new(edb_name(pred.as_str()), vars.clone())),
            ];
            self.push(Clause::new(Atom::new(&adorned, vars), body));
        }
        for c in clauses {
            if c.is_fact() {
                continue;
            }
            let magic_lit = Literal::Pos(Atom::new(&magic, bound_terms(&c.head.terms, adornment)));
            let init_bound: HashSet<String> = bound_terms(&c.head.terms, adornment)
                .iter()
                .filter_map(|t| t.as_var().map(str::to_owned))
                .collect();
            let rewritten = self.process_body(&c.body, init_bound, vec![magic_lit.clone()]);
            let mut body = Vec::with_capacity(rewritten.len() + 1);
            body.push(magic_lit);
            body.extend(rewritten);
            self.push(
                Clause::new(Atom::new(&adorned, c.head.terms.clone()), body).with_span(c.span),
            );
        }
    }

    /// Emit `__edb__pred` copies of `pred`'s fact clauses, once.
    fn emit_edb(&mut self, pred: SymId, clauses: &[&Clause]) {
        if !self.edb_done.insert(pred) {
            return;
        }
        for c in clauses {
            if c.is_fact() {
                self.push(Clause::fact(Atom::new(
                    edb_name(pred.as_str()),
                    c.head.terms.clone(),
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use crate::{run_query, Engine};

    const CHAIN: &str = "
        edge(a, b). edge(b, c). edge(c, d). edge(x, y).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
    ";

    #[test]
    fn bound_goal_rewrites() {
        let p = parse_program(CHAIN).unwrap();
        let goal = parse_query("path(a, X)").unwrap();
        let m = rewrite(&p, &goal).expect("bound goal must rewrite");
        assert!(m.adorned_predicates >= 1);
        assert!(m.magic_predicates.iter().any(|name| name.contains("path")));
        let db = Engine::new(&m.program).unwrap().run().unwrap();
        let answers = m.answers(&db);
        // Only paths from `a`; the x→y component is never demanded.
        assert_eq!(answers.len(), 3);
        assert!(db.relation("path").is_none(), "original name not used");
    }

    #[test]
    fn unbound_goal_degenerates() {
        let p = parse_program(CHAIN).unwrap();
        let goal = parse_query("path(X, Y)").unwrap();
        assert!(!goal_binds_arguments(&goal));
        assert!(rewrite(&p, &goal).is_none());
    }

    #[test]
    fn magic_matches_full_fixpoint_with_negation() {
        let src = "
            edge(a, b). edge(b, c).
            node(a). node(b). node(c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            unreach(X, Y) :- node(X), node(Y), not path(X, Y).
        ";
        let p = parse_program(src).unwrap();
        let full = Engine::new(&p).unwrap().run().unwrap();
        for goal_src in [
            "unreach(a, Y)",
            "unreach(X, a)",
            "path(a, X), not edge(a, X)",
        ] {
            let goal = parse_query(goal_src).unwrap();
            let expect = run_query(&full, &goal).unwrap();
            let (got, _) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
            assert_eq!(got, expect, "goal `{goal_src}`");
        }
    }

    #[test]
    fn demanded_facts_stay_small() {
        // A 64-node chain: the full fixpoint holds O(n²) path tuples, a
        // single-source goal demands O(n).
        let mut src = String::new();
        for i in 0..64 {
            src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y).\n");
        src.push_str("path(X, Z) :- path(X, Y), edge(Y, Z).\n");
        let p = parse_program(&src).unwrap();
        let full = Engine::new(&p).unwrap().run().unwrap();
        let goal = parse_query("path(n0, X)").unwrap();
        let (answers, stats) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
        assert_eq!(answers.len(), 64);
        let demand = stats.demand.expect("demand stats recorded");
        assert_eq!(demand.strategy, "magic");
        assert!(
            demand.facts_materialized < full.fact_count() / 2,
            "{} demanded vs {} full",
            demand.facts_materialized,
            full.fact_count()
        );
    }

    #[test]
    fn facts_plus_rules_route_through_edb_bridge() {
        let src = "
            n(0).
            n(M) :- n(N), N < 5, M = N + 1.
        ";
        let p = parse_program(src).unwrap();
        let goal = parse_query("n(3)").unwrap();
        let m = rewrite(&p, &goal).expect("ground goal rewrites");
        assert!(m
            .program
            .predicates()
            .iter()
            .any(|p| p.starts_with("__edb__")));
        let db = Engine::new(&m.program).unwrap().run().unwrap();
        assert!(m.answers(&db).is_success());
    }

    #[test]
    fn ground_goal_yes_no() {
        let p = parse_program(CHAIN).unwrap();
        for (goal_src, expect) in [("path(a, d)", true), ("path(a, x)", false)] {
            let goal = parse_query(goal_src).unwrap();
            let (ans, _) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
            assert_eq!(ans.is_success(), expect, "goal `{goal_src}`");
            assert!(ans.variables.is_empty());
        }
    }
}
