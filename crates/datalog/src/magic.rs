//! Magic-sets (demand transformation) rewriting: evaluate only the
//! sub-fixpoint a partially-bound goal actually demands.
//!
//! [`crate::Engine::run_for_query`] trims evaluation to the goal's
//! dependency *cone*, but still materializes every tuple of every
//! predicate inside the cone. For a point query like `path(a, X)` that is
//! quadratically too much work: only the paths starting at `a` matter.
//! The classic fix is the magic-sets rewrite — specialize the program to
//! the query's bound/free argument pattern so bottom-up evaluation
//! simulates top-down goal-directed search:
//!
//! 1. **Adorn** each derived predicate reached from the goal with a
//!    binding pattern (`b`ound/`f`ree per argument), propagated sideways
//!    through rule bodies in textual order: an argument is bound when it
//!    is a constant or a variable bound by the rule's demanded head
//!    positions or an earlier body literal.
//! 2. For every adorned predicate `p^α`, introduce a **magic predicate**
//!    `__mg_α__p` holding the demanded bound-argument tuples, seeded from
//!    the goal's constants and propagated by **demand rules** built from
//!    rule-body prefixes.
//! 3. Replace each rule for `p` by a **guarded variant** whose body is
//!    prefixed with the magic literal, so the rule only fires for
//!    demanded bindings.
//! 4. Collect the goal's answers with a dedicated `__goal__` rule, and
//!    restratify the rewritten program (the existing Kosaraju-based
//!    [`crate::Program::stratify`] pass) before handing it to the
//!    semi-naive engine.
//!
//! **Negation.** Predicates consulted under negation (transitively) are
//! never adorned: the stratified `¬∃` semantics needs the negated
//! relation complete, so their entire dependency cone is included
//! verbatim ("plain"). Plain predicates only depend on plain predicates,
//! and negative edges only point *into* the plain layer — hence the
//! rewritten program is stratifiable whenever the original is.
//!
//! **Extensional predicates.** Facts-only predicates are included
//! verbatim (index probes already make their selection cheap). A
//! predicate with both facts and rules routes its facts through a single
//! `__edb__p` copy plus one guarded bridge rule per adornment, so the
//! fact set is filtered by demand without compiling one plan per fact.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::atom::{Atom, Literal};
use crate::clause::Clause;
use crate::program::Program;
use crate::query::{Bindings, QueryAnswer};
use crate::storage::Database;
use crate::term::{SymId, Term};

/// The reserved predicate collecting the goal's answers in a rewritten
/// program: `__goal__(projected vars) :- <rewritten goal body>`.
pub const GOAL_PREDICATE: &str = "__goal__";

/// A magic-sets rewrite of one program for one goal.
#[derive(Debug)]
pub struct MagicProgram {
    /// The rewritten program: magic seeds, demand rules, guarded rule
    /// variants, plain (negation-reached and facts-only) cones, and the
    /// [`GOAL_PREDICATE`] collection rule.
    pub program: Program,
    /// The goal's projected variables — positively bound, in first
    /// occurrence order, exactly the projection [`crate::run_query`]
    /// uses.
    pub answer_variables: Vec<String>,
    /// Names of the generated magic (demand) predicates.
    pub magic_predicates: Vec<String>,
    /// Number of adorned predicate variants the rewrite generated — the
    /// *adorned cone size*, reported next to the plain cone size in
    /// evaluation statistics.
    pub adorned_predicates: usize,
    /// Predicates included verbatim (facts-only predicates plus the full
    /// cones of negated predicates).
    pub plain_predicates: usize,
}

impl MagicProgram {
    /// Read the goal's answers out of an evaluated rewritten database,
    /// shaped identically to [`crate::run_query`] over a full fixpoint.
    pub fn answers(&self, db: &Database) -> QueryAnswer {
        let mut answers: Vec<Bindings> = db
            .relation(GOAL_PREDICATE)
            .map(|rel| {
                rel.iter()
                    .map(|f| {
                        self.answer_variables
                            .iter()
                            .cloned()
                            .zip(f.iter().copied())
                            .collect()
                    })
                    .collect()
            })
            .unwrap_or_default();
        answers.sort();
        answers.dedup();
        QueryAnswer {
            variables: self.answer_variables.clone(),
            answers,
        }
    }
}

/// Whether a goal binds any argument of a positive literal — the
/// precondition for the magic rewrite to prune anything. Goals failing
/// this check degenerate to full cone evaluation (lint ML0007).
pub fn goal_binds_arguments(goal: &[Literal]) -> bool {
    goal.iter()
        .any(|l| matches!(l, Literal::Pos(a) if a.terms.iter().any(|t| !t.is_var())))
}

/// Rewrite `program` for `goal`. Returns `None` when the rewrite cannot
/// help or cannot be built soundly — no positive goal argument is bound,
/// or the rewritten clause set fails validation — in which case the
/// caller falls back to dependency-cone restriction.
pub fn rewrite(program: &Program, goal: &[Literal]) -> Option<MagicProgram> {
    if !goal_binds_arguments(goal) {
        return None;
    }
    rewrite_unchecked(program, goal)
}

fn rewrite_unchecked(program: &Program, goal: &[Literal]) -> Option<MagicProgram> {
    // The goal's dependency cone, and the sub-cones reached through
    // negation anywhere inside it. The latter are evaluated in full
    // ("plain") so the stratified ¬∃ reading stays correct.
    let seeds: Vec<&str> = goal
        .iter()
        .filter_map(Literal::atom)
        .map(|a| a.predicate.as_str())
        .collect();
    let cone = program.dependencies_of(seeds);
    // Native algorithm operators and aggregate folds consume *complete*
    // relations; filtering their inputs by demand would change their
    // output (a component representative, a count, …). When the goal's
    // cone contains either construct, bail out so the caller's
    // cone-restricted fallback — which materializes whole relations —
    // answers the goal instead. Goals outside such cones keep the
    // rewrite.
    if cone.iter().any(|p| crate::algo::parse_call(p).is_some())
        || program
            .clauses()
            .iter()
            .any(|c| c.agg.is_some() && cone.contains(c.head.predicate.as_str()))
    {
        return None;
    }
    let mut neg_seeds: HashSet<&str> = goal
        .iter()
        .filter_map(|l| match l {
            Literal::Neg(a) => Some(a.predicate.as_str()),
            _ => None,
        })
        .collect();
    for c in program.clauses() {
        if !cone.contains(c.head.predicate.as_str()) {
            continue;
        }
        for l in &c.body {
            if let Literal::Neg(a) = l {
                neg_seeds.insert(a.predicate.as_str());
            }
        }
    }
    let full = program.dependencies_of(neg_seeds);

    let mut clauses_by_pred: HashMap<SymId, Vec<&Clause>> = HashMap::new();
    for c in program.clauses() {
        clauses_by_pred.entry(c.head.predicate).or_default().push(c);
    }
    // Adornable: derived by at least one rule and not needed in full.
    let adornable: HashSet<SymId> = clauses_by_pred
        .iter()
        .filter(|(p, cs)| !full.contains(p.as_str()) && cs.iter().any(|c| !c.is_fact()))
        .map(|(&p, _)| p)
        .collect();

    let mut rw = Rewriter {
        program,
        clauses_by_pred,
        adornable,
        out: Vec::new(),
        seen: HashSet::new(),
        queue: VecDeque::new(),
        done: HashSet::new(),
        plain: HashSet::new(),
        edb_done: HashSet::new(),
        magic_preds: Vec::new(),
    };

    // The goal rule, projecting the positively bound variables in first
    // occurrence order (run_query's projection).
    let mut positive: Vec<String> = Vec::new();
    for l in goal {
        if let Literal::Pos(a) = l {
            for v in a.variables() {
                if !positive.iter().any(|x| x == v) {
                    positive.push(v.to_owned());
                }
            }
        }
    }
    let body = rw.process_body(goal, HashSet::new(), Vec::new());
    let head = Atom::new(
        GOAL_PREDICATE,
        positive.iter().map(|v| Term::var(v.clone())).collect(),
    );
    rw.push(Clause::new(head, body));

    // Drain the demand worklist, specializing every demanded adornment.
    while let Some((pred, adornment)) = rw.queue.pop_front() {
        rw.emit_adorned(pred, &adornment);
    }

    let adorned_predicates = rw.done.len();
    let plain_predicates = rw.plain.len();
    let magic_predicates = rw.magic_preds;
    // A rewritten clause failing validation (e.g. a goal whose arity
    // disagrees with the program) means no sound rewrite exists here;
    // fall back to cone evaluation, which reproduces run_query behaviour.
    let program = Program::from_clauses(rw.out).ok()?;
    Some(MagicProgram {
        program,
        answer_variables: positive,
        magic_predicates,
        adorned_predicates,
        plain_predicates,
    })
}

/// The reserved seed predicate of a [`PreparedMagic`] rewrite: one fact
/// holding the goal's constants, swapped per instantiation.
pub const PARAM_PREDICATE: &str = "__param__";

/// A magic rewrite with the goal's constants factored out into a single
/// [`PARAM_PREDICATE`] seed fact, so the structural transformation —
/// adornment propagation, demand rules, guarded variants — is computed
/// once per binding *pattern* and replayed for any constants (a prepared
/// statement for point queries; the REPL caches these per
/// `(predicate, adornment)` key from [`prepared_key`]).
#[derive(Debug)]
pub struct PreparedMagic {
    clauses: Vec<Clause>,
    /// Index of the `__param__` seed fact inside `clauses`.
    seed: usize,
    params: usize,
    answer_variables: Vec<String>,
    magic_predicates: Vec<String>,
    adorned_predicates: usize,
    plain_predicates: usize,
}

impl PreparedMagic {
    /// How many constants an instantiation must supply.
    pub fn params(&self) -> usize {
        self.params
    }

    /// Replay the prepared rewrite for one concrete constant vector (in
    /// [`prepared_key`] extraction order). `None` when the arity
    /// disagrees or the swapped clause set fails validation.
    pub fn instantiate(&self, consts: &[Term]) -> Option<MagicProgram> {
        if consts.len() != self.params || consts.iter().any(Term::is_var) {
            return None;
        }
        let mut clauses = self.clauses.clone();
        clauses[self.seed] = Clause::fact(Atom::new(PARAM_PREDICATE, consts.to_vec()));
        let program = Program::from_clauses(clauses).ok()?;
        Some(MagicProgram {
            program,
            answer_variables: self.answer_variables.clone(),
            magic_predicates: self.magic_predicates.clone(),
            adorned_predicates: self.adorned_predicates,
            plain_predicates: self.plain_predicates,
        })
    }
}

/// Replace every constant inside the goal's atoms with a positional
/// `__pN` placeholder variable, returning the generalized goal and the
/// constants in placeholder order. Comparison and arithmetic literals
/// keep their constants inline (they never seed demand).
fn generalize(goal: &[Literal]) -> (Vec<Literal>, Vec<Term>) {
    let mut consts = Vec::new();
    let mut swap = |a: &Atom| {
        let terms = a
            .terms
            .iter()
            .map(|t| {
                if t.is_var() {
                    t.clone()
                } else {
                    consts.push(t.clone());
                    Term::var(format!("__p{}", consts.len() - 1))
                }
            })
            .collect();
        Atom::new(a.predicate.as_str(), terms)
    };
    let general = goal
        .iter()
        .map(|l| match l {
            Literal::Pos(a) => Literal::Pos(swap(a)),
            Literal::Neg(a) => Literal::Neg(swap(a)),
            other => other.clone(),
        })
        .collect();
    (general, consts)
}

/// The structural cache key of a goal — the goal with constants replaced
/// by positional placeholders — plus the constants themselves. Two goals
/// share a key exactly when they demand the same predicates under the
/// same adornment with the same variable naming, i.e. when one
/// [`PreparedMagic`] answers both.
pub fn prepared_key(goal: &[Literal]) -> (String, Vec<Term>) {
    let (general, consts) = generalize(goal);
    let key = general
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    (key, consts)
}

/// Build a [`PreparedMagic`] rewrite of `program` for `goal`'s binding
/// pattern. Returns `None` under the same conditions as [`rewrite`] —
/// plus when the goal has no atom constants to factor out (nothing to
/// parameterize).
pub fn prepare(program: &Program, goal: &[Literal]) -> Option<PreparedMagic> {
    if !goal_binds_arguments(goal) {
        return None;
    }
    let (general, consts) = generalize(goal);
    if consts.is_empty() {
        return None;
    }
    // Augment the program with the seed fact so validation and the
    // plain-cone walk see `__param__` as an ordinary facts-only
    // predicate; the rewrite then copies it into its output verbatim.
    let mut aug: Vec<Clause> = program.clauses().to_vec();
    aug.push(Clause::fact(Atom::new(PARAM_PREDICATE, consts.clone())));
    let aug = Program::from_clauses(aug).ok()?;
    // Lead the goal with the seed literal: its placeholders count as
    // bound from the first literal on, so every atom gets the same
    // adornment the inline constants would have produced.
    let mut goal2 = Vec::with_capacity(general.len() + 1);
    goal2.push(Literal::Pos(Atom::new(
        PARAM_PREDICATE,
        (0..consts.len())
            .map(|i| Term::var(format!("__p{i}")))
            .collect(),
    )));
    goal2.extend(general);
    let m = rewrite_unchecked(&aug, &goal2)?;
    let clauses: Vec<Clause> = m.program.clauses().to_vec();
    let seed = clauses
        .iter()
        .position(|c| c.is_fact() && c.head.predicate.as_str() == PARAM_PREDICATE)?;
    Some(PreparedMagic {
        seed,
        params: consts.len(),
        answer_variables: m.answer_variables,
        magic_predicates: m.magic_predicates,
        adorned_predicates: m.adorned_predicates,
        plain_predicates: m.plain_predicates,
        clauses,
    })
}

fn adorned_name(pred: &str, adornment: &str) -> String {
    format!("__ad_{adornment}__{pred}")
}

fn magic_name(pred: &str, adornment: &str) -> String {
    format!("__mg_{adornment}__{pred}")
}

fn edb_name(pred: &str) -> String {
    format!("__edb__{pred}")
}

/// The binding pattern of an atom under a set of bound variables: `b`
/// for constants and bound variables, `f` otherwise.
fn adornment_of(atom: &Atom, bound: &HashSet<String>) -> String {
    atom.terms
        .iter()
        .map(|t| match t.as_var() {
            Some(v) if !bound.contains(v) => 'f',
            _ => 'b',
        })
        .collect()
}

/// The terms at the bound positions of `adornment`.
fn bound_terms(terms: &[Term], adornment: &str) -> Vec<Term> {
    terms
        .iter()
        .zip(adornment.bytes())
        .filter(|&(_, b)| b == b'b')
        .map(|(t, _)| t.clone())
        .collect()
}

struct Rewriter<'p> {
    program: &'p Program,
    clauses_by_pred: HashMap<SymId, Vec<&'p Clause>>,
    adornable: HashSet<SymId>,
    out: Vec<Clause>,
    /// Rendered-clause dedup (identical demand rules arise repeatedly).
    seen: HashSet<String>,
    queue: VecDeque<(SymId, String)>,
    done: HashSet<(SymId, String)>,
    /// Predicates whose original cones are included verbatim.
    plain: HashSet<SymId>,
    edb_done: HashSet<SymId>,
    magic_preds: Vec<String>,
}

impl Rewriter<'_> {
    fn push(&mut self, clause: Clause) {
        if self.seen.insert(clause.to_string()) {
            self.out.push(clause);
        }
    }

    /// Record demand for `(pred, adornment)`, scheduling its rules.
    fn demand(&mut self, pred: SymId, adornment: String) {
        if self.done.insert((pred, adornment.clone())) {
            self.magic_preds.push(magic_name(pred.as_str(), &adornment));
            self.queue.push_back((pred, adornment));
        }
    }

    /// Include `pred`'s entire original dependency cone verbatim.
    fn include_plain(&mut self, pred: SymId) {
        if self.plain.contains(&pred) {
            return;
        }
        let mut cone: Vec<String> = self
            .program
            .dependencies_of([pred.as_str()])
            .into_iter()
            .collect();
        cone.sort_unstable();
        for name in &cone {
            let sym = SymId::intern(name);
            if !self.plain.insert(sym) {
                continue;
            }
            if let Some(clauses) = self.clauses_by_pred.get(&sym) {
                for c in clauses.clone() {
                    self.push(c.clone());
                }
            }
        }
    }

    /// Rewrite one rule body left-to-right: adorn positive derived
    /// literals, emit their demand rules from the prefix accumulated so
    /// far, and return the rewritten body for the guarded rule.
    ///
    /// `prefix` holds the literals every demand rule may assume — the
    /// guarding magic literal plus the prefix literals that are safe on
    /// their own (comparisons and arithmetic whose operands a demand rule
    /// cannot yet bind are *dropped* from prefixes, which only widens the
    /// demand and stays sound).
    fn process_body(
        &mut self,
        body: &[Literal],
        mut bound: HashSet<String>,
        mut prefix: Vec<Literal>,
    ) -> Vec<Literal> {
        let mut out = Vec::with_capacity(body.len());
        for lit in body {
            match lit {
                Literal::Pos(a) => {
                    if self.adornable.contains(&a.predicate) {
                        let adornment = adornment_of(a, &bound);
                        let magic_head = Atom::new(
                            magic_name(a.predicate.as_str(), &adornment),
                            bound_terms(&a.terms, &adornment),
                        );
                        self.push_demand(magic_head, &prefix);
                        self.demand(a.predicate, adornment.clone());
                        let renamed = Atom::new(
                            adorned_name(a.predicate.as_str(), &adornment),
                            a.terms.clone(),
                        );
                        prefix.push(Literal::Pos(renamed.clone()));
                        out.push(Literal::Pos(renamed));
                    } else {
                        self.include_plain(a.predicate);
                        prefix.push(lit.clone());
                        out.push(lit.clone());
                    }
                    for v in a.variables() {
                        bound.insert(v.to_owned());
                    }
                }
                Literal::Neg(a) => {
                    self.include_plain(a.predicate);
                    prefix.push(lit.clone());
                    out.push(lit.clone());
                }
                Literal::Cmp { .. } => {
                    if lit.variables().iter().all(|v| bound.contains(*v)) {
                        prefix.push(lit.clone());
                    }
                    out.push(lit.clone());
                }
                Literal::Arith {
                    target, lhs, rhs, ..
                } => {
                    let operands_bound = lhs
                        .as_var()
                        .into_iter()
                        .chain(rhs.as_var())
                        .all(|v| bound.contains(v));
                    if operands_bound {
                        prefix.push(lit.clone());
                        if let Some(v) = target.as_var() {
                            bound.insert(v.to_owned());
                        }
                    }
                    out.push(lit.clone());
                }
            }
        }
        out
    }

    /// Emit the demand rule `magic_head :- prefix`, eliding the trivial
    /// self-propagation `m(X̄) :- m(X̄)`.
    fn push_demand(&mut self, magic_head: Atom, prefix: &[Literal]) {
        if let [Literal::Pos(only)] = prefix {
            if *only == magic_head {
                return;
            }
        }
        let clause = if prefix.is_empty() {
            // With an empty prefix every bound argument is a constant
            // (nothing could have bound a variable yet): a seed fact.
            Clause::fact(magic_head)
        } else {
            Clause::new(magic_head, prefix.to_vec())
        };
        self.push(clause);
    }

    /// Specialize every clause of `pred` for one demanded adornment.
    fn emit_adorned(&mut self, pred: SymId, adornment: &str) {
        let Some(clauses) = self.clauses_by_pred.get(&pred).cloned() else {
            return;
        };
        let arity = clauses[0].head.arity();
        let magic = magic_name(pred.as_str(), adornment);
        let adorned = adorned_name(pred.as_str(), adornment);
        if clauses.iter().any(|c| c.is_fact()) {
            self.emit_edb(pred, &clauses);
            // Bridge the shared fact copy into this adornment, filtered
            // by demand.
            let vars: Vec<Term> = (0..arity).map(|i| Term::var(format!("X{i}"))).collect();
            let magic_lit = Literal::Pos(Atom::new(&magic, bound_terms(&vars, adornment)));
            let body = vec![
                magic_lit,
                Literal::Pos(Atom::new(edb_name(pred.as_str()), vars.clone())),
            ];
            self.push(Clause::new(Atom::new(&adorned, vars), body));
        }
        for c in clauses {
            if c.is_fact() {
                continue;
            }
            let magic_lit = Literal::Pos(Atom::new(&magic, bound_terms(&c.head.terms, adornment)));
            let init_bound: HashSet<String> = bound_terms(&c.head.terms, adornment)
                .iter()
                .filter_map(|t| t.as_var().map(str::to_owned))
                .collect();
            let rewritten = self.process_body(&c.body, init_bound, vec![magic_lit.clone()]);
            let mut body = Vec::with_capacity(rewritten.len() + 1);
            body.push(magic_lit);
            body.extend(rewritten);
            self.push(
                Clause::new(Atom::new(&adorned, c.head.terms.clone()), body).with_span(c.span),
            );
        }
    }

    /// Emit `__edb__pred` copies of `pred`'s fact clauses, once.
    fn emit_edb(&mut self, pred: SymId, clauses: &[&Clause]) {
        if !self.edb_done.insert(pred) {
            return;
        }
        for c in clauses {
            if c.is_fact() {
                self.push(Clause::fact(Atom::new(
                    edb_name(pred.as_str()),
                    c.head.terms.clone(),
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use crate::{run_query, Engine};

    const CHAIN: &str = "
        edge(a, b). edge(b, c). edge(c, d). edge(x, y).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
    ";

    #[test]
    fn bound_goal_rewrites() {
        let p = parse_program(CHAIN).unwrap();
        let goal = parse_query("path(a, X)").unwrap();
        let m = rewrite(&p, &goal).expect("bound goal must rewrite");
        assert!(m.adorned_predicates >= 1);
        assert!(m.magic_predicates.iter().any(|name| name.contains("path")));
        let db = Engine::new(&m.program).unwrap().run().unwrap();
        let answers = m.answers(&db);
        // Only paths from `a`; the x→y component is never demanded.
        assert_eq!(answers.len(), 3);
        assert!(db.relation("path").is_none(), "original name not used");
    }

    #[test]
    fn unbound_goal_degenerates() {
        let p = parse_program(CHAIN).unwrap();
        let goal = parse_query("path(X, Y)").unwrap();
        assert!(!goal_binds_arguments(&goal));
        assert!(rewrite(&p, &goal).is_none());
    }

    #[test]
    fn magic_matches_full_fixpoint_with_negation() {
        let src = "
            edge(a, b). edge(b, c).
            node(a). node(b). node(c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            unreach(X, Y) :- node(X), node(Y), not path(X, Y).
        ";
        let p = parse_program(src).unwrap();
        let full = Engine::new(&p).unwrap().run().unwrap();
        for goal_src in [
            "unreach(a, Y)",
            "unreach(X, a)",
            "path(a, X), not edge(a, X)",
        ] {
            let goal = parse_query(goal_src).unwrap();
            let expect = run_query(&full, &goal).unwrap();
            let (got, _) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
            assert_eq!(got, expect, "goal `{goal_src}`");
        }
    }

    #[test]
    fn demanded_facts_stay_small() {
        // A 64-node chain: the full fixpoint holds O(n²) path tuples, a
        // single-source goal demands O(n).
        let mut src = String::new();
        for i in 0..64 {
            src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y).\n");
        src.push_str("path(X, Z) :- path(X, Y), edge(Y, Z).\n");
        let p = parse_program(&src).unwrap();
        let full = Engine::new(&p).unwrap().run().unwrap();
        let goal = parse_query("path(n0, X)").unwrap();
        let (answers, stats) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
        assert_eq!(answers.len(), 64);
        let demand = stats.demand.expect("demand stats recorded");
        assert_eq!(demand.strategy, "magic");
        assert!(
            demand.facts_materialized < full.fact_count() / 2,
            "{} demanded vs {} full",
            demand.facts_materialized,
            full.fact_count()
        );
    }

    #[test]
    fn facts_plus_rules_route_through_edb_bridge() {
        let src = "
            n(0).
            n(M) :- n(N), N < 5, M = N + 1.
        ";
        let p = parse_program(src).unwrap();
        let goal = parse_query("n(3)").unwrap();
        let m = rewrite(&p, &goal).expect("ground goal rewrites");
        assert!(m
            .program
            .predicates()
            .iter()
            .any(|p| p.starts_with("__edb__")));
        let db = Engine::new(&m.program).unwrap().run().unwrap();
        assert!(m.answers(&db).is_success());
    }

    #[test]
    fn ground_goal_yes_no() {
        let p = parse_program(CHAIN).unwrap();
        for (goal_src, expect) in [("path(a, d)", true), ("path(a, x)", false)] {
            let goal = parse_query(goal_src).unwrap();
            let (ans, _) = Engine::new(&p).unwrap().run_for_goal(&goal).unwrap();
            assert_eq!(ans.is_success(), expect, "goal `{goal_src}`");
            assert!(ans.variables.is_empty());
        }
    }

    #[test]
    fn prepared_rewrite_replays_across_constants() {
        let p = parse_program(CHAIN).unwrap();
        let full = Engine::new(&p).unwrap().run().unwrap();
        // Same binding pattern, different constants: one prepared rewrite
        // answers all of them.
        let first = parse_query("path(a, X)").unwrap();
        let prep = prepare(&p, &first).expect("bound goal prepares");
        assert_eq!(prep.params(), 1);
        for start in ["a", "b", "x"] {
            let goal = parse_query(&format!("path({start}, X)")).unwrap();
            let (key, consts) = prepared_key(&goal);
            assert_eq!(key, prepared_key(&first).0, "same pattern, same key");
            let m = prep.instantiate(&consts).expect("instantiate");
            let db = Engine::new(&m.program).unwrap().run().unwrap();
            let got: Vec<_> = m
                .answers(&db)
                .answers
                .iter()
                .map(|b| b.get("X").copied().unwrap())
                .collect();
            let expect: Vec<_> = run_query(&full, &goal)
                .unwrap()
                .answers
                .iter()
                .map(|b| b.get("X").copied().unwrap())
                .collect();
            assert_eq!(got, expect, "start {start}");
        }
        // A different pattern (or variable naming) keys differently.
        let other = parse_query("path(X, a)").unwrap();
        assert_ne!(prepared_key(&other).0, prepared_key(&first).0);
        // Arity mismatch at instantiation is refused.
        assert!(prep.instantiate(&[]).is_none());
    }

    #[test]
    fn prepare_refuses_unbound_goals() {
        let p = parse_program(CHAIN).unwrap();
        let goal = parse_query("path(X, Y)").unwrap();
        assert!(prepare(&p, &goal).is_none());
    }
}
